//! BKT (Corbett & Anderson 1995): the classic Bayesian knowledge tracing
//! model — a two-state HMM per knowledge concept with parameters
//! `(p_init, p_learn, p_guess, p_slip)`, fit by expectation–maximization.
//! Included as the historical reference baseline the paper's introduction
//! positions DKT against.

use crate::common::{eval_positions, Prediction};
use crate::model::{FitReport, KtModel, TrainConfig};
use rckt_data::{Batch, QMatrix, Window};

/// Parameters of one concept's HMM.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BktParams {
    /// Probability the concept is known before any practice.
    pub p_init: f64,
    /// Probability of transitioning unknown → known after a practice.
    pub p_learn: f64,
    /// Probability of a correct answer while unknown.
    pub p_guess: f64,
    /// Probability of an incorrect answer while known.
    pub p_slip: f64,
}

impl Default for BktParams {
    fn default() -> Self {
        BktParams {
            p_init: 0.4,
            p_learn: 0.15,
            p_guess: 0.25,
            p_slip: 0.1,
        }
    }
}

impl BktParams {
    /// Predicted probability of a correct response given `p(known)`.
    ///
    /// ```
    /// use rckt_models::bkt::BktParams;
    /// let p = BktParams { p_init: 0.3, p_learn: 0.2, p_guess: 0.2, p_slip: 0.1 };
    /// assert_eq!(p.p_correct(1.0), 0.9); // knows it: 1 - slip
    /// assert_eq!(p.p_correct(0.0), 0.2); // doesn't: guess
    /// ```
    pub fn p_correct(&self, p_known: f64) -> f64 {
        p_known * (1.0 - self.p_slip) + (1.0 - p_known) * self.p_guess
    }

    /// Posterior `p(known)` after observing a response, then learning.
    pub fn update(&self, p_known: f64, correct: bool) -> f64 {
        let obs = if correct {
            let num = p_known * (1.0 - self.p_slip);
            num / (num + (1.0 - p_known) * self.p_guess).max(1e-12)
        } else {
            let num = p_known * self.p_slip;
            num / (num + (1.0 - p_known) * (1.0 - self.p_guess)).max(1e-12)
        };
        obs + (1.0 - obs) * self.p_learn
    }
}

#[derive(Clone, Debug, Default)]
pub struct Bkt {
    pub per_concept: Vec<BktParams>,
    qm_cache: Option<QMatrix>,
}

impl Bkt {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fit each concept's parameters with `iters` rounds of (hard) EM over
    /// the concept's observation sequences.
    pub fn fit_em(&mut self, sequences: &[Vec<(usize, bool)>], num_concepts: usize, iters: usize) {
        // per concept: collect each student's chronological correctness list
        let mut obs: Vec<Vec<Vec<bool>>> = vec![Vec::new(); num_concepts];
        for seq in sequences {
            let mut per_concept: Vec<Vec<bool>> = vec![Vec::new(); num_concepts];
            for &(k, c) in seq {
                per_concept[k].push(c);
            }
            for (k, o) in per_concept.into_iter().enumerate() {
                if !o.is_empty() {
                    obs[k].push(o);
                }
            }
        }
        self.per_concept = obs
            .iter()
            .map(|seqs| {
                let mut p = BktParams::default();
                for _ in 0..iters {
                    p = em_step(&p, seqs);
                }
                p
            })
            .collect();
    }

    /// `p(correct)` trajectory for one concept's observation sequence.
    pub fn trace(&self, concept: usize, responses: &[bool]) -> Vec<f64> {
        let p = self.per_concept.get(concept).copied().unwrap_or_default();
        let mut known = p.p_init;
        let mut out = Vec::with_capacity(responses.len());
        for &r in responses {
            out.push(p.p_correct(known));
            known = p.update(known, r);
        }
        out
    }
}

/// One EM iteration: E-step via forward–backward state posteriors, M-step
/// from expected counts (standard Baum–Welch specialized to the 2-state
/// left-to-right BKT chain with no forgetting).
fn em_step(p: &BktParams, seqs: &[Vec<bool>]) -> BktParams {
    let mut init_num = 0.0;
    let mut init_den = 0.0;
    let mut learn_num = 0.0;
    let mut learn_den = 0.0;
    let mut guess_num = 0.0;
    let mut guess_den = 0.0;
    let mut slip_num = 0.0;
    let mut slip_den = 0.0;

    for seq in seqs {
        let t_len = seq.len();
        // forward: alpha[t][s], s ∈ {unknown=0, known=1}
        let emis = |s: usize, correct: bool| -> f64 {
            match (s, correct) {
                (0, true) => p.p_guess,
                (0, false) => 1.0 - p.p_guess,
                (1, true) => 1.0 - p.p_slip,
                _ => p.p_slip,
            }
        };
        let trans = [[1.0 - p.p_learn, p.p_learn], [0.0, 1.0]];
        let mut alpha = vec![[0.0f64; 2]; t_len];
        alpha[0] = [
            (1.0 - p.p_init) * emis(0, seq[0]),
            p.p_init * emis(1, seq[0]),
        ];
        for t in 1..t_len {
            for s in 0..2 {
                let mut a = 0.0;
                for sp in 0..2 {
                    a += alpha[t - 1][sp] * trans[sp][s];
                }
                alpha[t][s] = a * emis(s, seq[t]);
            }
            // scale to avoid underflow
            let norm = (alpha[t][0] + alpha[t][1]).max(1e-300);
            alpha[t][0] /= norm;
            alpha[t][1] /= norm;
        }
        let mut beta = vec![[1.0f64; 2]; t_len];
        for t in (0..t_len - 1).rev() {
            for s in 0..2 {
                let mut b = 0.0;
                for sn in 0..2 {
                    b += trans[s][sn] * emis(sn, seq[t + 1]) * beta[t + 1][sn];
                }
                beta[t][s] = b;
            }
            let norm = (beta[t][0] + beta[t][1]).max(1e-300);
            beta[t][0] /= norm;
            beta[t][1] /= norm;
        }
        // state posteriors γ and transition posteriors ξ
        for t in 0..t_len {
            let g0 = alpha[t][0] * beta[t][0];
            let g1 = alpha[t][1] * beta[t][1];
            let z = (g0 + g1).max(1e-300);
            let (g0, g1) = (g0 / z, g1 / z);
            if t == 0 {
                init_num += g1;
                init_den += 1.0;
            }
            if seq[t] {
                guess_num += g0;
                slip_den += g1;
            } else {
                slip_num += g1;
            }
            guess_den += g0;
            if !seq[t] {
                // nothing extra; slip_den only counts known states on correct?
            }
            if t + 1 < t_len {
                // ξ(unknown → known)
                let xi_num = alpha[t][0] * trans[0][1] * emis(1, seq[t + 1]) * beta[t + 1][1];
                let xi_den: f64 = (0..2)
                    .flat_map(|a| (0..2).map(move |b| (a, b)))
                    .map(|(a, b)| alpha[t][a] * trans[a][b] * emis(b, seq[t + 1]) * beta[t + 1][b])
                    .sum();
                if xi_den > 0.0 {
                    learn_num += xi_num / xi_den;
                    learn_den += g0;
                }
            }
        }
        // slip denominator should be all known-state mass, recompute cleanly
    }
    // slip_den currently counts known mass on correct observations only; add
    // known mass on incorrect (slip_num counts those) for the denominator.
    let slip_den_full = slip_den + slip_num;

    let clamp = |x: f64, lo: f64, hi: f64| {
        if x.is_finite() {
            x.clamp(lo, hi)
        } else {
            (lo + hi) / 2.0
        }
    };
    BktParams {
        p_init: clamp(
            if init_den > 0.0 {
                init_num / init_den
            } else {
                p.p_init
            },
            0.01,
            0.99,
        ),
        p_learn: clamp(
            if learn_den > 0.0 {
                learn_num / learn_den
            } else {
                p.p_learn
            },
            0.01,
            0.8,
        ),
        // keep guess/slip in the identifiable region (standard BKT practice)
        p_guess: clamp(
            if guess_den > 0.0 {
                guess_num / guess_den
            } else {
                p.p_guess
            },
            0.01,
            0.5,
        ),
        p_slip: clamp(
            if slip_den_full > 0.0 {
                slip_num / slip_den_full
            } else {
                p.p_slip
            },
            0.01,
            0.4,
        ),
    }
}

impl KtModel for Bkt {
    fn name(&self) -> String {
        "BKT".into()
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        _val_idx: &[usize],
        qm: &QMatrix,
        _cfg: &TrainConfig,
    ) -> FitReport {
        self.qm_cache = Some(qm.clone());
        let sequences: Vec<Vec<(usize, bool)>> = train_idx
            .iter()
            .map(|&i| {
                let w = &windows[i];
                (0..w.len)
                    .flat_map(|t| {
                        let correct = w.correct[t] == 1;
                        qm.concepts_of(w.questions[t])
                            .iter()
                            .map(move |&k| (k as usize, correct))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            })
            .collect();
        self.fit_em(&sequences, qm.num_concepts(), 10);
        FitReport {
            epochs_run: 10,
            best_epoch: 10,
            best_val_auc: f64::NAN,
            train_losses: vec![],
        }
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        let qm = self
            .qm_cache
            .as_ref()
            .expect("Bkt::fit must run before predict");
        let mut out = Vec::new();
        for b in 0..batch.batch {
            let len = batch.seq_len(b);
            let mut known: Vec<f64> = self
                .per_concept
                .iter()
                .map(|p| p.p_init)
                .chain(std::iter::repeat(0.4))
                .take(qm.num_concepts())
                .collect();
            for t in 0..len {
                let i = b * batch.t_len + t;
                let q = batch.questions[i] as u32;
                let ks = qm.concepts_of(q);
                if t >= 1 {
                    let p: f64 = ks
                        .iter()
                        .map(|&k| {
                            let params = self
                                .per_concept
                                .get(k as usize)
                                .copied()
                                .unwrap_or_default();
                            params.p_correct(known[k as usize])
                        })
                        .sum::<f64>()
                        / ks.len() as f64;
                    out.push(Prediction {
                        prob: p as f32,
                        label: batch.correct[i] >= 0.5,
                    });
                }
                let correct = batch.correct[i] >= 0.5;
                for &k in ks {
                    let params = self
                        .per_concept
                        .get(k as usize)
                        .copied()
                        .unwrap_or_default();
                    known[k as usize] = params.update(known[k as usize], correct);
                }
            }
        }
        debug_assert_eq!(out.len(), eval_positions(batch).len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use rckt_data::{make_batches, synthetic::SyntheticSpec, windows};

    #[test]
    fn bkt_update_moves_belief_in_right_direction() {
        let p = BktParams::default();
        let up = p.update(0.5, true);
        let down = p.update(0.5, false);
        assert!(up > 0.5, "correct response should raise p(known), got {up}");
        assert!(down < up);
    }

    #[test]
    fn p_correct_monotone_in_knowledge() {
        let p = BktParams::default();
        assert!(p.p_correct(0.9) > p.p_correct(0.1));
        assert!((p.p_correct(0.0) - p.p_guess).abs() < 1e-12);
        assert!((p.p_correct(1.0) - (1.0 - p.p_slip)).abs() < 1e-12);
    }

    #[test]
    fn em_recovers_learning_on_synthetic_mastery_data() {
        // Students who start unknown, learn fast, rarely slip.
        let truth = BktParams {
            p_init: 0.1,
            p_learn: 0.4,
            p_guess: 0.2,
            p_slip: 0.05,
        };
        let mut seqs = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand01 = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let mut known = rand01() < truth.p_init;
            let mut seq = Vec::new();
            for _ in 0..15 {
                let p = if known {
                    1.0 - truth.p_slip
                } else {
                    truth.p_guess
                };
                seq.push(rand01() < p);
                if !known && rand01() < truth.p_learn {
                    known = true;
                }
            }
            seqs.push(seq);
        }
        let mut params = BktParams::default();
        for _ in 0..30 {
            params = em_step(&params, &seqs);
        }
        assert!(
            (params.p_learn - truth.p_learn).abs() < 0.15,
            "p_learn {}",
            params.p_learn
        );
        assert!(params.p_init < 0.35, "p_init {}", params.p_init);
        assert!(params.p_slip < 0.15, "p_slip {}", params.p_slip);
    }

    #[test]
    fn bkt_beats_chance_on_simulator() {
        let ds = SyntheticSpec::assist12().scaled(0.2).generate();
        let ws = windows(&ds, 50, 5);
        let n = ws.len();
        let train: Vec<usize> = (0..n * 8 / 10).collect();
        let test: Vec<usize> = (n * 8 / 10..n).collect();
        let mut m = Bkt::new();
        m.fit(&ws, &train, &[], &ds.q_matrix, &TrainConfig::default());
        let tb = make_batches(&ws, &test, &ds.q_matrix, 32);
        let (auc, _) = evaluate(&m, &tb);
        assert!(auc > 0.52, "BKT auc {auc}");
    }
}
