//! The [`KtModel`] trait and the shared SGD training harness.

use crate::common::Prediction;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rckt_data::{make_batches, Batch, QMatrix, Window};
use rckt_metrics::{accuracy, auc, EarlyStopping};
use std::time::Instant;

/// Training hyper-parameters shared by all models.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub max_epochs: usize,
    pub patience: usize,
    pub batch_size: usize,
    pub clip_norm: f32,
    /// Print an epoch summary line to stderr.
    pub verbose: bool,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 40,
            patience: 10,
            batch_size: 16,
            clip_norm: 5.0,
            verbose: false,
            seed: 0,
        }
    }
}

/// Outcome of a fit.
#[derive(Clone, Debug)]
pub struct FitReport {
    pub epochs_run: usize,
    pub best_epoch: usize,
    pub best_val_auc: f64,
    pub train_losses: Vec<f32>,
}

/// A trainable/predictable knowledge-tracing model.
pub trait KtModel {
    fn name(&self) -> String;

    /// Fit on training windows with validation-based early stopping.
    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        val_idx: &[usize],
        qm: &QMatrix,
        cfg: &TrainConfig,
    ) -> FitReport;

    /// Next-step predictions for every evaluation position of the batch
    /// (valid positions with at least one history step), in
    /// [`crate::common::eval_positions`] order.
    fn predict(&self, batch: &Batch) -> Vec<Prediction>;
}

/// Evaluate a model over batches: (AUC, ACC at 0.5).
pub fn evaluate<M: KtModel + ?Sized>(model: &M, batches: &[Batch]) -> (f64, f64) {
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for b in batches {
        for p in model.predict(b) {
            scores.push(p.prob);
            labels.push(p.label);
        }
    }
    (auc(&scores, &labels), accuracy(&scores, &labels, 0.5))
}

/// Sub-trait for SGD-trained (neural) models; provides `fit` generically.
pub trait SgdModel {
    /// One optimization step on the batch; returns the loss value.
    fn train_batch(&mut self, batch: &Batch, clip_norm: f32, rng: &mut SmallRng) -> f32;
    /// Snapshot the weights (for best-epoch restore).
    fn snapshot(&self) -> String;
    fn restore(&mut self, snapshot: &str);
}

/// Generic epoch-loop driver shared by every trainable model: epoch
/// shuffling, early stopping on validation AUC (patience per the paper),
/// best-weight restore, and uniform observability (a `fit` span with
/// `epoch`/`validate` children, `train.start`/`train.done` events, and the
/// per-epoch [`rckt_obs::report_epoch`] record).
///
/// `ctx` carries the model (plus any shared state) through the hook
/// closures, which keeps the borrows disjoint: `train_epoch` may also
/// capture the shuffle order and batching inputs, `validate` the validation
/// batches. The RNG is seeded once from `cfg.seed` and threaded only
/// through `train_epoch`, so the random stream is identical to the historic
/// inline loops (shuffle, then per-batch training draws; validation never
/// consumes randomness).
#[allow(clippy::too_many_arguments)]
pub fn run_fit<C, S>(
    ctx: &mut C,
    model_name: &str,
    cfg: &TrainConfig,
    n_train: usize,
    n_val: usize,
    mut train_epoch: impl FnMut(&mut C, usize, &mut SmallRng) -> f32,
    mut validate: impl FnMut(&mut C) -> (f64, f64),
    mut snapshot: impl FnMut(&mut C) -> S,
    mut restore: impl FnMut(&mut C, S),
) -> FitReport {
    let _fit_span = rckt_obs::span("fit");
    let fit_start = Instant::now();
    rckt_obs::report_start(model_name, n_train, n_val, cfg.max_epochs);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut es = EarlyStopping::new(cfg.patience);
    let mut best: Option<S> = None;
    let mut train_losses = Vec::new();
    let mut epochs_run = 0;

    for epoch in 0..cfg.max_epochs {
        epochs_run = epoch + 1;
        let epoch_start = Instant::now();
        let mean_loss = {
            let _s = rckt_obs::span("epoch");
            train_epoch(ctx, epoch, &mut rng)
        };
        train_losses.push(mean_loss);

        let (val_auc, val_acc) = {
            let _s = rckt_obs::span("validate");
            validate(ctx)
        };
        rckt_obs::report_epoch(
            &rckt_obs::EpochReport {
                model: model_name,
                epoch,
                mean_loss,
                val_auc,
                val_acc,
                wall_secs: epoch_start.elapsed().as_secs_f64(),
            },
            cfg.verbose,
        );
        if es.update(val_auc) {
            best = Some(snapshot(ctx));
        }
        if es.should_stop() {
            break;
        }
    }
    if let Some(s) = best {
        restore(ctx, s);
    }
    rckt_obs::report_done(
        model_name,
        epochs_run,
        es.best_epoch(),
        es.best(),
        fit_start.elapsed().as_secs_f64(),
    );
    FitReport {
        epochs_run,
        best_epoch: es.best_epoch(),
        best_val_auc: es.best(),
        train_losses,
    }
}

/// Shared fit loop for [`SgdModel`]s, built on [`run_fit`]: standard
/// whole-batch training epochs and [`evaluate`]-based validation.
pub fn sgd_fit<M: KtModel + SgdModel>(
    model: &mut M,
    windows: &[Window],
    train_idx: &[usize],
    val_idx: &[usize],
    qm: &QMatrix,
    cfg: &TrainConfig,
) -> FitReport {
    let val_batches = make_batches(windows, val_idx, qm, cfg.batch_size);
    let mut order = train_idx.to_vec();
    let name = model.name();
    run_fit(
        model,
        &name,
        cfg,
        train_idx.len(),
        val_idx.len(),
        |m, _epoch, rng| {
            order.shuffle(rng);
            let batches = make_batches(windows, &order, qm, cfg.batch_size);
            let mut loss_sum = 0.0f64;
            for b in &batches {
                loss_sum += m.train_batch(b, cfg.clip_norm, rng) as f64;
            }
            (loss_sum / batches.len().max(1) as f64) as f32
        },
        |m| evaluate(m, &val_batches),
        |m| m.snapshot(),
        |m, s| m.restore(&s),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{eval_positions, Prediction};

    /// A constant-probability dummy model for harness tests.
    struct Dummy {
        p: f32,
        fitted: bool,
    }

    impl KtModel for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }

        fn fit(
            &mut self,
            _w: &[Window],
            _t: &[usize],
            _v: &[usize],
            _qm: &QMatrix,
            _cfg: &TrainConfig,
        ) -> FitReport {
            self.fitted = true;
            FitReport {
                epochs_run: 1,
                best_epoch: 1,
                best_val_auc: 0.5,
                train_losses: vec![],
            }
        }

        fn predict(&self, batch: &Batch) -> Vec<Prediction> {
            eval_positions(batch)
                .iter()
                .map(|&i| Prediction {
                    prob: self.p,
                    label: batch.correct[i] >= 0.5,
                })
                .collect()
        }
    }

    #[test]
    fn evaluate_constant_model_gets_chance_auc() {
        let qm = QMatrix::new(vec![vec![0], vec![0]], 1);
        let w = Window {
            student: 0,
            questions: vec![0, 1, 0, 1],
            correct: vec![1, 0, 1, 0],
            len: 4,
        };
        let batches = make_batches(&[w], &[0], &qm, 4);
        let m = Dummy {
            p: 0.5,
            fitted: false,
        };
        let (a, acc) = evaluate(&m, &batches);
        assert!((a - 0.5).abs() < 1e-9);
        // constant 0.5 >= 0.5 predicts "correct" everywhere; labels at eval
        // positions are [0, 1, 0] -> acc = 1/3
        assert!((acc - 1.0 / 3.0).abs() < 1e-9);
    }
}
