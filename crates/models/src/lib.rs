//! # rckt-models
//!
//! Knowledge-tracing baselines and encoders for the RCKT reproduction.

pub mod attn_kt;
pub mod bidir;
pub mod bkt;
pub mod common;
pub mod dimkt;
pub mod dkt;
pub mod dkvmn;
pub mod ikt;
pub mod ktm;
pub mod model;
pub mod pfa;
pub mod qikt;
pub mod saint;

pub use bidir::{BiAttnEncoder, BiEncoder, BiLstmEncoder};
pub use common::{KtEmbedding, Prediction, ResponseCat};
pub use model::{evaluate, run_fit, sgd_fit, FitReport, KtModel, SgdModel, TrainConfig};
