//! QIKT (Chen et al., AAAI 2023): ante-hoc interpretable knowledge tracing
//! with a question-centric IRT prediction layer.
//!
//! Instead of an opaque MLP score, the final probability is a *linear*
//! combination of three interpretable logits — a knowledge **acquisition**
//! score (how much the sequence suggests the student has learned for this
//! question), a knowledge **mastery** score (overall state), and a
//! **question** score (question-intrinsic easiness) — each supervised by an
//! auxiliary BCE loss, so every component keeps a calibrated meaning.

use crate::common::{eval_positions, eval_weights, factual_cats, KtEmbedding, Prediction};
use crate::model::{sgd_fit, FitReport, KtModel, SgdModel, TrainConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt_data::{Batch, QMatrix, Window};
use rckt_tensor::layers::{Lstm, PredictionMlp};
use rckt_tensor::{Adam, Graph, Init, ParamId, ParamStore, Shape, Tx};

#[derive(Clone, Debug)]
pub struct QiktConfig {
    pub dim: usize,
    pub dropout: f32,
    pub lr: f32,
    pub l2: f32,
    /// Weight of the auxiliary per-head losses.
    pub aux_weight: f32,
    pub seed: u64,
}

impl Default for QiktConfig {
    fn default() -> Self {
        QiktConfig {
            dim: 32,
            dropout: 0.2,
            lr: 1e-3,
            l2: 1e-5,
            aux_weight: 0.3,
            seed: 0,
        }
    }
}

pub struct Qikt {
    pub cfg: QiktConfig,
    emb: KtEmbedding,
    lstm: Lstm,
    head_acquisition: PredictionMlp,
    head_mastery: PredictionMlp,
    head_question: PredictionMlp,
    /// The interpretable combination weights over the three logits.
    combine: ParamId,
    store: ParamStore,
    adam: Adam,
}

/// The three interpretable logits plus their combination.
struct QiktForward {
    final_logits: Tx,
    acquisition: Tx,
    mastery: Tx,
    question: Tx,
}

impl Qikt {
    pub fn new(num_questions: usize, num_concepts: usize, cfg: QiktConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.dim;
        let emb = KtEmbedding::new(&mut store, "emb", num_questions, num_concepts, d, &mut rng);
        let lstm = Lstm::new(&mut store, "lstm", d, d, 1, cfg.dropout, &mut rng);
        let head_acquisition =
            PredictionMlp::new(&mut store, "ka", 2 * d, d, cfg.dropout, &mut rng);
        let head_mastery = PredictionMlp::new(&mut store, "km", d, d, cfg.dropout, &mut rng);
        let head_question = PredictionMlp::new(&mut store, "kq", d, d, cfg.dropout, &mut rng);
        let combine = store.register("combine", Shape::matrix(3, 1), Init::Ones, &mut rng);
        let adam = Adam::new(cfg.lr).with_l2(cfg.l2);
        Qikt {
            cfg,
            emb,
            lstm,
            head_acquisition,
            head_mastery,
            head_question,
            combine,
            store,
            adam,
        }
    }

    fn forward(
        &self,
        g: &mut Graph,
        batch: &Batch,
        train: bool,
        rng: &mut SmallRng,
    ) -> QiktForward {
        let store = &self.store;
        let (bsz, t_len) = (batch.batch, batch.t_len);
        let e = self.emb.questions(g, store, batch);
        let cats = factual_cats(batch);
        let a = self.emb.interactions(g, store, e, &cats);
        let h = self
            .lstm
            .forward(g, store, a, bsz, t_len, false, train, rng);
        let prev_idx: Vec<usize> = (0..bsz)
            .flat_map(|b| (0..t_len).map(move |t| b * t_len + t.saturating_sub(1)))
            .collect();
        let h_prev = g.gather_rows(h, &prev_idx);

        let he = g.concat_cols(h_prev, e);
        let acquisition = self.head_acquisition.forward(g, store, he, train, rng);
        let mastery = self.head_mastery.forward(g, store, h_prev, train, rng);
        let question = self.head_question.forward(g, store, e, train, rng);

        let am = g.concat_cols(acquisition, mastery);
        let amq = g.concat_cols(am, question); // [B*T, 3]
        let w = store.leaf(g, self.combine);
        let final_logits = g.matmul(amq, w); // [B*T, 1]
        QiktForward {
            final_logits,
            acquisition,
            mastery,
            question,
        }
    }

    /// The three interpretable component probabilities per position
    /// `(acquisition, mastery, question)` — the model's explanation output.
    pub fn explain(&self, batch: &Batch) -> Vec<(f32, f32, f32)> {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let f = self.forward(&mut g, batch, false, &mut rng);
        let pa = g.sigmoid(f.acquisition);
        let pm = g.sigmoid(f.mastery);
        let pq = g.sigmoid(f.question);
        let (pa, pm, pq) = (
            g.data(pa).to_vec(),
            g.data(pm).to_vec(),
            g.data(pq).to_vec(),
        );
        eval_positions(batch)
            .into_iter()
            .map(|i| (pa[i], pm[i], pq[i]))
            .collect()
    }
}

impl SgdModel for Qikt {
    fn train_batch(&mut self, batch: &Batch, clip_norm: f32, rng: &mut SmallRng) -> f32 {
        self.store.zero_grads();
        let mut g = Graph::new();
        let f = self.forward(&mut g, batch, true, rng);
        let (weights, norm) = eval_weights(batch);
        let main = g.bce_with_logits(f.final_logits, &batch.correct, &weights, norm);
        let aux_a = g.bce_with_logits(f.acquisition, &batch.correct, &weights, norm);
        let aux_q = g.bce_with_logits(f.question, &batch.correct, &weights, norm);
        let aux = g.add(aux_a, aux_q);
        let aux = g.mul_scalar(aux, self.cfg.aux_weight);
        let loss = g.add(main, aux);
        let val = g.value(loss);
        g.backward(loss);
        self.store.accumulate_grads(&g);
        self.store.clip_grad_norm(clip_norm);
        self.adam.step(&mut self.store);
        val
    }

    fn snapshot(&self) -> String {
        self.store.save_json()
    }

    fn restore(&mut self, snapshot: &str) {
        self.store = ParamStore::load_json(snapshot).expect("valid snapshot");
    }
}

impl KtModel for Qikt {
    fn name(&self) -> String {
        "QIKT".into()
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        val_idx: &[usize],
        qm: &QMatrix,
        cfg: &TrainConfig,
    ) -> FitReport {
        sgd_fit(self, windows, train_idx, val_idx, qm, cfg)
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let f = self.forward(&mut g, batch, false, &mut rng);
        let probs = g.sigmoid(f.final_logits);
        let data = g.data(probs);
        eval_positions(batch)
            .into_iter()
            .map(|i| Prediction {
                prob: data[i],
                label: batch.correct[i] >= 0.5,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_data::{make_batches, synthetic::SyntheticSpec, windows};

    #[test]
    fn qikt_loss_decreases() {
        let ds = SyntheticSpec::assist09().scaled(0.03).generate();
        let ws = windows(&ds, 20, 5);
        let idx: Vec<usize> = (0..ws.len().min(8)).collect();
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
        let mut m = Qikt::new(
            ds.num_questions(),
            ds.num_concepts(),
            QiktConfig {
                dim: 16,
                lr: 3e-3,
                ..Default::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let first = m.train_batch(&batches[0], 5.0, &mut rng);
        let mut last = first;
        for _ in 0..25 {
            last = m.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn explanations_align_with_eval_positions() {
        let ds = SyntheticSpec::assist09().scaled(0.02).generate();
        let ws = windows(&ds, 20, 5);
        let batches = make_batches(&ws, &[0, 1], &ds.q_matrix, 2);
        let m = Qikt::new(ds.num_questions(), ds.num_concepts(), QiktConfig::default());
        let ex = m.explain(&batches[0]);
        let preds = m.predict(&batches[0]);
        assert_eq!(ex.len(), preds.len());
        for (a, mm, q) in ex {
            for v in [a, mm, q] {
                assert!(v > 0.0 && v < 1.0);
            }
        }
    }
}
