//! KTM (Vie & Kashima, AAAI 2019): Knowledge Tracing Machines — a
//! second-order factorization machine over sparse one-hot side features
//! (student, question, concepts, win/fail counts), the interpretable
//! machine-learning baseline the paper's related work highlights (its reference \[12\]).
//!
//! ```text
//! ŷ(x) = σ( w₀ + Σᵢ wᵢxᵢ + Σ_{i<j} ⟨vᵢ, vⱼ⟩ xᵢxⱼ )
//! ```
//!
//! with the usual O(k·nnz) pairwise trick. Features per prediction point:
//! the student id, the target question id, its concepts, and log-scaled
//! per-concept win/fail counters (the "PFA features" KTM subsumes).

use crate::common::{eval_positions, Prediction};
use crate::model::{FitReport, KtModel, TrainConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rckt_data::{Batch, QMatrix, Window};
use rckt_tensor::sigmoid;

#[derive(Clone, Debug)]
pub struct KtmConfig {
    /// Latent factor dimension.
    pub factors: usize,
    pub lr: f32,
    pub epochs: usize,
    pub l2: f32,
    pub seed: u64,
}

impl Default for KtmConfig {
    fn default() -> Self {
        KtmConfig {
            factors: 8,
            lr: 0.03,
            epochs: 25,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// Sparse feature vector: `(feature index, value)`.
type Feats = Vec<(usize, f32)>;

pub struct Ktm {
    pub cfg: KtmConfig,
    w0: f32,
    w: Vec<f32>,
    v: Vec<f32>, // [n_features * factors]
    n_students: usize,
    n_questions: usize,
    n_concepts: usize,
    qm_cache: Option<QMatrix>,
}

impl Ktm {
    pub fn new(cfg: KtmConfig) -> Self {
        Ktm {
            cfg,
            w0: 0.0,
            w: Vec::new(),
            v: Vec::new(),
            n_students: 0,
            n_questions: 0,
            n_concepts: 0,
            qm_cache: None,
        }
    }

    fn n_features(&self) -> usize {
        // [students][questions][concepts][win per concept][fail per concept]
        self.n_students + self.n_questions + 3 * self.n_concepts
    }

    fn feature_blocks(&self) -> (usize, usize, usize, usize) {
        let q0 = self.n_students;
        let k0 = q0 + self.n_questions;
        let win0 = k0 + self.n_concepts;
        let fail0 = win0 + self.n_concepts;
        (q0, k0, win0, fail0)
    }

    /// Features for every eval position of a batch. Student ids are hashed
    /// into `n_students` buckets so unseen students still map somewhere.
    fn extract(&self, batch: &Batch, qm: &QMatrix) -> Vec<(Feats, bool)> {
        let (q0, k0, win0, fail0) = self.feature_blocks();
        let mut out = Vec::new();
        for b in 0..batch.batch {
            let len = batch.seq_len(b);
            // student id hashed into a fixed bucket count so unseen ids
            // still map somewhere
            let sid = batch.students[b] as usize % self.n_students.max(1);
            let mut wins = vec![0f32; qm.num_concepts()];
            let mut fails = vec![0f32; qm.num_concepts()];
            for t in 0..len {
                let i = b * batch.t_len + t;
                let q = batch.questions[i];
                let label = batch.correct[i] >= 0.5;
                if t >= 1 {
                    let mut feats: Feats = vec![(sid, 1.0), (q0 + q, 1.0)];
                    for &k in qm.concepts_of(q as u32) {
                        let k = k as usize;
                        feats.push((k0 + k, 1.0));
                        if wins[k] > 0.0 {
                            feats.push((win0 + k, (1.0 + wins[k]).ln()));
                        }
                        if fails[k] > 0.0 {
                            feats.push((fail0 + k, (1.0 + fails[k]).ln()));
                        }
                    }
                    out.push((feats, label));
                }
                for &k in qm.concepts_of(q as u32) {
                    if label {
                        wins[k as usize] += 1.0;
                    } else {
                        fails[k as usize] += 1.0;
                    }
                }
            }
        }
        out
    }

    /// FM forward pass with the O(k·nnz) identity; returns the logit and the
    /// per-factor sums (reused by the gradient).
    fn forward(&self, feats: &Feats) -> (f32, Vec<f32>) {
        let kf = self.cfg.factors;
        let mut logit = self.w0;
        let mut sums = vec![0f32; kf];
        let mut sq_sums = vec![0f32; kf];
        for &(i, x) in feats {
            logit += self.w[i] * x;
            for f in 0..kf {
                let vx = self.v[i * kf + f] * x;
                sums[f] += vx;
                sq_sums[f] += vx * vx;
            }
        }
        for f in 0..kf {
            logit += 0.5 * (sums[f] * sums[f] - sq_sums[f]);
        }
        (logit, sums)
    }
}

impl KtModel for Ktm {
    fn name(&self) -> String {
        "KTM".into()
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        _val_idx: &[usize],
        qm: &QMatrix,
        _cfg: &TrainConfig,
    ) -> FitReport {
        self.qm_cache = Some(qm.clone());
        self.n_students = 64; // hashed buckets
        self.n_questions = qm.num_questions();
        self.n_concepts = qm.num_concepts();
        let n = self.n_features();
        let kf = self.cfg.factors;
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        self.w0 = 0.0;
        self.w = vec![0.0; n];
        self.v = (0..n * kf).map(|_| rng.gen_range(-0.05f32..0.05)).collect();

        let batches = rckt_data::make_batches(windows, train_idx, qm, 64);
        let samples: Vec<_> = batches.iter().flat_map(|b| self.extract(b, qm)).collect();
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut loss = 0.0f64;
            for (feats, label) in &samples {
                let (logit, sums) = self.forward(feats);
                let p = sigmoid(logit);
                let y = *label as u8 as f32;
                let err = p - y;
                loss += -((if *label { p } else { 1.0 - p }).max(1e-7).ln()) as f64;
                let lr = self.cfg.lr;
                self.w0 -= lr * err;
                for &(i, x) in feats {
                    self.w[i] -= lr * (err * x + self.cfg.l2 * self.w[i]);
                    for (f, &sum_f) in sums.iter().enumerate() {
                        let vi = self.v[i * kf + f];
                        let grad = err * x * (sum_f - vi * x);
                        self.v[i * kf + f] -= lr * (grad + self.cfg.l2 * vi);
                    }
                }
            }
            losses.push((loss / samples.len().max(1) as f64) as f32);
        }
        FitReport {
            epochs_run: self.cfg.epochs,
            best_epoch: self.cfg.epochs,
            best_val_auc: f64::NAN,
            train_losses: losses,
        }
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        let qm = self
            .qm_cache
            .as_ref()
            .expect("Ktm::fit must run before predict");
        let samples = self.extract(batch, qm);
        debug_assert_eq!(samples.len(), eval_positions(batch).len());
        samples
            .into_iter()
            .map(|(feats, label)| {
                let (logit, _) = self.forward(&feats);
                Prediction {
                    prob: sigmoid(logit),
                    label,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use rckt_data::{make_batches, synthetic::SyntheticSpec, windows};

    #[test]
    fn ktm_beats_chance() {
        let ds = SyntheticSpec::assist12().scaled(0.25).generate();
        let ws = windows(&ds, 50, 5);
        let n = ws.len();
        let train: Vec<usize> = (0..n * 8 / 10).collect();
        let test: Vec<usize> = (n * 8 / 10..n).collect();
        let mut m = Ktm::new(KtmConfig::default());
        m.fit(&ws, &train, &[], &ds.q_matrix, &TrainConfig::default());
        let tb = make_batches(&ws, &test, &ds.q_matrix, 32);
        let (auc, _) = evaluate(&m, &tb);
        assert!(auc > 0.55, "KTM auc {auc}");
    }

    #[test]
    fn training_loss_decreases() {
        let ds = SyntheticSpec::assist09().scaled(0.1).generate();
        let ws = windows(&ds, 50, 5);
        let idx: Vec<usize> = (0..ws.len()).collect();
        let mut m = Ktm::new(KtmConfig {
            epochs: 8,
            ..Default::default()
        });
        let report = m.fit(&ws, &idx, &[], &ds.q_matrix, &TrainConfig::default());
        assert!(report.train_losses.last().unwrap() < report.train_losses.first().unwrap());
    }

    #[test]
    fn fm_pairwise_identity_matches_naive() {
        // verify the O(k·nnz) trick against the O(nnz²) definition
        let mut m = Ktm::new(KtmConfig {
            factors: 3,
            ..Default::default()
        });
        m.n_students = 2;
        m.n_questions = 2;
        m.n_concepts = 2;
        let n = m.n_features();
        let mut rng = SmallRng::seed_from_u64(5);
        m.w0 = 0.3;
        m.w = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        m.v = (0..n * 3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let feats: Feats = vec![(0, 1.0), (3, 1.0), (5, 0.7), (7, 1.3)];
        let (fast, _) = m.forward(&feats);
        // naive
        let mut naive = m.w0;
        for &(i, x) in &feats {
            naive += m.w[i] * x;
        }
        for a in 0..feats.len() {
            for b in (a + 1)..feats.len() {
                let (i, xi) = feats[a];
                let (j, xj) = feats[b];
                let dot: f32 = (0..3).map(|f| m.v[i * 3 + f] * m.v[j * 3 + f]).sum();
                naive += dot * xi * xj;
            }
        }
        assert!((fast - naive).abs() < 1e-4, "{fast} vs {naive}");
    }
}
