//! DIMKT (Shen et al., SIGIR 2022): difficulty-aware knowledge tracing.
//!
//! The defining idea is to make question/concept **difficulty** a first-class
//! input: empirical error rates from the training split are bucketed into
//! difficulty levels, embedded, and injected both into the recurrent
//! knowledge-state update and into the prediction head. The recurrence here
//! is a difficulty-conditioned gated update (the paper's
//! subtraction/gain-gate cascade collapsed into one GRU-style cell), which
//! preserves the model's measured behaviour: strong gains on datasets with
//! informative per-question statistics.

use crate::common::{
    eval_positions, eval_weights, factual_cats, KtEmbedding, Prediction, ResponseCat,
};
use crate::model::{sgd_fit, FitReport, KtModel, SgdModel, TrainConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt_data::{Batch, QMatrix, Window};
use rckt_tensor::layers::{Embedding, Linear, PredictionMlp};
use rckt_tensor::{Adam, Graph, ParamStore, Shape, Tx};

/// Number of difficulty buckets (the original uses 100 on full-size data;
/// 10 keeps buckets populated at simulator scale).
pub const DIFFICULTY_LEVELS: usize = 10;

#[derive(Clone, Debug)]
pub struct DimktConfig {
    pub dim: usize,
    pub dropout: f32,
    pub lr: f32,
    pub l2: f32,
    pub seed: u64,
}

impl Default for DimktConfig {
    fn default() -> Self {
        DimktConfig {
            dim: 32,
            dropout: 0.2,
            lr: 1e-3,
            l2: 1e-5,
            seed: 0,
        }
    }
}

/// Empirical difficulty tables fit on the training split.
#[derive(Clone, Debug, Default)]
pub struct DifficultyTables {
    /// Bucket per question id.
    pub question: Vec<usize>,
    /// Bucket per concept id.
    pub concept: Vec<usize>,
}

impl DifficultyTables {
    /// Bucketed error rates with an add-one prior toward the global rate.
    pub fn fit(windows: &[Window], idx: &[usize], qm: &QMatrix) -> Self {
        let nq = qm.num_questions();
        let nk = qm.num_concepts();
        let mut q_wrong = vec![0f64; nq];
        let mut q_total = vec![0f64; nq];
        let mut k_wrong = vec![0f64; nk];
        let mut k_total = vec![0f64; nk];
        let mut wrong_all = 0f64;
        let mut total_all = 0f64;
        for &i in idx {
            let w = &windows[i];
            for t in 0..w.len {
                let q = w.questions[t] as usize;
                let miss = (w.correct[t] == 0) as u8 as f64;
                q_wrong[q] += miss;
                q_total[q] += 1.0;
                for &k in qm.concepts_of(q as u32) {
                    k_wrong[k as usize] += miss;
                    k_total[k as usize] += 1.0;
                }
                wrong_all += miss;
                total_all += 1.0;
            }
        }
        let global = if total_all > 0.0 {
            wrong_all / total_all
        } else {
            0.5
        };
        let bucket = |wrong: f64, total: f64| -> usize {
            // shrink empirical rate toward the global mean (5 pseudo-counts)
            let rate = (wrong + 5.0 * global) / (total + 5.0);
            ((rate * DIFFICULTY_LEVELS as f64) as usize).min(DIFFICULTY_LEVELS - 1)
        };
        DifficultyTables {
            question: (0..nq).map(|q| bucket(q_wrong[q], q_total[q])).collect(),
            concept: (0..nk).map(|k| bucket(k_wrong[k], k_total[k])).collect(),
        }
    }

    fn question_buckets(&self, batch: &Batch) -> Vec<usize> {
        batch
            .questions
            .iter()
            .map(|&q| {
                self.question
                    .get(q)
                    .copied()
                    .unwrap_or(DIFFICULTY_LEVELS / 2)
            })
            .collect()
    }

    fn concept_buckets(&self, batch: &Batch, qm_len: usize) -> Vec<usize> {
        let _ = qm_len;
        // mean concept difficulty per position, re-bucketed
        let mut out = Vec::with_capacity(batch.questions.len());
        let mut cursor = 0;
        for &len in &batch.concept_lens {
            let mut sum = 0usize;
            for &k in &batch.concept_flat[cursor..cursor + len] {
                sum += self
                    .concept
                    .get(k)
                    .copied()
                    .unwrap_or(DIFFICULTY_LEVELS / 2);
            }
            out.push(sum / len);
            cursor += len;
        }
        out
    }
}

pub struct Dimkt {
    pub cfg: DimktConfig,
    emb: KtEmbedding,
    qd_emb: Embedding,
    cd_emb: Embedding,
    input_proj: Linear,
    gate: Linear,
    cand: Linear,
    head: PredictionMlp,
    store: ParamStore,
    adam: Adam,
    pub difficulty: DifficultyTables,
}

impl Dimkt {
    pub fn new(num_questions: usize, num_concepts: usize, cfg: DimktConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.dim;
        let emb = KtEmbedding::new(&mut store, "emb", num_questions, num_concepts, d, &mut rng);
        let qd_emb = Embedding::new(&mut store, "qd", DIFFICULTY_LEVELS, d, &mut rng);
        let cd_emb = Embedding::new(&mut store, "cd", DIFFICULTY_LEVELS, d, &mut rng);
        // v_t = [e ⊕ qd ⊕ cd] W
        let input_proj = Linear::new(&mut store, "in", 3 * d, d, &mut rng);
        let gate = Linear::new(&mut store, "gate", 3 * d, d, &mut rng);
        let cand = Linear::new(&mut store, "cand", 3 * d, d, &mut rng);
        let head = PredictionMlp::new(&mut store, "head", 2 * d, d, cfg.dropout, &mut rng);
        let adam = Adam::new(cfg.lr).with_l2(cfg.l2);
        Dimkt {
            cfg,
            emb,
            qd_emb,
            cd_emb,
            input_proj,
            gate,
            cand,
            head,
            store,
            adam,
            difficulty: DifficultyTables::default(),
        }
    }

    /// Next-step logits `[B*T, 1]` (t = 0 masked by the caller).
    fn logits(&self, g: &mut Graph, batch: &Batch, train: bool, rng: &mut SmallRng) -> Tx {
        let store = &self.store;
        let (bsz, t_len, d) = (batch.batch, batch.t_len, self.cfg.dim);
        let e = self.emb.questions(g, store, batch);
        let qd = self
            .qd_emb
            .forward(g, store, &self.difficulty.question_buckets(batch));
        let cd = self
            .cd_emb
            .forward(g, store, &self.difficulty.concept_buckets(batch, 0));
        let eqd = g.concat_cols(e, qd);
        let eqdcd = g.concat_cols(eqd, cd);
        let v = self.input_proj.forward(g, store, eqdcd); // [B*T, d]
        let v = g.tanh(v);

        // response embedding stream
        let cats: Vec<ResponseCat> = factual_cats(batch);
        let r_idx: Vec<usize> = cats.iter().map(|c| *c as usize).collect();
        let r_table = store.leaf(g, self.emb.response.table);
        let r = g.gather_rows(r_table, &r_idx);

        // difficulty-conditioned gated recurrence over time
        let zeros = vec![0.0; bsz * d];
        let mut k = g.input(zeros, Shape::matrix(bsz, d));
        let mut states: Vec<Tx> = Vec::with_capacity(t_len); // k before consuming step t
        for t in 0..t_len {
            states.push(k);
            let idx = rckt_tensor::layers::time_indices(bsz, t_len, t);
            let v_t = g.gather_rows(v, &idx);
            let r_t = g.gather_rows(r, &idx);
            let vr = g.add(v_t, r_t);
            let kv = g.concat_cols(k, vr);
            let kvv = g.concat_cols(kv, v_t);
            let u = self.gate.forward(g, store, kvv);
            let u = g.sigmoid(u);
            let c = self.cand.forward(g, store, kvv);
            let c = g.tanh(c);
            // k' = (1-u) ⊙ k + u ⊙ c
            let uk = g.mul(u, k);
            let k_minus = g.sub(k, uk); // (1-u) ⊙ k
            let uc = g.mul(u, c);
            k = g.add(k_minus, uc);
        }
        // b-major prior states
        let stacked = g.concat_rows(&states);
        let perm: Vec<usize> = (0..bsz)
            .flat_map(|b| (0..t_len).map(move |t| t * bsz + b))
            .collect();
        let k_prev = g.gather_rows(stacked, &perm);

        let x = g.concat_cols(k_prev, v);
        self.head.forward(g, store, x, train, rng)
    }
}

impl SgdModel for Dimkt {
    fn train_batch(&mut self, batch: &Batch, clip_norm: f32, rng: &mut SmallRng) -> f32 {
        self.store.zero_grads();
        let mut g = Graph::new();
        let logits = self.logits(&mut g, batch, true, rng);
        let (weights, norm) = eval_weights(batch);
        let loss = g.bce_with_logits(logits, &batch.correct, &weights, norm);
        let val = g.value(loss);
        g.backward(loss);
        self.store.accumulate_grads(&g);
        self.store.clip_grad_norm(clip_norm);
        self.adam.step(&mut self.store);
        val
    }

    fn snapshot(&self) -> String {
        self.store.save_json()
    }

    fn restore(&mut self, snapshot: &str) {
        self.store = ParamStore::load_json(snapshot).expect("valid snapshot");
    }
}

impl KtModel for Dimkt {
    fn name(&self) -> String {
        "DIMKT".into()
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        val_idx: &[usize],
        qm: &QMatrix,
        cfg: &TrainConfig,
    ) -> FitReport {
        // Difficulty statistics come from the training split only.
        self.difficulty = DifficultyTables::fit(windows, train_idx, qm);
        sgd_fit(self, windows, train_idx, val_idx, qm, cfg)
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let logits = self.logits(&mut g, batch, false, &mut rng);
        let probs = g.sigmoid(logits);
        let data = g.data(probs);
        eval_positions(batch)
            .into_iter()
            .map(|i| Prediction {
                prob: data[i],
                label: batch.correct[i] >= 0.5,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_data::{make_batches, synthetic::SyntheticSpec, windows};

    #[test]
    fn difficulty_tables_bucket_sensibly() {
        let ds = SyntheticSpec::assist09().scaled(0.1).generate();
        let ws = windows(&ds, 50, 5);
        let idx: Vec<usize> = (0..ws.len()).collect();
        let dt = DifficultyTables::fit(&ws, &idx, &ds.q_matrix);
        assert_eq!(dt.question.len(), ds.num_questions());
        assert_eq!(dt.concept.len(), ds.num_concepts());
        assert!(dt.question.iter().all(|&b| b < DIFFICULTY_LEVELS));
        // at least two distinct buckets on real-ish data
        let distinct: std::collections::HashSet<_> = dt.question.iter().collect();
        assert!(distinct.len() >= 2);
    }

    #[test]
    fn dimkt_loss_decreases() {
        let ds = SyntheticSpec::assist09().scaled(0.03).generate();
        let ws = windows(&ds, 20, 5);
        let idx: Vec<usize> = (0..ws.len().min(8)).collect();
        let mut m = Dimkt::new(
            ds.num_questions(),
            ds.num_concepts(),
            DimktConfig {
                dim: 16,
                lr: 3e-3,
                ..Default::default()
            },
        );
        m.difficulty = DifficultyTables::fit(&ws, &idx, &ds.q_matrix);
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        let first = m.train_batch(&batches[0], 5.0, &mut rng);
        let mut last = first;
        for _ in 0..25 {
            last = m.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(last < first, "{first} -> {last}");
    }
}
