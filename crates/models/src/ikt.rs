//! IKT (Minn et al., AAAI 2022): interpretable knowledge tracing with a
//! Tree-Augmented Naive Bayes (TAN) classifier over three student-modeling
//! features:
//!
//! 1. **skill mastery** — a per-concept running estimate of the student's
//!    mastery from their past responses in the window;
//! 2. **ability profile** — the student's recent overall performance level;
//! 3. **problem difficulty** — the question's empirical difficulty from the
//!    training split.
//!
//! Each feature is discretized; the TAN structure (a Chow–Liu tree over the
//! features using class-conditional mutual information) augments naive Bayes
//! with at most one feature-parent per feature.

use crate::common::{eval_positions, Prediction};
use crate::model::{FitReport, KtModel, TrainConfig};
use rckt_data::{make_batches, Batch, QMatrix, Window};

/// Buckets per feature.
const BUCKETS: usize = 5;
const N_FEATURES: usize = 3;

#[derive(Clone, Debug, Default)]
pub struct Ikt {
    /// Question error rate table (index = question id), from the train split.
    difficulty: Vec<f64>,
    global_difficulty: f64,
    /// TAN: parent feature index per feature (`None` → class-only parent).
    parents: [Option<usize>; N_FEATURES],
    /// `p(class)`.
    class_prior: [f64; 2],
    /// `cpt[f][class][parent_value][value]`; features without a feature
    /// parent use `parent_value = 0`.
    cpt: Vec<[Vec<Vec<f64>>; 2]>,
    fitted: bool,
    /// Q-matrix captured at fit time (feature extraction needs concepts).
    qm_cache: Option<QMatrix>,
}

/// Discrete feature vector for one prediction point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IktFeatures {
    pub skill_mastery: usize,
    pub ability_profile: usize,
    pub problem_difficulty: usize,
}

impl IktFeatures {
    fn as_array(self) -> [usize; N_FEATURES] {
        [
            self.skill_mastery,
            self.ability_profile,
            self.problem_difficulty,
        ]
    }
}

fn bucketize(x: f64) -> usize {
    ((x * BUCKETS as f64) as usize).min(BUCKETS - 1)
}

impl Ikt {
    pub fn new() -> Self {
        Self::default()
    }

    /// Extract (features, label) pairs for every eval position of a batch.
    /// Skill mastery and ability are exponentially weighted running
    /// estimates over the window prefix (Laplace-initialized at 0.5).
    pub fn extract(&self, batch: &Batch, qm: &QMatrix) -> Vec<(IktFeatures, bool)> {
        let mut out = Vec::new();
        for b in 0..batch.batch {
            let len = batch.seq_len(b);
            // running per-concept mastery estimate
            let mut mastery: Vec<(f64, f64)> = vec![(0.5, 1.0); qm.num_concepts()]; // (sum, weight)
            let mut ability = (0.5, 1.0);
            for t in 0..len {
                let i = b * batch.t_len + t;
                let q = batch.questions[i];
                let label = batch.correct[i] >= 0.5;
                if t >= 1 {
                    let ks = qm.concepts_of(q as u32);
                    let sm: f64 = ks
                        .iter()
                        .map(|&k| {
                            let (s, w) = mastery[k as usize];
                            s / w
                        })
                        .sum::<f64>()
                        / ks.len() as f64;
                    let ab = ability.0 / ability.1;
                    let diff = self
                        .difficulty
                        .get(q)
                        .copied()
                        .unwrap_or(self.global_difficulty);
                    out.push((
                        IktFeatures {
                            skill_mastery: bucketize(sm),
                            ability_profile: bucketize(ab),
                            problem_difficulty: bucketize(diff),
                        },
                        label,
                    ));
                }
                // update running estimates with decay 0.8
                for &k in qm.concepts_of(q as u32) {
                    let (s, w) = mastery[k as usize];
                    mastery[k as usize] = (0.8 * s + label as u8 as f64, 0.8 * w + 1.0);
                }
                ability = (0.8 * ability.0 + label as u8 as f64, 0.8 * ability.1 + 1.0);
            }
        }
        out
    }

    fn fit_inner(&mut self, windows: &[Window], train_idx: &[usize], qm: &QMatrix) {
        self.qm_cache = Some(qm.clone());
        // 1. question difficulty from train split
        let nq = qm.num_questions();
        let mut wrong = vec![0f64; nq];
        let mut total = vec![0f64; nq];
        let (mut wa, mut ta) = (0f64, 0f64);
        for &i in train_idx {
            let w = &windows[i];
            for t in 0..w.len {
                let q = w.questions[t] as usize;
                let miss = (w.correct[t] == 0) as u8 as f64;
                wrong[q] += miss;
                total[q] += 1.0;
                wa += miss;
                ta += 1.0;
            }
        }
        self.global_difficulty = if ta > 0.0 { wa / ta } else { 0.5 };
        self.difficulty = (0..nq)
            .map(|q| (wrong[q] + 3.0 * self.global_difficulty) / (total[q] + 3.0))
            .collect();

        // 2. training samples
        let batches = make_batches(windows, train_idx, qm, 64);
        let mut samples = Vec::new();
        for b in &batches {
            samples.extend(self.extract(b, qm));
        }
        if samples.is_empty() {
            return;
        }

        // 3. Chow–Liu tree over features with class-conditional MI
        let mi = |fi: usize, fj: usize| -> f64 {
            // I(Xi; Xj | C) with Laplace smoothing
            let mut joint = [[[0f64; BUCKETS]; BUCKETS]; 2];
            let mut ci = [[0f64; BUCKETS]; 2];
            let mut cj = [[0f64; BUCKETS]; 2];
            let mut cls = [0f64; 2];
            for (f, label) in &samples {
                let c = *label as usize;
                let a = f.as_array();
                joint[c][a[fi]][a[fj]] += 1.0;
                ci[c][a[fi]] += 1.0;
                cj[c][a[fj]] += 1.0;
                cls[c] += 1.0;
            }
            let n = samples.len() as f64;
            let mut total = 0.0;
            for c in 0..2 {
                for x in 0..BUCKETS {
                    for y in 0..BUCKETS {
                        let pxy =
                            (joint[c][x][y] + 0.1) / (n + 0.1 * (2 * BUCKETS * BUCKETS) as f64);
                        let pc = (cls[c] + 1.0) / (n + 2.0);
                        let px_c = (ci[c][x] + 0.1) / (cls[c] + 0.1 * BUCKETS as f64);
                        let py_c = (cj[c][y] + 0.1) / (cls[c] + 0.1 * BUCKETS as f64);
                        let pxy_c = pxy / pc;
                        if pxy_c > 0.0 && px_c > 0.0 && py_c > 0.0 {
                            total += pxy * (pxy_c / (px_c * py_c)).ln();
                        }
                    }
                }
            }
            total
        };
        // maximum spanning tree over 3 nodes: keep the 2 heaviest edges that
        // don't form a cycle (with 3 nodes any 2 distinct edges are a tree),
        // rooted at feature 0.
        let mut edges = [(mi(0, 1), 0, 1), (mi(0, 2), 0, 2), (mi(1, 2), 1, 2)];
        edges.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let chosen = &edges[..2];
        // orient away from root 0 (BFS)
        self.parents = [None; N_FEATURES];
        let mut visited = [false; N_FEATURES];
        visited[0] = true;
        let mut frontier = vec![0usize];
        while let Some(u) = frontier.pop() {
            for &(_, a, b) in chosen {
                let (x, y) = (a, b);
                if x == u && !visited[y] {
                    self.parents[y] = Some(x);
                    visited[y] = true;
                    frontier.push(y);
                } else if y == u && !visited[x] {
                    self.parents[x] = Some(y);
                    visited[x] = true;
                    frontier.push(x);
                }
            }
        }

        // 4. CPTs
        let n = samples.len() as f64;
        let mut cls = [0f64; 2];
        for (_, label) in &samples {
            cls[*label as usize] += 1.0;
        }
        self.class_prior = [(cls[0] + 1.0) / (n + 2.0), (cls[1] + 1.0) / (n + 2.0)];
        self.cpt = (0..N_FEATURES)
            .map(|f| {
                let np = if self.parents[f].is_some() {
                    BUCKETS
                } else {
                    1
                };
                let mut counts = [
                    vec![vec![1.0f64; BUCKETS]; np],
                    vec![vec![1.0f64; BUCKETS]; np],
                ];
                for (feat, label) in &samples {
                    let a = feat.as_array();
                    let pv = self.parents[f].map_or(0, |p| a[p]);
                    counts[*label as usize][pv][a[f]] += 1.0;
                }
                for c in counts.iter_mut() {
                    for row in c.iter_mut() {
                        let s: f64 = row.iter().sum();
                        row.iter_mut().for_each(|v| *v /= s);
                    }
                }
                counts
            })
            .collect();
        self.fitted = true;
    }

    /// `p(correct | features)` under the TAN model.
    pub fn posterior(&self, f: IktFeatures) -> f64 {
        if !self.fitted {
            return 0.5;
        }
        let a = f.as_array();
        let mut log_odds = (self.class_prior[1] / self.class_prior[0]).ln();
        for feat in 0..N_FEATURES {
            let pv = self.parents[feat].map_or(0, |p| a[p]);
            log_odds += (self.cpt[feat][1][pv][a[feat]] / self.cpt[feat][0][pv][a[feat]]).ln();
        }
        1.0 / (1.0 + (-log_odds).exp())
    }

    pub fn tan_parents(&self) -> [Option<usize>; N_FEATURES] {
        self.parents
    }
}

impl KtModel for Ikt {
    fn name(&self) -> String {
        "IKT".into()
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        _val_idx: &[usize],
        qm: &QMatrix,
        _cfg: &TrainConfig,
    ) -> FitReport {
        self.fit_inner(windows, train_idx, qm);
        FitReport {
            epochs_run: 1,
            best_epoch: 1,
            best_val_auc: f64::NAN,
            train_losses: vec![],
        }
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        // Feature extraction needs the concept tags, so predict uses the
        // Q-matrix captured during fit.
        let qm = self
            .qm_cache
            .as_ref()
            .expect("Ikt::fit must run before predict");
        let feats = self.extract(batch, qm);
        let pos = eval_positions(batch);
        debug_assert_eq!(feats.len(), pos.len());
        feats
            .into_iter()
            .map(|(f, label)| Prediction {
                prob: self.posterior(f) as f32,
                label,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use rckt_data::synthetic::SyntheticSpec;
    use rckt_data::windows;

    #[test]
    fn ikt_fits_and_beats_chance() {
        let ds = SyntheticSpec::assist12().scaled(0.3).generate();
        let ws = windows(&ds, 50, 5);
        let n = ws.len();
        let train: Vec<usize> = (0..n * 8 / 10).collect();
        let test: Vec<usize> = (n * 8 / 10..n).collect();
        let mut m = Ikt::new();
        m.fit(&ws, &train, &[], &ds.q_matrix, &TrainConfig::default());
        let tb = make_batches(&ws, &test, &ds.q_matrix, 32);
        let (auc, acc) = evaluate(&m, &tb);
        assert!(auc > 0.55, "IKT auc {auc}");
        assert!(acc > 0.5);
    }

    #[test]
    fn tan_builds_a_tree() {
        let ds = SyntheticSpec::assist09().scaled(0.2).generate();
        let ws = windows(&ds, 50, 5);
        let idx: Vec<usize> = (0..ws.len()).collect();
        let mut m = Ikt::new();
        m.fit(&ws, &idx, &[], &ds.q_matrix, &TrainConfig::default());
        let parents = m.tan_parents();
        // root has no parent; at least one feature has a feature-parent
        assert!(parents[0].is_none());
        assert!(parents.iter().filter(|p| p.is_some()).count() >= 1);
        // no self-parent
        for (i, p) in parents.iter().enumerate() {
            assert_ne!(*p, Some(i));
        }
    }

    #[test]
    fn posterior_is_probability() {
        let ds = SyntheticSpec::assist09().scaled(0.1).generate();
        let ws = windows(&ds, 50, 5);
        let idx: Vec<usize> = (0..ws.len()).collect();
        let mut m = Ikt::new();
        m.fit(&ws, &idx, &[], &ds.q_matrix, &TrainConfig::default());
        for sm in 0..BUCKETS {
            for ab in 0..BUCKETS {
                for d in 0..BUCKETS {
                    let p = m.posterior(IktFeatures {
                        skill_mastery: sm,
                        ability_profile: ab,
                        problem_difficulty: d,
                    });
                    assert!(p > 0.0 && p < 1.0);
                }
            }
        }
    }

    #[test]
    fn mastery_raises_posterior() {
        let ds = SyntheticSpec::assist12().scaled(0.2).generate();
        let ws = windows(&ds, 50, 5);
        let idx: Vec<usize> = (0..ws.len()).collect();
        let mut m = Ikt::new();
        m.fit(&ws, &idx, &[], &ds.q_matrix, &TrainConfig::default());
        let low = m.posterior(IktFeatures {
            skill_mastery: 0,
            ability_profile: 0,
            problem_difficulty: 2,
        });
        let high = m.posterior(IktFeatures {
            skill_mastery: BUCKETS - 1,
            ability_profile: BUCKETS - 1,
            problem_difficulty: 2,
        });
        assert!(
            high > low,
            "mastery should increase p(correct): {low} vs {high}"
        );
    }
}
