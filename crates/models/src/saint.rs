//! SAINT (Choi et al., L@S 2020): Separated Self-Attentive Neural Knowledge
//! Tracing — the encoder-decoder transformer for KT. The encoder
//! self-attends over the *exercise* stream (questions only); the decoder
//! self-attends over the *response* stream and cross-attends to the encoder,
//! separating "what was asked" from "how the student answered". A staple
//! baseline of the attention-KT literature that a library release ships
//! with (not one of the paper's six comparators).

use crate::common::{eval_positions, eval_weights, factual_cats, KtEmbedding, Prediction};
use crate::model::{sgd_fit, FitReport, KtModel, SgdModel, TrainConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt_data::{Batch, QMatrix, Window};
use rckt_tensor::layers::{
    causal_mask, padding_mask, AttentionBias, FeedForward, LayerNorm, MultiHeadAttention,
    PositionalEmbedding, PredictionMlp,
};
use rckt_tensor::{Adam, Graph, ParamStore, Tx};

#[derive(Clone, Debug)]
pub struct SaintConfig {
    pub dim: usize,
    pub heads: usize,
    /// Encoder/decoder blocks each.
    pub layers: usize,
    pub dropout: f32,
    pub lr: f32,
    pub l2: f32,
    pub max_len: usize,
    pub seed: u64,
}

impl Default for SaintConfig {
    fn default() -> Self {
        SaintConfig {
            dim: 32,
            heads: 4,
            layers: 1,
            dropout: 0.2,
            lr: 2e-3,
            l2: 1e-5,
            max_len: 200,
            seed: 0,
        }
    }
}

struct EncBlock {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

struct DecBlock {
    self_attn: MultiHeadAttention,
    cross_attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    ln3: LayerNorm,
}

pub struct Saint {
    pub cfg: SaintConfig,
    emb: KtEmbedding,
    pos: PositionalEmbedding,
    enc: Vec<EncBlock>,
    dec: Vec<DecBlock>,
    head: PredictionMlp,
    store: ParamStore,
    adam: Adam,
}

impl Saint {
    pub fn new(num_questions: usize, num_concepts: usize, cfg: SaintConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.dim;
        let emb = KtEmbedding::new(&mut store, "emb", num_questions, num_concepts, d, &mut rng);
        let pos = PositionalEmbedding::new(&mut store, "pos", cfg.max_len, d, &mut rng);
        let enc = (0..cfg.layers)
            .map(|l| EncBlock {
                attn: MultiHeadAttention::new(
                    &mut store,
                    &format!("enc{l}.attn"),
                    d,
                    cfg.heads,
                    false,
                    cfg.dropout,
                    &mut rng,
                ),
                ffn: FeedForward::new(
                    &mut store,
                    &format!("enc{l}.ffn"),
                    d,
                    2 * d,
                    cfg.dropout,
                    &mut rng,
                ),
                ln1: LayerNorm::new(&mut store, &format!("enc{l}.ln1"), d, &mut rng),
                ln2: LayerNorm::new(&mut store, &format!("enc{l}.ln2"), d, &mut rng),
            })
            .collect();
        let dec = (0..cfg.layers)
            .map(|l| DecBlock {
                self_attn: MultiHeadAttention::new(
                    &mut store,
                    &format!("dec{l}.self"),
                    d,
                    cfg.heads,
                    false,
                    cfg.dropout,
                    &mut rng,
                ),
                cross_attn: MultiHeadAttention::new(
                    &mut store,
                    &format!("dec{l}.cross"),
                    d,
                    cfg.heads,
                    false,
                    cfg.dropout,
                    &mut rng,
                ),
                ffn: FeedForward::new(
                    &mut store,
                    &format!("dec{l}.ffn"),
                    d,
                    2 * d,
                    cfg.dropout,
                    &mut rng,
                ),
                ln1: LayerNorm::new(&mut store, &format!("dec{l}.ln1"), d, &mut rng),
                ln2: LayerNorm::new(&mut store, &format!("dec{l}.ln2"), d, &mut rng),
                ln3: LayerNorm::new(&mut store, &format!("dec{l}.ln3"), d, &mut rng),
            })
            .collect();
        let head = PredictionMlp::new(&mut store, "head", 2 * d, d, cfg.dropout, &mut rng);
        let adam = Adam::new(cfg.lr).with_l2(cfg.l2);
        Saint {
            cfg,
            emb,
            pos,
            enc,
            dec,
            head,
            store,
            adam,
        }
    }

    /// Next-step logits `[B*T, 1]` (position `t = 0` masked by the caller):
    /// decoder position `t` sees responses `< t` and exercises `≤ t`.
    fn logits(&self, g: &mut Graph, batch: &Batch, train: bool, rng: &mut SmallRng) -> Tx {
        let store = &self.store;
        let (bsz, t_len, d) = (batch.batch, batch.t_len, self.cfg.dim);
        let e = self.emb.questions(g, store, batch);
        let cats = factual_cats(batch);
        let a = self.emb.interactions(g, store, e, &cats);

        // response stream shifted right: position t holds interaction t−1
        let shift_idx: Vec<usize> = (0..bsz)
            .flat_map(|b| (0..t_len).map(move |t| b * t_len + t.saturating_sub(1)))
            .collect();
        let a_prev = g.gather_rows(a, &shift_idx);
        let mut zero_first = vec![1.0f32; bsz * t_len * d];
        for b in 0..bsz {
            zero_first[b * t_len * d..b * t_len * d + d]
                .iter_mut()
                .for_each(|v| *v = 0.0);
        }
        let a_prev = g.dropout_mask(a_prev, zero_first);

        let p = self.pos.forward(g, store, bsz, t_len);
        let mut enc_x = g.add(e, p);
        let mut dec_x = g.add(a_prev, p);

        // causal-inclusive masks (+ padding) for both streams
        let mut mask = causal_mask(bsz, t_len);
        for (m, pm) in mask
            .iter_mut()
            .zip(padding_mask(bsz, t_len, t_len, &batch.valid))
        {
            *m += pm;
        }
        let bias = AttentionBias {
            mask: Some(mask),
            distances: None,
        };

        for blk in &self.enc {
            let xn = blk.ln1.forward(g, store, enc_x);
            let att = blk
                .attn
                .forward(g, store, xn, xn, xn, bsz, t_len, t_len, &bias, train, rng);
            let x1 = g.add(enc_x, att.out);
            let x1n = blk.ln2.forward(g, store, x1);
            let ff = blk.ffn.forward(g, store, x1n, train, rng);
            enc_x = g.add(x1, ff);
        }
        for blk in &self.dec {
            let xn = blk.ln1.forward(g, store, dec_x);
            let att = blk
                .self_attn
                .forward(g, store, xn, xn, xn, bsz, t_len, t_len, &bias, train, rng);
            let x1 = g.add(dec_x, att.out);
            let x1n = blk.ln2.forward(g, store, x1);
            let enc_n = blk.ln2.forward(g, store, enc_x);
            let cross = blk.cross_attn.forward(
                g, store, x1n, enc_n, enc_n, bsz, t_len, t_len, &bias, train, rng,
            );
            let x2 = g.add(x1, cross.out);
            let x2n = blk.ln3.forward(g, store, x2);
            let ff = blk.ffn.forward(g, store, x2n, train, rng);
            dec_x = g.add(x2, ff);
        }
        let x = g.concat_cols(dec_x, e);
        self.head.forward(g, store, x, train, rng)
    }
}

impl SgdModel for Saint {
    fn train_batch(&mut self, batch: &Batch, clip_norm: f32, rng: &mut SmallRng) -> f32 {
        self.store.zero_grads();
        let mut g = Graph::new();
        let logits = self.logits(&mut g, batch, true, rng);
        let (weights, norm) = eval_weights(batch);
        let loss = g.bce_with_logits(logits, &batch.correct, &weights, norm);
        let val = g.value(loss);
        g.backward(loss);
        self.store.accumulate_grads(&g);
        self.store.clip_grad_norm(clip_norm);
        self.adam.step(&mut self.store);
        val
    }

    fn snapshot(&self) -> String {
        self.store.save_json()
    }

    fn restore(&mut self, snapshot: &str) {
        self.store = ParamStore::load_json(snapshot).expect("valid snapshot");
    }
}

impl KtModel for Saint {
    fn name(&self) -> String {
        "SAINT".into()
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        val_idx: &[usize],
        qm: &QMatrix,
        cfg: &TrainConfig,
    ) -> FitReport {
        sgd_fit(self, windows, train_idx, val_idx, qm, cfg)
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let logits = self.logits(&mut g, batch, false, &mut rng);
        let probs = g.sigmoid(logits);
        let data = g.data(probs);
        eval_positions(batch)
            .into_iter()
            .map(|i| Prediction {
                prob: data[i],
                label: batch.correct[i] >= 0.5,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_data::{make_batches, synthetic::SyntheticSpec, windows};

    #[test]
    fn saint_loss_decreases() {
        let ds = SyntheticSpec::assist09().scaled(0.03).generate();
        let ws = windows(&ds, 20, 5);
        let idx: Vec<usize> = (0..ws.len().min(8)).collect();
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
        let mut m = Saint::new(
            ds.num_questions(),
            ds.num_concepts(),
            SaintConfig {
                dim: 16,
                heads: 2,
                lr: 3e-3,
                ..Default::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let first = m.train_batch(&batches[0], 5.0, &mut rng);
        let mut last = first;
        for _ in 0..25 {
            last = m.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(last < first, "{first} -> {last}");
    }

    /// The decoder must not see the response at its own position: flipping
    /// r_t leaves the prediction at t unchanged.
    #[test]
    fn saint_no_response_leak() {
        let ds = SyntheticSpec::assist09().scaled(0.02).generate();
        let ws = windows(&ds, 10, 5);
        let m = Saint::new(
            ds.num_questions(),
            ds.num_concepts(),
            SaintConfig {
                dim: 16,
                heads: 2,
                dropout: 0.0,
                ..Default::default()
            },
        );
        let batches = make_batches(&ws, &[0], &ds.q_matrix, 1);
        let b = &batches[0];
        let preds = m.predict(b);
        let mut flipped = b.clone();
        let last = b.seq_len(0) - 1;
        flipped.correct[last] = 1.0 - flipped.correct[last];
        let preds2 = m.predict(&flipped);
        let pos = eval_positions(b);
        let k = pos.iter().position(|&i| i == last).unwrap();
        assert!(
            (preds[k].prob - preds2[k].prob).abs() < 1e-6,
            "own response leaked: {} vs {}",
            preds[k].prob,
            preds2[k].prob
        );
    }

    #[test]
    fn saint_predictions_are_probabilities() {
        let ds = SyntheticSpec::assist09().scaled(0.02).generate();
        let ws = windows(&ds, 10, 5);
        let m = Saint::new(
            ds.num_questions(),
            ds.num_concepts(),
            SaintConfig::default(),
        );
        let batches = make_batches(&ws, &[0, 1], &ds.q_matrix, 2);
        for p in m.predict(&batches[0]) {
            assert!(p.prob > 0.0 && p.prob < 1.0);
        }
    }
}
