//! Shared machinery: the paper's embedding scheme (Eq. 23/24), response
//! categories, and prediction records.

use rand::rngs::SmallRng;
use rckt_data::Batch;
use rckt_tensor::layers::Embedding;
use rckt_tensor::{Graph, ParamStore, Tx};

/// Response categories fed to the models (Sec. IV-D1): the paper fuses
/// binary correctness into **three** categories so counterfactual reasoning
/// can mark responses as unknown.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResponseCat {
    Incorrect = 0,
    Correct = 1,
    /// Masked/unknown (used by RCKT's counterfactual sequences).
    Masked = 2,
}

impl ResponseCat {
    pub fn from_correct(correct: bool) -> Self {
        if correct {
            ResponseCat::Correct
        } else {
            ResponseCat::Incorrect
        }
    }

    pub fn flipped(self) -> Self {
        match self {
            ResponseCat::Incorrect => ResponseCat::Correct,
            ResponseCat::Correct => ResponseCat::Incorrect,
            ResponseCat::Masked => ResponseCat::Masked,
        }
    }
}

/// One scored prediction (probability of a correct answer + ground truth).
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    pub prob: f32,
    pub label: bool,
}

/// A virtual target question probing proficiency on one concept (Eq. 30).
#[derive(Clone, Debug)]
pub struct ProbeSpec {
    /// Flat b-major position the probe occupies in the batch.
    pub position: usize,
    /// All question ids tagged with the probed concept.
    pub questions: Vec<usize>,
    pub concept: usize,
}

/// The paper's input embedding (Eq. 23/24):
///
/// ```text
/// e_i = q_i + mean_{k ∈ K_i} k        (question + mean concept embedding)
/// a_i = e_i + r_i                     (plus 3-category response embedding)
/// ```
pub struct KtEmbedding {
    pub question: Embedding,
    pub concept: Embedding,
    pub response: Embedding,
    pub dim: usize,
}

impl KtEmbedding {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        num_questions: usize,
        num_concepts: usize,
        dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        KtEmbedding {
            question: Embedding::new(store, &format!("{name}.q"), num_questions, dim, rng),
            concept: Embedding::new(store, &format!("{name}.k"), num_concepts, dim, rng),
            response: Embedding::new(store, &format!("{name}.r"), 3, dim, rng),
            dim,
        }
    }

    /// Question embeddings `e` (Eq. 23) for every position of a batch:
    /// `[B*T, d]`.
    pub fn questions(&self, g: &mut Graph, store: &ParamStore, batch: &Batch) -> Tx {
        let q = self.question.forward(g, store, &batch.questions);
        let k_all = self.concept.forward(g, store, &batch.concept_flat);
        let k_mean = g.segment_mean_rows(k_all, &batch.concept_lens);
        g.add(q, k_mean)
    }

    /// [`KtEmbedding::questions`] with probe positions overridden per the
    /// paper's Eq. 30: a probe's embedding is the mean ID embedding of all
    /// questions tagged with the probed concept, plus the concept embedding
    /// — a virtual "average question of concept k".
    pub fn questions_with_probes(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        batch: &Batch,
        probes: &[ProbeSpec],
    ) -> Tx {
        let e = self.questions(g, store, batch);
        if probes.is_empty() {
            return e;
        }
        let n = batch.batch * batch.t_len;
        let q_table = store.leaf(g, self.question.table);
        let k_table = store.leaf(g, self.concept.table);
        let mut parts = vec![e];
        let mut index: Vec<usize> = (0..n).collect();
        for (pi, probe) in probes.iter().enumerate() {
            assert!(
                !probe.questions.is_empty(),
                "probe concept has no questions"
            );
            let qs = g.gather_rows(q_table, &probe.questions);
            let q_mean = g.segment_mean_rows(qs, &[probe.questions.len()]);
            let k_row = g.gather_rows(k_table, &[probe.concept]);
            let probe_e = g.add(q_mean, k_row);
            parts.push(probe_e);
            assert!(probe.position < n);
            index[probe.position] = n + pi;
        }
        let ext = g.concat_rows(&parts);
        g.gather_rows(ext, &index)
    }

    /// Concept-mean-only embeddings (no question ID), used by models that
    /// operate at concept level (classic SAKT) and by the Eq. 30 probe.
    pub fn concepts_only(&self, g: &mut Graph, store: &ParamStore, batch: &Batch) -> Tx {
        let k_all = self.concept.forward(g, store, &batch.concept_flat);
        g.segment_mean_rows(k_all, &batch.concept_lens)
    }

    /// Interaction embeddings `a = e + r` (Eq. 24) with explicit categories.
    pub fn interactions(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        e: Tx,
        cats: &[ResponseCat],
    ) -> Tx {
        let idx: Vec<usize> = cats.iter().map(|c| *c as usize).collect();
        let r = self.response.forward(g, store, &idx);
        g.add(e, r)
    }
}

/// Response categories of a factual batch (no masking).
pub fn factual_cats(batch: &Batch) -> Vec<ResponseCat> {
    batch
        .correct
        .iter()
        .map(|&c| ResponseCat::from_correct(c >= 0.5))
        .collect()
}

/// Positions eligible for next-step evaluation: valid and not the first
/// response of their sequence (no history to condition on).
pub fn eval_positions(batch: &Batch) -> Vec<usize> {
    let mut out = Vec::new();
    for b in 0..batch.batch {
        for t in 1..batch.t_len {
            let i = b * batch.t_len + t;
            if batch.valid[i] {
                out.push(i);
            }
        }
    }
    out
}

/// BCE weights selecting exactly the [`eval_positions`] of the batch.
pub fn eval_weights(batch: &Batch) -> (Vec<f32>, f32) {
    let mut w = vec![0.0f32; batch.batch * batch.t_len];
    let pos = eval_positions(batch);
    for &i in &pos {
        w[i] = 1.0;
    }
    (w, pos.len().max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rckt_data::{preprocess::Window, QMatrix};

    fn toy_batch() -> (Batch, QMatrix) {
        let qm = QMatrix::new(vec![vec![0], vec![0, 1], vec![1]], 2);
        let w1 = Window {
            student: 0,
            questions: vec![0, 1, 2, 0],
            correct: vec![1, 0, 1, 0],
            len: 4,
        };
        let w2 = Window {
            student: 1,
            questions: vec![2, 1, 0, 0],
            correct: vec![0, 1, 0, 0],
            len: 2,
        };
        (Batch::from_windows(&[&w1, &w2], &qm), qm)
    }

    #[test]
    fn embedding_shapes() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = KtEmbedding::new(&mut store, "emb", 3, 2, 8, &mut rng);
        let (batch, _) = toy_batch();
        let mut g = Graph::new();
        let e = emb.questions(&mut g, &store, &batch);
        assert_eq!(g.shape(e).0, vec![8, 8]);
        let a = emb.interactions(&mut g, &store, e, &factual_cats(&batch));
        assert_eq!(g.shape(a).0, vec![8, 8]);
    }

    #[test]
    fn multi_concept_question_averages() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = KtEmbedding::new(&mut store, "emb", 3, 2, 4, &mut rng);
        let (batch, _) = toy_batch();
        let mut g = Graph::new();
        let e = emb.questions(&mut g, &store, &batch);
        // position 1 (question 1, concepts {0,1}): e = q1 + (k0+k1)/2
        let q_table = store.data(store.id("emb.q").unwrap());
        let k_table = store.data(store.id("emb.k").unwrap());
        for j in 0..4 {
            let expect = q_table[4 + j] + 0.5 * (k_table[j] + k_table[4 + j]);
            assert!((g.data(e)[4 + j] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn response_cat_flip() {
        assert_eq!(ResponseCat::Correct.flipped(), ResponseCat::Incorrect);
        assert_eq!(ResponseCat::Incorrect.flipped(), ResponseCat::Correct);
        assert_eq!(ResponseCat::Masked.flipped(), ResponseCat::Masked);
    }

    #[test]
    fn eval_positions_skip_first_and_padding() {
        let (batch, _) = toy_batch();
        let pos = eval_positions(&batch);
        // seq 0: t=1..3 valid (len 4) -> 1,2,3 ; seq 1: len 2 -> t=1 -> index 5
        assert_eq!(pos, vec![1, 2, 3, 5]);
        let (w, n) = eval_weights(&batch);
        assert_eq!(n, 4.0);
        assert_eq!(w.iter().filter(|&&x| x == 1.0).count(), 4);
    }
}
