//! Bidirectional knowledge-state encoders (paper Eq. 25):
//!
//! ```text
//! h_i = fwdEnc(A_{1:i-1}) + bwdEnc(A_{i+1:t+1})
//! ```
//!
//! The response influence approximation requires predicting *intermediate*
//! responses from both past and future context, so every encoder here is
//! strictly exclusive of position `i` itself: no path from `a_i` (which
//! contains the response `r_i`) to `h_i` exists at any depth. The three
//! implementations mirror the paper's adapted backbones:
//!
//! * [`BiLstmEncoder`] — RCKT-DKT (BiLSTM);
//! * [`BiAttnEncoder`] with `monotonic = false` — RCKT-SAKT;
//! * [`BiAttnEncoder`] with `monotonic = true` — RCKT-AKT (monotonic
//!   attention made bidirectional "due to the duality of distance").

use rand::rngs::SmallRng;
use rckt_tensor::layers::{
    abs_distances, AttentionBias, FeedForward, LayerNorm, Lstm, MultiHeadAttention,
    PositionalEmbedding,
};
use rckt_tensor::{Graph, ParamStore, Shape, Tx};

/// A bidirectional sequence encoder producing per-position knowledge states.
pub trait BiEncoder {
    /// Compute `h` (`[B*T, d]`) from question embeddings `e` and interaction
    /// embeddings `a` (both `[B*T, d]`, b-major). `valid` marks real
    /// (non-padding) positions; information never flows from position `i`'s
    /// own interaction embedding into `h_i`.
    #[allow(clippy::too_many_arguments)]
    fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        e: Tx,
        a: Tx,
        batch: usize,
        t_len: usize,
        valid: &[bool],
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx;

    fn dim(&self) -> usize;

    /// Human-readable backbone name ("DKT" / "SAKT" / "AKT").
    fn backbone(&self) -> &'static str;
}

/// BiLSTM encoder (RCKT-DKT).
pub struct BiLstmEncoder {
    fwd: Lstm,
    bwd: Lstm,
    dim: usize,
    /// Ablation: ignore the backward direction (`h_i` from past only).
    /// The paper argues the response influence approximation *requires*
    /// bidirectionality (Sec. IV-C4); this switch quantifies that claim.
    forward_only: bool,
}

impl BiLstmEncoder {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        layers: usize,
        dropout: f32,
        rng: &mut SmallRng,
    ) -> Self {
        BiLstmEncoder {
            fwd: Lstm::new(
                store,
                &format!("{name}.fwd"),
                dim,
                dim,
                layers,
                dropout,
                rng,
            ),
            bwd: Lstm::new(
                store,
                &format!("{name}.bwd"),
                dim,
                dim,
                layers,
                dropout,
                rng,
            ),
            dim,
            forward_only: false,
        }
    }

    /// The uni-directional ablation (backward half disabled).
    pub fn forward_only(mut self) -> Self {
        self.forward_only = true;
        self
    }

    /// Whether the backward half is disabled. Forward-only encoders are
    /// the ones eligible for incremental (append-one) inference: `h_i`
    /// depends only on `a_1..a_{i-1}`, so appending a response leaves
    /// every earlier state untouched.
    pub fn is_forward_only(&self) -> bool {
        self.forward_only
    }

    /// The forward-direction LSTM (for incremental state advance).
    pub fn forward_lstm(&self) -> &Lstm {
        &self.fwd
    }
}

impl BiEncoder for BiLstmEncoder {
    fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        _e: Tx,
        a: Tx,
        batch: usize,
        t_len: usize,
        valid: &[bool],
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx {
        let d = self.dim;
        // out_f[(b,t)] summarizes a_1..a_t; out_b[(b,t)] summarizes a_t..a_T.
        // The validity gate keeps padding (which the reverse pass meets
        // first) from corrupting the state.
        let out_f =
            self.fwd
                .forward_masked(g, store, a, batch, t_len, false, Some(valid), train, rng);
        let out_b =
            self.bwd
                .forward_masked(g, store, a, batch, t_len, true, Some(valid), train, rng);
        // Append a zero block so boundary positions can gather a zero state.
        let zeros = g.input(vec![0.0; batch * d], Shape::matrix(batch, d));
        let f_ext = g.concat_rows(&[out_f, zeros]);
        let b_ext = g.concat_rows(&[out_b, zeros]);
        let zero_row = |b: usize| batch * t_len + b;
        let f_idx: Vec<usize> = (0..batch)
            .flat_map(|b| {
                (0..t_len).map(move |t| {
                    if t == 0 {
                        zero_row(b)
                    } else {
                        b * t_len + t - 1
                    }
                })
            })
            .collect();
        let b_idx: Vec<usize> = (0..batch)
            .flat_map(|b| {
                (0..t_len).map(move |t| {
                    if t + 1 >= t_len {
                        zero_row(b)
                    } else {
                        b * t_len + t + 1
                    }
                })
            })
            .collect();
        let h_f = g.gather_rows(f_ext, &f_idx);
        if self.forward_only {
            return h_f;
        }
        let h_b = g.gather_rows(b_ext, &b_idx);
        g.add(h_f, h_b)
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn backbone(&self) -> &'static str {
        "DKT"
    }
}

struct BiAttnBlock {
    attn_f: MultiHeadAttention,
    attn_b: MultiHeadAttention,
    ffn: FeedForward,
    ln_q: LayerNorm,
    ln_kv: LayerNorm,
    ln_ff: LayerNorm,
}

/// Bidirectional attention encoder (RCKT-SAKT / RCKT-AKT).
///
/// Two strictly-causal cross-attention passes per block — one over the
/// strict past (`j < i`), one over the strict future (`j > i`) — summed per
/// Eq. 25, then a feed-forward with residuals. Keys/values are always the
/// interaction embeddings `a` (+ position), so the visibility argument is a
/// one-step proof: query `i` only ever touches `a_j` with `j ≠ i`.
pub struct BiAttnEncoder {
    pos: PositionalEmbedding,
    blocks: Vec<BiAttnBlock>,
    dim: usize,
    monotonic: bool,
}

impl BiAttnEncoder {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        layers: usize,
        monotonic: bool,
        dropout: f32,
        max_len: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let pos = PositionalEmbedding::new(store, &format!("{name}.pos"), max_len, dim, rng);
        let blocks = (0..layers)
            .map(|l| BiAttnBlock {
                attn_f: MultiHeadAttention::new(
                    store,
                    &format!("{name}.blk{l}.attf"),
                    dim,
                    heads,
                    monotonic,
                    dropout,
                    rng,
                ),
                attn_b: MultiHeadAttention::new(
                    store,
                    &format!("{name}.blk{l}.attb"),
                    dim,
                    heads,
                    monotonic,
                    dropout,
                    rng,
                ),
                ffn: FeedForward::new(
                    store,
                    &format!("{name}.blk{l}.ffn"),
                    dim,
                    2 * dim,
                    dropout,
                    rng,
                ),
                ln_q: LayerNorm::new(store, &format!("{name}.blk{l}.ln_q"), dim, rng),
                ln_kv: LayerNorm::new(store, &format!("{name}.blk{l}.ln_kv"), dim, rng),
                ln_ff: LayerNorm::new(store, &format!("{name}.blk{l}.ln_ff"), dim, rng),
            })
            .collect();
        BiAttnEncoder {
            pos,
            blocks,
            dim,
            monotonic,
        }
    }

    /// Strictly-causal additive masks plus a per-row "has any visible key"
    /// indicator (rows with no visible key get their attention output
    /// zeroed — softmax over an all-masked row would silently go uniform).
    fn masks(batch: usize, t_len: usize, valid: &[bool], future: bool) -> (Vec<f32>, Vec<f32>) {
        let mut mask = vec![0.0f32; batch * t_len * t_len];
        let mut row_ok = vec![0.0f32; batch * t_len];
        for b in 0..batch {
            for i in 0..t_len {
                let mut any = false;
                for j in 0..t_len {
                    let visible = if future { j > i } else { j < i };
                    let allowed = visible && valid[b * t_len + j];
                    if allowed {
                        any = true;
                    } else {
                        mask[b * t_len * t_len + i * t_len + j] = -1e9;
                    }
                }
                row_ok[b * t_len + i] = any as u8 as f32;
            }
        }
        (mask, row_ok)
    }
}

impl BiEncoder for BiAttnEncoder {
    fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        e: Tx,
        a: Tx,
        batch: usize,
        t_len: usize,
        valid: &[bool],
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx {
        let d = self.dim;
        let p = self.pos.forward(g, store, batch, t_len);
        let mut q_stream = g.add(e, p);
        let kv = g.add(a, p);

        let (mask_f, ok_f) = Self::masks(batch, t_len, valid, false);
        let (mask_b, ok_b) = Self::masks(batch, t_len, valid, true);
        let dist = abs_distances(t_len, t_len);
        let bias_f = AttentionBias {
            mask: Some(mask_f),
            distances: self.monotonic.then(|| dist.clone()),
        };
        let bias_b = AttentionBias {
            mask: Some(mask_b),
            distances: self.monotonic.then_some(dist),
        };
        // expand per-row indicators over feature dims
        let expand = |ok: &[f32]| -> Vec<f32> {
            ok.iter()
                .flat_map(|&v| std::iter::repeat(v).take(d))
                .collect()
        };
        let (ok_f, ok_b) = (expand(&ok_f), expand(&ok_b));

        for blk in &self.blocks {
            let qn = blk.ln_q.forward(g, store, q_stream);
            let kvn = blk.ln_kv.forward(g, store, kv);
            let att_f = blk.attn_f.forward(
                g, store, qn, kvn, kvn, batch, t_len, t_len, &bias_f, train, rng,
            );
            let att_b = blk.attn_b.forward(
                g, store, qn, kvn, kvn, batch, t_len, t_len, &bias_b, train, rng,
            );
            let att_f = g.dropout_mask(att_f.out, ok_f.clone());
            let att_b = g.dropout_mask(att_b.out, ok_b.clone());
            let att = g.add(att_f, att_b);
            let x1 = g.add(q_stream, att);
            let x1n = blk.ln_ff.forward(g, store, x1);
            let ff = blk.ffn.forward(g, store, x1n, train, rng);
            q_stream = g.add(x1, ff);
        }
        q_stream
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn backbone(&self) -> &'static str {
        if self.monotonic {
            "AKT"
        } else {
            "SAKT"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rckt_tensor::Init;

    fn setup(d: usize) -> (ParamStore, SmallRng) {
        (ParamStore::new(), SmallRng::seed_from_u64(d as u64))
    }

    /// Core no-leak property: perturbing a_i must not change h_i (but should
    /// change some other h_j).
    fn assert_no_self_leak<E: BiEncoder>(enc: &E, store: &ParamStore, d: usize) {
        let (batch, t_len) = (1usize, 5usize);
        let valid = vec![true; t_len];
        let mut rng = SmallRng::seed_from_u64(7);
        let base: Vec<f32> = (0..batch * t_len * d)
            .map(|i| ((i * 37 % 13) as f32 - 6.0) / 6.0)
            .collect();
        let e_data: Vec<f32> = (0..batch * t_len * d)
            .map(|i| ((i * 17 % 11) as f32 - 5.0) / 5.0)
            .collect();

        let run = |a_data: &[f32], rng: &mut SmallRng| -> Vec<f32> {
            let mut g = Graph::new();
            let e = g.input(e_data.clone(), Shape::matrix(t_len, d));
            let a = g.input(a_data.to_vec(), Shape::matrix(t_len, d));
            let h = enc.encode(&mut g, store, e, a, batch, t_len, &valid, false, rng);
            g.data(h).to_vec()
        };
        let h0 = run(&base, &mut rng);

        for i in 0..t_len {
            let mut perturbed = base.clone();
            for j in 0..d {
                // non-uniform so layer-norm shift invariance can't cancel it
                perturbed[i * d + j] += 5.0 * (j as f32 + 1.0);
            }
            let h1 = run(&perturbed, &mut rng);
            // h_i unchanged
            for j in 0..d {
                assert!(
                    (h0[i * d + j] - h1[i * d + j]).abs() < 1e-4,
                    "self-leak at position {i}, dim {j}: {} vs {}",
                    h0[i * d + j],
                    h1[i * d + j]
                );
            }
            // but the perturbation is visible somewhere else
            let moved = (0..t_len * d)
                .filter(|&k| k / d != i)
                .any(|k| (h0[k] - h1[k]).abs() > 1e-4);
            assert!(
                moved,
                "perturbing a_{i} changed nothing — encoder ignores inputs"
            );
        }
    }

    #[test]
    fn bilstm_has_no_self_leak() {
        let d = 8;
        let (mut store, mut rng) = setup(d);
        let enc = BiLstmEncoder::new(&mut store, "enc", d, 1, 0.0, &mut rng);
        assert_no_self_leak(&enc, &store, d);
    }

    #[test]
    fn bisakt_has_no_self_leak() {
        let d = 8;
        let (mut store, mut rng) = setup(d);
        let enc = BiAttnEncoder::new(&mut store, "enc", d, 2, 2, false, 0.0, 50, &mut rng);
        assert_no_self_leak(&enc, &store, d);
    }

    #[test]
    fn biakt_has_no_self_leak() {
        let d = 8;
        let (mut store, mut rng) = setup(d);
        let enc = BiAttnEncoder::new(&mut store, "enc", d, 2, 2, true, 0.0, 50, &mut rng);
        assert_no_self_leak(&enc, &store, d);
    }

    /// Padding keys must not influence valid positions.
    #[test]
    fn padding_does_not_leak_into_valid_positions() {
        let d = 8;
        let (mut store, mut rng) = setup(d);
        let enc = BiAttnEncoder::new(&mut store, "enc", d, 2, 1, false, 0.0, 50, &mut rng);
        let (batch, t_len) = (1usize, 5usize);
        let valid = vec![true, true, true, false, false];
        let e_data: Vec<f32> = (0..t_len * d).map(|i| (i % 7) as f32 / 7.0).collect();
        let base: Vec<f32> = (0..t_len * d).map(|i| (i % 5) as f32 / 5.0).collect();
        let run = |a_data: &[f32]| -> Vec<f32> {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut g = Graph::new();
            let e = g.input(e_data.clone(), Shape::matrix(t_len, d));
            let a = g.input(a_data.to_vec(), Shape::matrix(t_len, d));
            let h = enc.encode(&mut g, &store, e, a, batch, t_len, &valid, false, &mut rng);
            g.data(h).to_vec()
        };
        let h0 = run(&base);
        let mut perturbed = base.clone();
        for v in perturbed[3 * d..5 * d].iter_mut() {
            *v += 100.0;
        }
        let h1 = run(&perturbed);
        for i in 0..3 {
            for j in 0..d {
                assert!(
                    (h0[i * d + j] - h1[i * d + j]).abs() < 1e-4,
                    "padding leak into valid position {i}"
                );
            }
        }
    }

    /// BiLSTM: perturbing padding positions must not change valid outputs
    /// (the reverse pass meets padding first — the validity gate protects
    /// the state).
    #[test]
    fn bilstm_padding_does_not_leak() {
        let d = 6;
        let (mut store, mut rng) = setup(d);
        let enc = BiLstmEncoder::new(&mut store, "enc", d, 1, 0.0, &mut rng);
        let (batch, t_len) = (1usize, 6usize);
        let valid = vec![true, true, true, true, false, false];
        let e_data: Vec<f32> = (0..t_len * d).map(|i| (i % 7) as f32 / 7.0).collect();
        let base: Vec<f32> = (0..t_len * d).map(|i| (i % 5) as f32 / 5.0 - 0.4).collect();
        let run = |a_data: &[f32]| -> Vec<f32> {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut g = Graph::new();
            let e = g.input(e_data.clone(), Shape::matrix(t_len, d));
            let a = g.input(a_data.to_vec(), Shape::matrix(t_len, d));
            let h = enc.encode(&mut g, &store, e, a, batch, t_len, &valid, false, &mut rng);
            g.data(h).to_vec()
        };
        let h0 = run(&base);
        let mut perturbed = base.clone();
        for v in perturbed[4 * d..].iter_mut() {
            *v += 50.0;
        }
        let h1 = run(&perturbed);
        for i in 0..4 {
            for j in 0..d {
                assert!(
                    (h0[i * d + j] - h1[i * d + j]).abs() < 1e-5,
                    "padding leaked into BiLSTM position {i}"
                );
            }
        }
    }

    /// First/last positions of a BiLSTM see only one direction; encoding
    /// still produces finite values (zero-state gather works).
    #[test]
    fn bilstm_boundaries_finite() {
        let d = 4;
        let (mut store, mut rng) = setup(d);
        let enc = BiLstmEncoder::new(&mut store, "enc", d, 1, 0.0, &mut rng);
        // an unused param keeps the store non-trivial
        store.register("pad", Shape::vector(1), Init::Zeros, &mut rng);
        let (batch, t_len) = (2usize, 3usize);
        let mut g = Graph::new();
        let e = g.input(
            vec![0.1; batch * t_len * d],
            Shape::matrix(batch * t_len, d),
        );
        let a = g.input(
            vec![0.2; batch * t_len * d],
            Shape::matrix(batch * t_len, d),
        );
        let valid = vec![true; batch * t_len];
        let h = enc.encode(&mut g, &store, e, a, batch, t_len, &valid, false, &mut rng);
        assert_eq!(g.shape(h).0, vec![batch * t_len, d]);
        assert!(g.data(h).iter().all(|v| v.is_finite()));
    }
}
