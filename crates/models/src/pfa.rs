//! PFA (Pavlik, Cen & Koedinger, AIED 2009): Performance Factors Analysis —
//! logistic regression over per-concept success/failure counts:
//!
//! ```text
//! p(correct) = σ( Σ_{k ∈ K(q)}  β_k + γ_k · s_k + ρ_k · f_k )
//! ```
//!
//! where `s_k`/`f_k` count the student's prior correct/incorrect responses
//! on concept `k`. One of the classic interpretable machine-learning KT
//! baselines the paper's related work positions DLKT against (its reference \[30\]).

use crate::common::{eval_positions, Prediction};
use crate::model::{FitReport, KtModel, TrainConfig};
use rckt_data::{Batch, QMatrix, Window};
use rckt_tensor::sigmoid;

#[derive(Clone, Debug)]
pub struct PfaConfig {
    pub lr: f32,
    pub epochs: usize,
    pub l2: f32,
}

impl Default for PfaConfig {
    fn default() -> Self {
        PfaConfig {
            lr: 0.05,
            epochs: 30,
            l2: 1e-4,
        }
    }
}

#[derive(Clone, Debug, Default)]
pub struct Pfa {
    pub cfg: PfaConfig,
    /// Per-concept easiness β.
    beta: Vec<f32>,
    /// Per-concept success weight γ.
    gamma: Vec<f32>,
    /// Per-concept failure weight ρ.
    rho: Vec<f32>,
    qm_cache: Option<QMatrix>,
}

/// (concept, prior successes, prior failures) triples for one prediction.
type PfaFeats = Vec<(usize, f32, f32)>;

/// Feature extraction: for each eval position, the feature triples and the
/// label.
fn extract(batch: &Batch, qm: &QMatrix) -> Vec<(PfaFeats, bool)> {
    let mut out = Vec::new();
    for b in 0..batch.batch {
        let len = batch.seq_len(b);
        let mut wins = vec![0f32; qm.num_concepts()];
        let mut fails = vec![0f32; qm.num_concepts()];
        for t in 0..len {
            let i = b * batch.t_len + t;
            let q = batch.questions[i] as u32;
            let label = batch.correct[i] >= 0.5;
            if t >= 1 {
                let feats = qm
                    .concepts_of(q)
                    .iter()
                    .map(|&k| (k as usize, wins[k as usize], fails[k as usize]))
                    .collect();
                out.push((feats, label));
            }
            for &k in qm.concepts_of(q) {
                if label {
                    wins[k as usize] += 1.0;
                } else {
                    fails[k as usize] += 1.0;
                }
            }
        }
    }
    out
}

impl Pfa {
    pub fn new(cfg: PfaConfig) -> Self {
        Pfa {
            cfg,
            beta: Vec::new(),
            gamma: Vec::new(),
            rho: Vec::new(),
            qm_cache: None,
        }
    }

    fn logit(&self, feats: &PfaFeats) -> f32 {
        feats
            .iter()
            .map(|&(k, s, f)| {
                // log-counts stabilize like the classic ln(1+x) PFA variant
                self.beta[k] + self.gamma[k] * (1.0 + s).ln() + self.rho[k] * (1.0 + f).ln()
            })
            .sum()
    }

    /// The learned per-concept parameters `(β, γ, ρ)` — PFA's entire
    /// interpretable story.
    pub fn parameters(&self, concept: usize) -> (f32, f32, f32) {
        (self.beta[concept], self.gamma[concept], self.rho[concept])
    }
}

impl KtModel for Pfa {
    fn name(&self) -> String {
        "PFA".into()
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        _val_idx: &[usize],
        qm: &QMatrix,
        _cfg: &TrainConfig,
    ) -> FitReport {
        self.qm_cache = Some(qm.clone());
        let nk = qm.num_concepts();
        self.beta = vec![0.0; nk];
        self.gamma = vec![0.0; nk];
        self.rho = vec![0.0; nk];

        let batches = rckt_data::make_batches(windows, train_idx, qm, 64);
        let samples: Vec<_> = batches.iter().flat_map(|b| extract(b, qm)).collect();
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut loss = 0.0f64;
            for (feats, label) in &samples {
                let p = sigmoid(self.logit(feats));
                let y = *label as u8 as f32;
                let err = p - y; // d(BCE)/d(logit)
                loss += -((if *label { p } else { 1.0 - p }).max(1e-7).ln()) as f64;
                for &(k, s, f) in feats {
                    self.beta[k] -= self.cfg.lr * (err + self.cfg.l2 * self.beta[k]);
                    self.gamma[k] -=
                        self.cfg.lr * (err * (1.0 + s).ln() + self.cfg.l2 * self.gamma[k]);
                    self.rho[k] -= self.cfg.lr * (err * (1.0 + f).ln() + self.cfg.l2 * self.rho[k]);
                }
            }
            losses.push((loss / samples.len().max(1) as f64) as f32);
        }
        FitReport {
            epochs_run: self.cfg.epochs,
            best_epoch: self.cfg.epochs,
            best_val_auc: f64::NAN,
            train_losses: losses,
        }
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        let qm = self
            .qm_cache
            .as_ref()
            .expect("Pfa::fit must run before predict");
        let samples = extract(batch, qm);
        debug_assert_eq!(samples.len(), eval_positions(batch).len());
        samples
            .into_iter()
            .map(|(feats, label)| Prediction {
                prob: sigmoid(self.logit(&feats)),
                label,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use rckt_data::{make_batches, synthetic::SyntheticSpec, windows};

    #[test]
    fn pfa_beats_chance() {
        let ds = SyntheticSpec::assist12().scaled(0.25).generate();
        let ws = windows(&ds, 50, 5);
        let n = ws.len();
        let train: Vec<usize> = (0..n * 8 / 10).collect();
        let test: Vec<usize> = (n * 8 / 10..n).collect();
        let mut m = Pfa::new(PfaConfig::default());
        m.fit(&ws, &train, &[], &ds.q_matrix, &TrainConfig::default());
        let tb = make_batches(&ws, &test, &ds.q_matrix, 32);
        let (auc, _) = evaluate(&m, &tb);
        assert!(auc > 0.55, "PFA auc {auc}");
    }

    #[test]
    fn success_weight_learned_positive() {
        // On monotone simulator data, more prior successes should raise
        // p(correct): mean γ over concepts comes out positive.
        let ds = SyntheticSpec::assist12().scaled(0.2).generate();
        let ws = windows(&ds, 50, 5);
        let idx: Vec<usize> = (0..ws.len()).collect();
        let mut m = Pfa::new(PfaConfig::default());
        m.fit(&ws, &idx, &[], &ds.q_matrix, &TrainConfig::default());
        let mean_gamma: f32 = (0..ds.num_concepts())
            .map(|k| m.parameters(k).1)
            .sum::<f32>()
            / ds.num_concepts() as f32;
        let mean_rho: f32 = (0..ds.num_concepts())
            .map(|k| m.parameters(k).2)
            .sum::<f32>()
            / ds.num_concepts() as f32;
        assert!(mean_gamma > 0.0, "mean γ {mean_gamma}");
        assert!(
            mean_gamma > mean_rho,
            "success weight should exceed failure weight"
        );
    }

    #[test]
    fn training_loss_decreases() {
        let ds = SyntheticSpec::assist09().scaled(0.1).generate();
        let ws = windows(&ds, 50, 5);
        let idx: Vec<usize> = (0..ws.len()).collect();
        let mut m = Pfa::new(PfaConfig {
            epochs: 10,
            ..Default::default()
        });
        let report = m.fit(&ws, &idx, &[], &ds.q_matrix, &TrainConfig::default());
        assert!(report.train_losses.last().unwrap() < report.train_losses.first().unwrap());
    }
}
