//! Attention-based knowledge tracing: SAKT, SAKT+ and AKT.
//!
//! All three share one backbone: target-question queries cross-attend over
//! the (one-step-shifted, so strictly-past) interaction sequence through a
//! stack of pre-norm attention blocks.
//!
//! * **SAKT** (Pandey & Karypis 2019): plain scaled dot-product attention
//!   on concept-level embeddings.
//! * **SAKT+**: SAKT with question-ID embeddings added (the variant the
//!   paper compares against in Fig. 6); exposes its attention weights.
//! * **AKT** (Ghosh et al. 2020): adds the monotonic attention decay
//!   (learned per-head distance-decay rate θ) and Rasch embeddings
//!   (`e = c + μ_q · d`, a scalar question-difficulty factor μ times a
//!   concept variation vector).

use crate::common::{eval_positions, eval_weights, factual_cats, KtEmbedding, Prediction};
use crate::model::{sgd_fit, FitReport, KtModel, SgdModel, TrainConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt_data::{Batch, QMatrix, Window};
use rckt_tensor::layers::{
    abs_distances, padding_mask, AttentionBias, Embedding, FeedForward, LayerNorm,
    MultiHeadAttention, PositionalEmbedding, PredictionMlp,
};
use rckt_tensor::{Adam, Graph, Init, ParamId, ParamStore, Shape, Tx};

/// Which published model this backbone instance reproduces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttnVariant {
    Sakt,
    SaktPlus,
    Akt,
}

#[derive(Clone, Debug)]
pub struct AttnKtConfig {
    pub dim: usize,
    pub heads: usize,
    pub layers: usize,
    pub dropout: f32,
    pub lr: f32,
    pub l2: f32,
    pub max_len: usize,
    pub seed: u64,
}

impl Default for AttnKtConfig {
    fn default() -> Self {
        AttnKtConfig {
            dim: 32,
            heads: 4,
            layers: 1,
            dropout: 0.2,
            lr: 1e-3,
            l2: 1e-5,
            max_len: 200,
            seed: 0,
        }
    }
}

/// Rasch-model parameters (AKT): a scalar difficulty `μ_q` per question and
/// a variation vector `d_k` per concept.
struct Rasch {
    mu: ParamId,
    variation: Embedding,
}

struct Block {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln_q: LayerNorm,
    ln_kv: LayerNorm,
    ln_ff: LayerNorm,
}

pub struct AttnKt {
    pub cfg: AttnKtConfig,
    pub variant: AttnVariant,
    emb: KtEmbedding,
    pos: PositionalEmbedding,
    rasch: Option<Rasch>,
    blocks: Vec<Block>,
    head: PredictionMlp,
    store: ParamStore,
    adam: Adam,
}

impl AttnKt {
    pub fn new(
        variant: AttnVariant,
        num_questions: usize,
        num_concepts: usize,
        cfg: AttnKtConfig,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.dim;
        let emb = KtEmbedding::new(&mut store, "emb", num_questions, num_concepts, d, &mut rng);
        let pos = PositionalEmbedding::new(&mut store, "pos", cfg.max_len, d, &mut rng);
        let monotonic = variant == AttnVariant::Akt;
        let rasch = (variant == AttnVariant::Akt).then(|| Rasch {
            mu: store.register(
                "rasch.mu",
                Shape::matrix(num_questions, 1),
                Init::Zeros,
                &mut rng,
            ),
            variation: Embedding::new(&mut store, "rasch.d", num_concepts, d, &mut rng),
        });
        let blocks = (0..cfg.layers)
            .map(|l| Block {
                attn: MultiHeadAttention::new(
                    &mut store,
                    &format!("blk{l}.attn"),
                    d,
                    cfg.heads,
                    monotonic,
                    cfg.dropout,
                    &mut rng,
                ),
                ffn: FeedForward::new(
                    &mut store,
                    &format!("blk{l}.ffn"),
                    d,
                    2 * d,
                    cfg.dropout,
                    &mut rng,
                ),
                ln_q: LayerNorm::new(&mut store, &format!("blk{l}.ln_q"), d, &mut rng),
                ln_kv: LayerNorm::new(&mut store, &format!("blk{l}.ln_kv"), d, &mut rng),
                ln_ff: LayerNorm::new(&mut store, &format!("blk{l}.ln_ff"), d, &mut rng),
            })
            .collect();
        let head = PredictionMlp::new(&mut store, "head", 2 * d, d, cfg.dropout, &mut rng);
        let adam = Adam::new(cfg.lr).with_l2(cfg.l2);
        AttnKt {
            cfg,
            variant,
            emb,
            pos,
            rasch,
            blocks,
            head,
            store,
            adam,
        }
    }

    /// Question-side embeddings: concept mean (+ question id for SAKT+/AKT,
    /// + Rasch term for AKT).
    fn question_embed(&self, g: &mut Graph, batch: &Batch) -> Tx {
        let store = &self.store;
        let mut e = match self.variant {
            AttnVariant::Sakt => self.emb.concepts_only(g, store, batch),
            AttnVariant::SaktPlus | AttnVariant::Akt => self.emb.questions(g, store, batch),
        };
        if let Some(rasch) = &self.rasch {
            let mu_table = store.leaf(g, rasch.mu);
            let mu = g.gather_rows(mu_table, &batch.questions); // [B*T, 1]
            let d_all = rasch.variation.forward(g, store, &batch.concept_flat);
            let d_mean = g.segment_mean_rows(d_all, &batch.concept_lens); // [B*T, d]
                                                                          // broadcast μ over columns: replicate the scalar with matmul by a
                                                                          // row of ones, then multiply elementwise.
            let ones = g.input(vec![1.0; self.cfg.dim], Shape::matrix(1, self.cfg.dim));
            let mu_b = g.matmul(mu, ones); // [B*T, d]
            let rasch_term = g.mul(mu_b, d_mean);
            e = g.add(e, rasch_term);
        }
        e
    }

    /// Forward pass producing next-step logits `[B*T, 1]` (position `t = 0`
    /// garbage/masked) and per-layer mean-over-heads attention maps.
    fn forward(
        &self,
        g: &mut Graph,
        batch: &Batch,
        train: bool,
        rng: &mut SmallRng,
    ) -> (Tx, Vec<Vec<f32>>) {
        let store = &self.store;
        let (bsz, t_len) = (batch.batch, batch.t_len);
        let e = self.question_embed(g, batch);
        let cats = factual_cats(batch);
        let a = self.emb.interactions(g, store, e, &cats);

        // Shift interactions one step right so queries only see strict past.
        let shift_idx: Vec<usize> = (0..bsz)
            .flat_map(|b| (0..t_len).map(move |t| b * t_len + t.saturating_sub(1)))
            .collect();
        let a_prev = g.gather_rows(a, &shift_idx);
        // Zero out the t = 0 rows (no history yet).
        let mut first_mask = vec![1.0f32; bsz * t_len * self.cfg.dim];
        for b in 0..bsz {
            for j in 0..self.cfg.dim {
                first_mask[(b * t_len) * self.cfg.dim + j] = 0.0;
            }
        }
        let a_prev = g.dropout_mask(a_prev, first_mask);

        let p = self.pos.forward(g, store, bsz, t_len);
        let mut q_stream = g.add(e, p);
        let kv = g.add(a_prev, p);

        // Causal-inclusive mask over shifted keys (key t holds a_{t-1}) plus
        // padding.
        let mut mask = rckt_tensor::layers::causal_mask(bsz, t_len);
        let pad = padding_mask(bsz, t_len, t_len, &batch.valid);
        for (m, p) in mask.iter_mut().zip(&pad) {
            *m += p;
        }
        // allow the diagonal (shifted key t == interaction t-1)
        let bias = AttentionBias {
            mask: Some(mask),
            distances: Some(abs_distances(t_len, t_len)),
        };

        let mut attention_maps = Vec::new();
        for blk in &self.blocks {
            let qn = blk.ln_q.forward(g, store, q_stream);
            let kvn = blk.ln_kv.forward(g, store, kv);
            let att = blk
                .attn
                .forward(g, store, qn, kvn, kvn, bsz, t_len, t_len, &bias, train, rng);
            attention_maps.push(mean_heads(g, &att.weights));
            let x1 = g.add(q_stream, att.out);
            let x1n = blk.ln_ff.forward(g, store, x1);
            let ff = blk.ffn.forward(g, store, x1n, train, rng);
            q_stream = g.add(x1, ff);
        }

        let x = g.concat_cols(q_stream, e);
        let logits = self.head.forward(g, store, x, train, rng);
        (logits, attention_maps)
    }

    /// Predictions plus the last layer's head-averaged attention map
    /// `[B, T, T]` flattened (query-major). Used by the Fig. 6 comparison.
    pub fn predict_with_attention(&self, batch: &Batch) -> (Vec<Prediction>, Vec<f32>) {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let (logits, maps) = self.forward(&mut g, batch, false, &mut rng);
        let probs = g.sigmoid(logits);
        let data = g.data(probs);
        let preds = eval_positions(batch)
            .into_iter()
            .map(|i| Prediction {
                prob: data[i],
                label: batch.correct[i] >= 0.5,
            })
            .collect();
        (preds, maps.into_iter().next_back().unwrap_or_default())
    }
}

/// Mean of per-head post-softmax attention values, read out of the graph.
fn mean_heads(g: &Graph, weights: &[Tx]) -> Vec<f32> {
    if weights.is_empty() {
        return Vec::new();
    }
    let n = g.data(weights[0]).len();
    let mut mean = vec![0.0f32; n];
    for &w in weights {
        for (m, &v) in mean.iter_mut().zip(g.data(w)) {
            *m += v;
        }
    }
    let inv = 1.0 / weights.len() as f32;
    mean.iter_mut().for_each(|m| *m *= inv);
    mean
}

impl SgdModel for AttnKt {
    fn train_batch(&mut self, batch: &Batch, clip_norm: f32, rng: &mut SmallRng) -> f32 {
        self.store.zero_grads();
        let mut g = Graph::new();
        let (logits, _) = self.forward(&mut g, batch, true, rng);
        let (weights, norm) = eval_weights(batch);
        let loss = g.bce_with_logits(logits, &batch.correct, &weights, norm);
        let val = g.value(loss);
        g.backward(loss);
        self.store.accumulate_grads(&g);
        self.store.clip_grad_norm(clip_norm);
        self.adam.step(&mut self.store);
        val
    }

    fn snapshot(&self) -> String {
        self.store.save_json()
    }

    fn restore(&mut self, snapshot: &str) {
        self.store = ParamStore::load_json(snapshot).expect("valid snapshot");
    }
}

impl KtModel for AttnKt {
    fn name(&self) -> String {
        match self.variant {
            AttnVariant::Sakt => "SAKT".into(),
            AttnVariant::SaktPlus => "SAKT+".into(),
            AttnVariant::Akt => "AKT".into(),
        }
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        val_idx: &[usize],
        qm: &QMatrix,
        cfg: &TrainConfig,
    ) -> FitReport {
        sgd_fit(self, windows, train_idx, val_idx, qm, cfg)
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        self.predict_with_attention(batch).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_data::{make_batches, synthetic::SyntheticSpec, windows};

    fn tiny() -> (rckt_data::Dataset, Vec<Window>) {
        let ds = SyntheticSpec::assist09().scaled(0.03).generate();
        let ws = windows(&ds, 20, 5);
        (ds, ws)
    }

    #[test]
    fn sakt_loss_decreases() {
        let (ds, ws) = tiny();
        let idx: Vec<usize> = (0..ws.len().min(8)).collect();
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
        let mut m = AttnKt::new(
            AttnVariant::Sakt,
            ds.num_questions(),
            ds.num_concepts(),
            AttnKtConfig {
                dim: 16,
                heads: 2,
                lr: 3e-3,
                ..Default::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let first = m.train_batch(&batches[0], 5.0, &mut rng);
        let mut last = first;
        for _ in 0..25 {
            last = m.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn akt_loss_decreases_with_monotonic_and_rasch() {
        let (ds, ws) = tiny();
        let idx: Vec<usize> = (0..ws.len().min(8)).collect();
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
        let mut m = AttnKt::new(
            AttnVariant::Akt,
            ds.num_questions(),
            ds.num_concepts(),
            AttnKtConfig {
                dim: 16,
                heads: 2,
                lr: 3e-3,
                ..Default::default()
            },
        );
        assert!(m.rasch.is_some());
        let mut rng = SmallRng::seed_from_u64(3);
        let first = m.train_batch(&batches[0], 5.0, &mut rng);
        let mut last = first;
        for _ in 0..25 {
            last = m.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn attention_rows_are_distributions() {
        let (ds, ws) = tiny();
        let batches = make_batches(&ws, &[0, 1], &ds.q_matrix, 2);
        let m = AttnKt::new(
            AttnVariant::SaktPlus,
            ds.num_questions(),
            ds.num_concepts(),
            AttnKtConfig {
                dim: 16,
                heads: 2,
                ..Default::default()
            },
        );
        let (preds, att) = m.predict_with_attention(&batches[0]);
        assert!(!preds.is_empty());
        let t = batches[0].t_len;
        assert_eq!(att.len(), batches[0].batch * t * t);
        for row in att.chunks(t) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-3, "attention row sums to {s}");
        }
    }

    /// Queries must not attend to future interactions: the attention weight
    /// from query t to shifted key j > t must be ~0.
    #[test]
    fn attention_is_causal() {
        let (ds, ws) = tiny();
        let batches = make_batches(&ws, &[0], &ds.q_matrix, 1);
        let m = AttnKt::new(
            AttnVariant::Sakt,
            ds.num_questions(),
            ds.num_concepts(),
            AttnKtConfig {
                dim: 16,
                heads: 2,
                ..Default::default()
            },
        );
        let (_, att) = m.predict_with_attention(&batches[0]);
        let t = batches[0].t_len;
        for i in 0..t {
            for j in (i + 1)..t {
                assert!(
                    att[i * t + j] < 1e-6,
                    "future leak at ({i},{j}): {}",
                    att[i * t + j]
                );
            }
        }
    }
}
