//! DKVMN (Zhang et al., WWW 2017): Dynamic Key-Value Memory Networks — the
//! classic external-memory knowledge-tracing model. A static *key* memory
//! holds latent concepts; a per-student dynamic *value* memory holds mastery
//! of each. Reads and writes are addressed by softmax correlation between
//! the question embedding and the keys:
//!
//! ```text
//! w  = softmax(M^k · k_q)                    (addressing)
//! r  = Σᵢ wᵢ M^v_i                          (read → predict)
//! M^v_i ← M^v_i ∘ (1 − wᵢ e) + wᵢ a         (erase-then-add write)
//! ```
//!
//! Not one of the paper's six baselines, but a staple of the KT literature
//! a credible library release ships with.

use crate::common::{eval_positions, eval_weights, factual_cats, KtEmbedding, Prediction};
use crate::model::{sgd_fit, FitReport, KtModel, SgdModel, TrainConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt_data::{Batch, QMatrix, Window};
use rckt_tensor::layers::{time_indices, Linear, PredictionMlp};
use rckt_tensor::{Adam, Graph, Init, ParamId, ParamStore, Shape, Tx};

#[derive(Clone, Debug)]
pub struct DkvmnConfig {
    /// Embedding width (key side).
    pub dim: usize,
    /// Value-memory slot width.
    pub value_dim: usize,
    /// Number of memory slots (latent concepts).
    pub slots: usize,
    pub dropout: f32,
    pub lr: f32,
    pub l2: f32,
    pub seed: u64,
}

impl Default for DkvmnConfig {
    fn default() -> Self {
        DkvmnConfig {
            dim: 32,
            value_dim: 32,
            slots: 10,
            dropout: 0.2,
            lr: 2e-3,
            l2: 1e-5,
            seed: 0,
        }
    }
}

pub struct Dkvmn {
    pub cfg: DkvmnConfig,
    emb: KtEmbedding,
    /// Static key memory `[slots, dim]`.
    key_memory: ParamId,
    /// Initial value memory `[slots, value_dim]` (learned).
    value_init: ParamId,
    erase: Linear,
    add: Linear,
    head: PredictionMlp,
    store: ParamStore,
    adam: Adam,
}

impl Dkvmn {
    pub fn new(num_questions: usize, num_concepts: usize, cfg: DkvmnConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let (d, dv, n) = (cfg.dim, cfg.value_dim, cfg.slots);
        let emb = KtEmbedding::new(&mut store, "emb", num_questions, num_concepts, d, &mut rng);
        let key_memory = store.register("mem.key", Shape::matrix(n, d), Init::Xavier, &mut rng);
        let value_init =
            store.register("mem.v0", Shape::matrix(n, dv), Init::Uniform(0.1), &mut rng);
        let erase = Linear::new(&mut store, "erase", d, dv, &mut rng);
        let add = Linear::new(&mut store, "add", d, dv, &mut rng);
        let head = PredictionMlp::new(&mut store, "head", dv + d, d, cfg.dropout, &mut rng);
        let adam = Adam::new(cfg.lr).with_l2(cfg.l2);
        Dkvmn {
            cfg,
            emb,
            key_memory,
            value_init,
            erase,
            add,
            head,
            store,
            adam,
        }
    }

    /// Next-step logits `[B*T, 1]`; position t reads memory written by
    /// interactions 0..t−1 (t = 0 reads the learned initial memory).
    fn logits(&self, g: &mut Graph, batch: &Batch, train: bool, rng: &mut SmallRng) -> Tx {
        let store = &self.store;
        let (bsz, t_len) = (batch.batch, batch.t_len);
        let (dv, n) = (self.cfg.value_dim, self.cfg.slots);

        let e = self.emb.questions(g, store, batch); // [B*T, d]
        let cats = factual_cats(batch);
        let a = self.emb.interactions(g, store, e, &cats); // [B*T, d]

        // addressing weights for all positions at once: softmax(e · M^kᵀ)
        let mk = store.leaf(g, self.key_memory); // [n, d]
        let mkt = g.transpose(mk); // [d, n]
        let scores = g.matmul(e, mkt); // [B*T, n]
        let w_all = g.softmax_last(scores);

        // dynamic value memory [B, n, dv], starting from the learned init
        let v0 = store.leaf(g, self.value_init); // [n, dv]
        let reps: Vec<Tx> = (0..bsz).map(|_| v0).collect();
        let mut mv = g.concat_rows(&reps); // [B*n, dv]
        let mut mv3 = g.reshape(mv, Shape::cube(bsz, n, dv));

        let mut reads: Vec<Tx> = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let idx = time_indices(bsz, t_len, t);
            let w_t = g.gather_rows(w_all, &idx); // [B, n]
            let w3 = g.reshape(w_t, Shape::cube(bsz, 1, n));
            // read before writing this step's interaction
            let r3 = g.bmm(w3, mv3); // [B, 1, dv]
            let r = g.reshape(r3, Shape::matrix(bsz, dv));
            reads.push(r);

            // write: erase-then-add with this step's interaction embedding
            let a_t = g.gather_rows(a, &idx); // [B, d]
            let e_gate = self.erase.forward(g, store, a_t);
            let e_gate = g.sigmoid(e_gate); // [B, dv]
            let a_vec = self.add.forward(g, store, a_t);
            let a_vec = g.tanh(a_vec); // [B, dv]
            let w_col = g.reshape(w_t, Shape::cube(bsz, n, 1));
            let e3 = g.reshape(e_gate, Shape::cube(bsz, 1, dv));
            let a3 = g.reshape(a_vec, Shape::cube(bsz, 1, dv));
            let outer_e = g.bmm(w_col, e3); // [B, n, dv]
            let outer_a = g.bmm(w_col, a3); // [B, n, dv]
                                            // M ← M ∘ (1 − w e) + w a  ≡  M − M ∘ (w e) + w a
            let m_we = g.mul(mv3, outer_e);
            let kept = g.sub(mv3, m_we);
            mv3 = g.add(kept, outer_a);
        }
        // b-major reads [B*T, dv]
        let stacked = g.concat_rows(&reads);
        let perm: Vec<usize> = (0..bsz)
            .flat_map(|b| (0..t_len).map(move |t| t * bsz + b))
            .collect();
        mv = g.gather_rows(stacked, &perm);

        let x = g.concat_cols(mv, e);
        self.head.forward(g, store, x, train, rng)
    }
}

impl SgdModel for Dkvmn {
    fn train_batch(&mut self, batch: &Batch, clip_norm: f32, rng: &mut SmallRng) -> f32 {
        self.store.zero_grads();
        let mut g = Graph::new();
        let logits = self.logits(&mut g, batch, true, rng);
        let (weights, norm) = eval_weights(batch);
        let loss = g.bce_with_logits(logits, &batch.correct, &weights, norm);
        let val = g.value(loss);
        g.backward(loss);
        self.store.accumulate_grads(&g);
        self.store.clip_grad_norm(clip_norm);
        self.adam.step(&mut self.store);
        val
    }

    fn snapshot(&self) -> String {
        self.store.save_json()
    }

    fn restore(&mut self, snapshot: &str) {
        self.store = ParamStore::load_json(snapshot).expect("valid snapshot");
    }
}

impl KtModel for Dkvmn {
    fn name(&self) -> String {
        "DKVMN".into()
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        val_idx: &[usize],
        qm: &QMatrix,
        cfg: &TrainConfig,
    ) -> FitReport {
        sgd_fit(self, windows, train_idx, val_idx, qm, cfg)
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let logits = self.logits(&mut g, batch, false, &mut rng);
        let probs = g.sigmoid(logits);
        let data = g.data(probs);
        eval_positions(batch)
            .into_iter()
            .map(|i| Prediction {
                prob: data[i],
                label: batch.correct[i] >= 0.5,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_data::{make_batches, synthetic::SyntheticSpec, windows};

    #[test]
    fn dkvmn_loss_decreases() {
        let ds = SyntheticSpec::assist09().scaled(0.03).generate();
        let ws = windows(&ds, 20, 5);
        let idx: Vec<usize> = (0..ws.len().min(8)).collect();
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
        let mut m = Dkvmn::new(
            ds.num_questions(),
            ds.num_concepts(),
            DkvmnConfig {
                dim: 16,
                value_dim: 16,
                slots: 5,
                lr: 3e-3,
                ..Default::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let first = m.train_batch(&batches[0], 5.0, &mut rng);
        let mut last = first;
        for _ in 0..25 {
            last = m.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(last < first, "{first} -> {last}");
    }

    /// The read at position t must not depend on the response at position t
    /// (memory is read before writing) — the no-leakage property.
    #[test]
    fn read_before_write_no_leak() {
        let ds = SyntheticSpec::assist09().scaled(0.02).generate();
        let ws = windows(&ds, 10, 5);
        let m = Dkvmn::new(
            ds.num_questions(),
            ds.num_concepts(),
            DkvmnConfig {
                dim: 16,
                value_dim: 16,
                slots: 4,
                dropout: 0.0,
                ..Default::default()
            },
        );
        let batches = make_batches(&ws, &[0], &ds.q_matrix, 1);
        let b = &batches[0];
        let preds = m.predict(b);
        // flip the last response's label; prediction at that position must
        // be unchanged
        let mut flipped = b.clone();
        let last = b.seq_len(0) - 1;
        flipped.correct[last] = 1.0 - flipped.correct[last];
        let preds2 = m.predict(&flipped);
        let pos = eval_positions(b);
        let k = pos.iter().position(|&i| i == last).unwrap();
        assert!(
            (preds[k].prob - preds2[k].prob).abs() < 1e-6,
            "own response leaked into DKVMN read: {} vs {}",
            preds[k].prob,
            preds2[k].prob
        );
    }

    #[test]
    fn predictions_are_probabilities() {
        let ds = SyntheticSpec::assist09().scaled(0.02).generate();
        let ws = windows(&ds, 10, 5);
        let m = Dkvmn::new(
            ds.num_questions(),
            ds.num_concepts(),
            DkvmnConfig::default(),
        );
        let batches = make_batches(&ws, &[0, 1], &ds.q_matrix, 2);
        for p in m.predict(&batches[0]) {
            assert!(p.prob > 0.0 && p.prob < 1.0);
        }
    }
}
