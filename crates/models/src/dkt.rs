//! DKT (Piech et al., NeurIPS 2015): LSTM over interaction embeddings with
//! an MLP head predicting the next response. This is the embedding-based
//! variant the RCKT paper uses as a baseline and as one of its adaptable
//! encoders.

use crate::common::{eval_positions, eval_weights, factual_cats, KtEmbedding, Prediction};
use crate::model::{sgd_fit, FitReport, KtModel, SgdModel, TrainConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt_data::{Batch, QMatrix, Window};
use rckt_tensor::layers::{Lstm, PredictionMlp};
use rckt_tensor::{Adam, Graph, ParamStore, Tx};

/// Hyper-parameters for [`Dkt`].
#[derive(Clone, Debug)]
pub struct DktConfig {
    pub dim: usize,
    pub layers: usize,
    pub dropout: f32,
    pub lr: f32,
    pub l2: f32,
    pub seed: u64,
}

impl Default for DktConfig {
    fn default() -> Self {
        DktConfig {
            dim: 32,
            layers: 1,
            dropout: 0.2,
            lr: 1e-3,
            l2: 1e-5,
            seed: 0,
        }
    }
}

pub struct Dkt {
    pub cfg: DktConfig,
    emb: KtEmbedding,
    lstm: Lstm,
    head: PredictionMlp,
    store: ParamStore,
    adam: Adam,
}

impl Dkt {
    pub fn new(num_questions: usize, num_concepts: usize, cfg: DktConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.dim;
        let emb = KtEmbedding::new(&mut store, "emb", num_questions, num_concepts, d, &mut rng);
        let lstm = Lstm::new(&mut store, "lstm", d, d, cfg.layers, cfg.dropout, &mut rng);
        let head = PredictionMlp::new(&mut store, "head", 2 * d, d, cfg.dropout, &mut rng);
        let adam = Adam::new(cfg.lr).with_l2(cfg.l2);
        Dkt {
            cfg,
            emb,
            lstm,
            head,
            store,
            adam,
        }
    }

    /// Next-step logits for all positions `[B*T, 1]`; position `(b, t)` uses
    /// the hidden state after `t-1` interactions plus the target question
    /// embedding `e_t`. Position `t = 0` is garbage and must be masked.
    fn logits(&self, g: &mut Graph, batch: &Batch, train: bool, rng: &mut SmallRng) -> Tx {
        let e = self.emb.questions(g, &self.store, batch);
        let cats = factual_cats(batch);
        let a = self.emb.interactions(g, &self.store, e, &cats);
        let h = self.lstm.forward(
            g,
            &self.store,
            a,
            batch.batch,
            batch.t_len,
            false,
            train,
            rng,
        );
        // shift hidden states one step right
        let prev_idx: Vec<usize> = (0..batch.batch)
            .flat_map(|b| {
                let t_len = batch.t_len;
                (0..t_len).map(move |t| b * t_len + t.saturating_sub(1))
            })
            .collect();
        let h_prev = g.gather_rows(h, &prev_idx);
        let x = g.concat_cols(h_prev, e);
        self.head.forward(g, &self.store, x, train, rng)
    }
}

impl SgdModel for Dkt {
    fn train_batch(&mut self, batch: &Batch, clip_norm: f32, rng: &mut SmallRng) -> f32 {
        self.store.zero_grads();
        let mut g = Graph::new();
        let logits = self.logits(&mut g, batch, true, rng);
        let (weights, norm) = eval_weights(batch);
        let loss = g.bce_with_logits(logits, &batch.correct, &weights, norm);
        let val = g.value(loss);
        g.backward(loss);
        self.store.accumulate_grads(&g);
        self.store.clip_grad_norm(clip_norm);
        self.adam.step(&mut self.store);
        val
    }

    fn snapshot(&self) -> String {
        self.store.save_json()
    }

    fn restore(&mut self, snapshot: &str) {
        self.store = ParamStore::load_json(snapshot).expect("valid snapshot");
    }
}

impl KtModel for Dkt {
    fn name(&self) -> String {
        "DKT".into()
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        val_idx: &[usize],
        qm: &QMatrix,
        cfg: &TrainConfig,
    ) -> FitReport {
        sgd_fit(self, windows, train_idx, val_idx, qm, cfg)
    }

    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let logits = self.logits(&mut g, batch, false, &mut rng);
        let probs = g.sigmoid(logits);
        let data = g.data(probs);
        eval_positions(batch)
            .into_iter()
            .map(|i| Prediction {
                prob: data[i],
                label: batch.correct[i] >= 0.5,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use rckt_data::{make_batches, synthetic::SyntheticSpec, windows};

    #[test]
    fn dkt_overfits_tiny_dataset() {
        let ds = SyntheticSpec::assist09().scaled(0.02).generate();
        let ws = windows(&ds, 20, 5);
        let idx: Vec<usize> = (0..ws.len()).collect();
        let mut model = Dkt::new(
            ds.num_questions(),
            ds.num_concepts(),
            DktConfig {
                dim: 16,
                lr: 3e-3,
                ..Default::default()
            },
        );
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
        let mut rng = SmallRng::seed_from_u64(1);
        let first_loss = model.train_batch(&batches[0], 5.0, &mut rng);
        let mut last = first_loss;
        for _ in 0..30 {
            last = model.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(
            last < first_loss,
            "loss should decrease: {first_loss} -> {last}"
        );
    }

    #[test]
    fn dkt_beats_chance_after_fit() {
        let ds = SyntheticSpec::assist12().scaled(0.2).generate();
        let ws = windows(&ds, 50, 5);
        let n = ws.len();
        let train: Vec<usize> = (0..n * 8 / 10).collect();
        let val: Vec<usize> = (n * 8 / 10..n * 9 / 10).collect();
        let test: Vec<usize> = (n * 9 / 10..n).collect();
        let mut model = Dkt::new(
            ds.num_questions(),
            ds.num_concepts(),
            DktConfig {
                dim: 16,
                lr: 2e-3,
                ..Default::default()
            },
        );
        let cfg = TrainConfig {
            max_epochs: 12,
            patience: 6,
            batch_size: 16,
            ..Default::default()
        };
        let report = model.fit(&ws, &train, &val, &ds.q_matrix, &cfg);
        assert!(
            report.best_val_auc > 0.54,
            "val auc {}",
            report.best_val_auc
        );
        let test_batches = make_batches(&ws, &test, &ds.q_matrix, 16);
        let (auc, _) = evaluate(&model, &test_batches);
        assert!(auc > 0.54, "test auc {auc}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let ds = SyntheticSpec::assist09().scaled(0.02).generate();
        let ws = windows(&ds, 20, 5);
        let model = Dkt::new(ds.num_questions(), ds.num_concepts(), DktConfig::default());
        let batches = make_batches(&ws, &[0, 1], &ds.q_matrix, 2);
        for p in model.predict(&batches[0]) {
            assert!(p.prob > 0.0 && p.prob < 1.0);
        }
    }
}
