//! Batch-composition invariance: a sequence's predictions must be identical
//! whether it is evaluated alone or alongside other sequences. Catches any
//! cross-sequence leakage through attention masks, LSTM batching, or
//! embedding plumbing — for every model family.

use rckt_data::{make_batches, synthetic::SyntheticSpec, windows, Batch, Window};
use rckt_models::attn_kt::{AttnKt, AttnKtConfig, AttnVariant};
use rckt_models::dimkt::{Dimkt, DimktConfig};
use rckt_models::dkt::{Dkt, DktConfig};
use rckt_models::dkvmn::{Dkvmn, DkvmnConfig};
use rckt_models::qikt::{Qikt, QiktConfig};
use rckt_models::saint::{Saint, SaintConfig};
use rckt_models::KtModel;

fn setup() -> (rckt_data::Dataset, Vec<Window>) {
    let ds = SyntheticSpec::assist09().scaled(0.05).generate();
    let ws = windows(&ds, 20, 5);
    (ds, ws)
}

fn check_invariance(model: &dyn KtModel, ds: &rckt_data::Dataset, ws: &[Window]) {
    let joint = make_batches(ws, &[0, 1, 2], &ds.q_matrix, 3);
    let joint_preds = model.predict(&joint[0]);

    // the same three windows, each alone
    let mut solo_preds = Vec::new();
    for w in ws.iter().take(3) {
        let solo = Batch::from_windows(&[w], &ds.q_matrix);
        solo_preds.extend(model.predict(&solo));
    }
    assert_eq!(joint_preds.len(), solo_preds.len(), "{}", model.name());
    for (k, (a, b)) in joint_preds.iter().zip(&solo_preds).enumerate() {
        assert!(
            (a.prob - b.prob).abs() < 1e-5,
            "{}: batch composition changed prediction {k}: {} vs {}",
            model.name(),
            a.prob,
            b.prob
        );
        assert_eq!(a.label, b.label);
    }
}

#[test]
fn dkt_batch_invariant() {
    let (ds, ws) = setup();
    let m = Dkt::new(
        ds.num_questions(),
        ds.num_concepts(),
        DktConfig {
            dim: 16,
            ..Default::default()
        },
    );
    check_invariance(&m, &ds, &ws);
}

#[test]
fn sakt_batch_invariant() {
    let (ds, ws) = setup();
    let m = AttnKt::new(
        AttnVariant::Sakt,
        ds.num_questions(),
        ds.num_concepts(),
        AttnKtConfig {
            dim: 16,
            heads: 2,
            ..Default::default()
        },
    );
    check_invariance(&m, &ds, &ws);
}

#[test]
fn akt_batch_invariant() {
    let (ds, ws) = setup();
    let m = AttnKt::new(
        AttnVariant::Akt,
        ds.num_questions(),
        ds.num_concepts(),
        AttnKtConfig {
            dim: 16,
            heads: 2,
            ..Default::default()
        },
    );
    check_invariance(&m, &ds, &ws);
}

#[test]
fn dimkt_batch_invariant() {
    let (ds, ws) = setup();
    let m = Dimkt::new(
        ds.num_questions(),
        ds.num_concepts(),
        DimktConfig {
            dim: 16,
            ..Default::default()
        },
    );
    check_invariance(&m, &ds, &ws);
}

#[test]
fn dkvmn_batch_invariant() {
    let (ds, ws) = setup();
    let m = Dkvmn::new(
        ds.num_questions(),
        ds.num_concepts(),
        DkvmnConfig {
            dim: 16,
            value_dim: 16,
            slots: 4,
            ..Default::default()
        },
    );
    check_invariance(&m, &ds, &ws);
}

#[test]
fn saint_batch_invariant() {
    let (ds, ws) = setup();
    let m = Saint::new(
        ds.num_questions(),
        ds.num_concepts(),
        SaintConfig {
            dim: 16,
            heads: 2,
            ..Default::default()
        },
    );
    check_invariance(&m, &ds, &ws);
}

#[test]
fn qikt_batch_invariant() {
    let (ds, ws) = setup();
    let m = Qikt::new(
        ds.num_questions(),
        ds.num_concepts(),
        QiktConfig {
            dim: 16,
            ..Default::default()
        },
    );
    check_invariance(&m, &ds, &ws);
}
