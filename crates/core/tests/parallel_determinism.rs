//! End-to-end determinism contract of the parallel compute layer:
//! training losses, updated weights, and counterfactual predictions must be
//! bit-identical no matter how wide the `rckt_tensor` pool is (for every
//! kernel variant), and the blocked and simd kernels must track the naive
//! reference through a whole model.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, windows, Batch, Dataset, SyntheticSpec};
use rckt_tensor::kernels::{self, KernelVariant};
use rckt_tensor::pool;
use std::sync::Mutex;

/// Serializes tests that mutate process-global state (pool width, kernel
/// variant).
static GLOBAL: Mutex<()> = Mutex::new(());

fn tiny() -> (Dataset, Vec<Batch>) {
    let ds = SyntheticSpec::assist09().scaled(0.03).generate();
    let ws = windows(&ds, 20, 5);
    let idx: Vec<usize> = (0..ws.len().min(8)).collect();
    let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
    (ds, batches)
}

/// Two optimization steps + predictions + influence records, everything
/// reduced to comparable bits.
fn scenario(ds: &Dataset, batches: &[Batch], grad_shards: usize) -> (u32, u32, String, Vec<u32>) {
    let cfg = RcktConfig {
        dim: 16,
        lr: 3e-3,
        ..Default::default()
    }
    .with_grad_shards(grad_shards);
    let mut m = Rckt::new(Backbone::Dkt, ds.num_questions(), ds.num_concepts(), cfg);
    let mut rng = SmallRng::seed_from_u64(3);
    let l1 = m.train_batch(&batches[0], 5.0, &mut rng);
    let l2 = m.train_batch(&batches[0], 5.0, &mut rng);
    let mut pred_bits = Vec::new();
    for b in batches {
        for p in m.predict_last(b) {
            pred_bits.push(p.prob.to_bits());
        }
        let targets: Vec<usize> = (0..b.batch)
            .map(|s| b.seq_len(s).saturating_sub(1))
            .collect();
        for r in m.influences(b, &targets) {
            for (_, _, d) in r.influences {
                pred_bits.push(d.to_bits());
            }
        }
    }
    (l1.to_bits(), l2.to_bits(), m.save_weights(), pred_bits)
}

#[test]
fn training_and_inference_bit_identical_across_widths() {
    let _g = GLOBAL.lock().unwrap();
    let (ds, batches) = tiny();
    pool::set_threads(1);
    let reference = scenario(&ds, &batches, 1);
    for width in [2, 4] {
        pool::set_threads(width);
        let run = scenario(&ds, &batches, 1);
        assert_eq!(reference.0, run.0, "step-1 loss differs at width {width}");
        assert_eq!(reference.1, run.1, "step-2 loss differs at width {width}");
        assert_eq!(reference.2, run.2, "weights differ at width {width}");
        assert_eq!(reference.3, run.3, "predictions differ at width {width}");
    }
    pool::set_threads(1);
}

#[test]
fn sharded_training_bit_identical_across_widths() {
    let _g = GLOBAL.lock().unwrap();
    let (ds, batches) = tiny();
    pool::set_threads(1);
    let reference = scenario(&ds, &batches, 3);
    for width in [2, 4] {
        pool::set_threads(width);
        let run = scenario(&ds, &batches, 3);
        assert_eq!(reference.0, run.0, "step-1 loss differs at width {width}");
        assert_eq!(reference.1, run.1, "step-2 loss differs at width {width}");
        assert_eq!(reference.2, run.2, "weights differ at width {width}");
        assert_eq!(reference.3, run.3, "predictions differ at width {width}");
    }
    pool::set_threads(1);
}

/// Blocked vs naive kernels through a whole trained model: per-prediction
/// scores agree within 1e-5 (the kernels only differ by float summation
/// order).
#[test]
fn blocked_and_naive_kernels_agree_through_model() {
    let _g = GLOBAL.lock().unwrap();
    let (ds, batches) = tiny();
    pool::set_threads(1);

    let run = |variant: KernelVariant| -> (Vec<f32>, Vec<f32>) {
        kernels::set_kernel_variant(variant);
        let cfg = RcktConfig {
            dim: 16,
            lr: 3e-3,
            dropout: 0.0,
            ..Default::default()
        };
        let mut m = Rckt::new(Backbone::Dkt, ds.num_questions(), ds.num_concepts(), cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        let losses: Vec<f32> = (0..2)
            .map(|_| m.train_batch(&batches[0], 5.0, &mut rng))
            .collect();
        let preds = batches
            .iter()
            .flat_map(|b| m.predict_last(b))
            .map(|p| p.prob)
            .collect();
        (losses, preds)
    };

    let before = kernels::kernel_variant();
    let (naive_loss, naive_pred) = run(KernelVariant::Naive);
    let (blocked_loss, blocked_pred) = run(KernelVariant::Blocked);
    kernels::set_kernel_variant(before);
    for (i, (a, b)) in naive_loss.iter().zip(&blocked_loss).enumerate() {
        assert!(
            (a - b).abs() < 1e-5,
            "step-{i} loss diverged: naive {a} vs blocked {b}"
        );
    }
    assert_eq!(naive_pred.len(), blocked_pred.len());
    for (i, (a, b)) in naive_pred.iter().zip(&blocked_pred).enumerate() {
        assert!(
            (a - b).abs() < 1e-5,
            "prediction {i} diverged: naive {a} vs blocked {b}"
        );
    }
}

/// Full training + counterfactual inference under `RCKT_KERNEL=simd` is
/// bit-identical at every pool width — the determinism contract holds per
/// variant, not just for the reference path.
#[test]
fn simd_kernel_inference_bit_identical_across_widths() {
    let _g = GLOBAL.lock().unwrap();
    let (ds, batches) = tiny();
    let before = kernels::kernel_variant();
    kernels::set_kernel_variant(KernelVariant::Simd);
    pool::set_threads(1);
    let reference = scenario(&ds, &batches, 2);
    for width in [2, 4] {
        pool::set_threads(width);
        let run = scenario(&ds, &batches, 2);
        assert_eq!(reference.0, run.0, "step-1 loss differs at width {width}");
        assert_eq!(reference.1, run.1, "step-2 loss differs at width {width}");
        assert_eq!(reference.2, run.2, "weights differ at width {width}");
        assert_eq!(reference.3, run.3, "predictions differs at width {width}");
    }
    pool::set_threads(1);
    kernels::set_kernel_variant(before);
}

/// Simd vs naive kernels through a whole trained model: the kernel-level
/// contract is 1e-4 relative (FMA contraction), and two optimization steps
/// compound it, so the through-model tolerance is 1e-3 on sigmoid outputs.
#[test]
fn simd_and_naive_kernels_agree_through_model() {
    let _g = GLOBAL.lock().unwrap();
    let (ds, batches) = tiny();
    pool::set_threads(1);

    let run = |variant: KernelVariant| -> (Vec<f32>, Vec<f32>) {
        kernels::set_kernel_variant(variant);
        let cfg = RcktConfig {
            dim: 16,
            lr: 3e-3,
            dropout: 0.0,
            ..Default::default()
        };
        let mut m = Rckt::new(Backbone::Dkt, ds.num_questions(), ds.num_concepts(), cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        let losses: Vec<f32> = (0..2)
            .map(|_| m.train_batch(&batches[0], 5.0, &mut rng))
            .collect();
        let preds = batches
            .iter()
            .flat_map(|b| m.predict_last(b))
            .map(|p| p.prob)
            .collect();
        (losses, preds)
    };

    let before = kernels::kernel_variant();
    let (naive_loss, naive_pred) = run(KernelVariant::Naive);
    let (simd_loss, simd_pred) = run(KernelVariant::Simd);
    kernels::set_kernel_variant(before);
    for (i, (a, b)) in naive_loss.iter().zip(&simd_loss).enumerate() {
        assert!(
            (a - b).abs() < 1e-3,
            "step-{i} loss diverged: naive {a} vs simd {b}"
        );
    }
    assert_eq!(naive_pred.len(), simd_pred.len());
    for (i, (a, b)) in naive_pred.iter().zip(&simd_pred).enumerate() {
        assert!(
            (a - b).abs() < 1e-3,
            "prediction {i} diverged: naive {a} vs simd {b}"
        );
    }
}
