//! Exact-vs-incremental accuracy contract (see `docs/performance.md`):
//! incremental append-one scores must be **byte-identical** to the exact
//! single-sequence counterfactual fan-out at every prefix length, for every
//! kernel variant (`RCKT_KERNEL=naive|simd`) and pool width 1/2/4, on a
//! trained model (not just fresh weights).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt::{Backbone, IncrementalState, Rckt, RcktConfig};
use rckt_data::{Batch, Dataset, SyntheticSpec, Window};
use rckt_tensor::kernels::{self, KernelVariant};
use rckt_tensor::pool;
use std::sync::Mutex;

/// Serializes tests that mutate process-global state (pool width, kernel
/// variant).
static GLOBAL: Mutex<()> = Mutex::new(());

fn trained_uni_model(dim: usize) -> (Rckt, Dataset) {
    let ds = SyntheticSpec::assist09().scaled(0.03).generate();
    let cfg = RcktConfig {
        dim,
        unidirectional: true,
        ..Default::default()
    };
    let mut m = Rckt::new(Backbone::Dkt, ds.num_questions(), ds.num_concepts(), cfg);
    // A couple of optimization steps so the weights are not at init.
    let ws = rckt_data::windows(&ds, 20, 5);
    let idx: Vec<usize> = (0..ws.len().min(8)).collect();
    let batches = rckt_data::make_batches(&ws, &idx, &ds.q_matrix, 8);
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..2 {
        m.train_batch(&batches[0], 5.0, &mut rng);
    }
    (m, ds)
}

fn exact_score(m: &Rckt, ds: &Dataset, hist: &[(u32, bool)], target_q: u32, window: usize) -> f32 {
    let target = hist.len();
    let mut questions = vec![0u32; window];
    let mut correct = vec![0u8; window];
    for (i, &(q, c)) in hist.iter().enumerate() {
        questions[i] = q;
        correct[i] = c as u8;
    }
    questions[target] = target_q;
    let w = Window {
        student: 0,
        questions,
        correct,
        len: target + 1,
    };
    let b = Batch::from_windows(&[&w], &ds.q_matrix);
    m.predict_targets(&b, &[target])[0].prob
}

fn history(n: usize, num_questions: usize) -> Vec<(u32, bool)> {
    (0..n)
        .map(|i| ((1 + (i * 5 + 2) % (num_questions - 1)) as u32, i % 4 != 1))
        .collect()
}

#[test]
fn incremental_bit_identical_to_exact_across_kernels_and_widths() {
    let _g = GLOBAL.lock().unwrap();
    let (m, ds) = trained_uni_model(16);
    // Window 40 at dim 16 puts the head GEMM ([40, 32] × [32, 16], 20 K
    // multiply-adds) past the tiny-product cutoff, so the simd iteration
    // really exercises the simd kernel rather than falling back to naive.
    let window = 40;
    let hist = history(window - 1, ds.num_questions());

    let before = kernels::kernel_variant();
    for variant in [KernelVariant::Naive, KernelVariant::Simd] {
        kernels::set_kernel_variant(variant);
        for width in [1usize, 2, 4] {
            pool::set_threads(width);
            let mut state = IncrementalState::new(&m, window).expect("forward-only DKT");
            for n in 0..hist.len() {
                let warm = state.score();
                let exact = exact_score(&m, &ds, &hist[..n], hist[n].0, window);
                assert_eq!(
                    warm.to_bits(),
                    exact.to_bits(),
                    "prefix {n} diverged ({variant:?}, width {width}): \
                     warm {warm} vs exact {exact}"
                );
                state
                    .append_response(&m, &ds.q_matrix, hist[n].0, hist[n].1)
                    .unwrap();
            }
        }
    }
    kernels::set_kernel_variant(before);
    pool::set_threads(1);
}

/// The CI byte-compare geometry — dim 8, window 200 — checked at sampled
/// prefixes (a full per-prefix sweep of exact fan-outs at window 200 is too
/// slow for tier-1). At this shape the head GEMM is `[200, 16] × [16, 8]`
/// (25.6 K multiply-adds), which engages the dispatched kernel under
/// `RCKT_KERNEL=simd`, so this is the same kernel mix the serve CI job runs.
#[test]
fn ci_geometry_window_200_bit_identical_at_sampled_prefixes() {
    let _g = GLOBAL.lock().unwrap();
    let (m, ds) = trained_uni_model(8);
    let window = 200;
    let hist = history(window - 1, ds.num_questions());
    let samples = [0usize, 1, 2, 50, 120, 198];

    let before = kernels::kernel_variant();
    for variant in [KernelVariant::Naive, KernelVariant::Simd] {
        kernels::set_kernel_variant(variant);
        pool::set_threads(4);
        let mut state = IncrementalState::new(&m, window).unwrap();
        let mut done = 0usize;
        for &n in &samples {
            state
                .append_responses(&m, &ds.q_matrix, &hist[done..n])
                .unwrap();
            done = n;
            let warm = state.score();
            let exact = exact_score(&m, &ds, &hist[..n], hist[n].0, window);
            assert_eq!(
                warm.to_bits(),
                exact.to_bits(),
                "prefix {n} diverged under {variant:?}: warm {warm} vs exact {exact}"
            );
        }
    }
    kernels::set_kernel_variant(before);
    pool::set_threads(1);
}
