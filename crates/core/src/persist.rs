//! Self-contained model files: backbone + config + dataset dimensions +
//! weights, serialized to a single JSON document so a trained model can be
//! shipped, reloaded and queried without the training pipeline.

use crate::config::{Backbone, RcktConfig};
use crate::model::Rckt;
use rckt_data::QMatrix;
use serde::{Deserialize, Serialize};

/// Format version, bumped on breaking layout changes.
pub const MODEL_FILE_VERSION: u32 = 1;

/// Training-time prediction-score histogram: counts over equal-width
/// bins on `[0, 1]`, captured on the validation fold at export time.
/// Online monitors compare the live score distribution against it
/// (population stability index) to detect serving drift. The bin count
/// is conventionally `rckt_obs::SCORE_BINS` (10) but is not enforced
/// here — consumers validate the length.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoreReference {
    pub counts: Vec<u64>,
}

impl ScoreReference {
    /// Histogram a batch of probabilities into `bins` equal-width bins.
    pub fn from_scores(scores: impl IntoIterator<Item = f64>, bins: usize) -> ScoreReference {
        let mut counts = vec![0u64; bins.max(1)];
        let n = counts.len();
        for s in scores {
            let b = ((s.clamp(0.0, 1.0) * n as f64) as usize).min(n - 1);
            counts[b] += 1;
        }
        ScoreReference { counts }
    }
}

/// A serialized RCKT model.
#[derive(Debug, Serialize, Deserialize)]
pub struct SavedModel {
    pub version: u32,
    pub backbone: Backbone,
    pub config: RcktConfig,
    pub num_questions: usize,
    pub num_concepts: usize,
    /// Inner weight payload (the `ParamStore` JSON).
    pub weights: String,
    /// Optional question→concept mapping, embedded so a model file is
    /// self-contained for online serving (no dataset CSV needed to build
    /// batches). Absent in files written before this field existed —
    /// still format version 1, the field is strictly additive.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub q_matrix: Option<QMatrix>,
    /// Optional training-time score histogram for drift monitoring.
    /// Strictly additive like [`SavedModel::q_matrix`]: files without it
    /// parse unchanged, files with it are ignored by old readers.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub score_reference: Option<ScoreReference>,
}

impl SavedModel {
    /// Parse and version-check a model file without instantiating the
    /// model — serving layers use this to reach the embedded
    /// [`SavedModel::q_matrix`] and dimensions alongside [`Rckt::import`].
    pub fn parse(json: &str) -> Result<SavedModel, PersistError> {
        let saved: SavedModel = serde_json::from_str(json)?;
        if saved.version != MODEL_FILE_VERSION {
            return Err(PersistError::Version(saved.version));
        }
        Ok(saved)
    }
}

#[derive(Debug)]
pub enum PersistError {
    /// The file's format version is not supported.
    Version(u32),
    Json(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Version(v) => {
                write!(
                    f,
                    "unsupported model file version {v} (expected {MODEL_FILE_VERSION})"
                )
            }
            PersistError::Json(e) => write!(f, "model file parse error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl Rckt {
    /// Serialize the model (architecture + weights) into one JSON string.
    pub fn export(&self, num_questions: usize, num_concepts: usize) -> String {
        let saved = SavedModel {
            version: MODEL_FILE_VERSION,
            backbone: self.backbone,
            config: self.cfg.clone(),
            num_questions,
            num_concepts,
            weights: self.save_weights(),
            q_matrix: None,
            score_reference: None,
        };
        serde_json::to_string(&saved).expect("model serialization")
    }

    /// [`Rckt::export`] with the dataset's Q-matrix embedded, making the
    /// file self-contained for online serving. Dimensions come from the
    /// Q-matrix itself and must match what the model was built with.
    pub fn export_with_qmatrix(&self, qm: &QMatrix) -> String {
        self.export_full(qm, None)
    }

    /// [`Rckt::export_with_qmatrix`] plus an optional training-time score
    /// histogram ([`ScoreReference`]) so serving can monitor
    /// score-distribution drift against the distribution the model
    /// actually produced at train time.
    pub fn export_full(&self, qm: &QMatrix, score_reference: Option<ScoreReference>) -> String {
        let saved = SavedModel {
            version: MODEL_FILE_VERSION,
            backbone: self.backbone,
            config: self.cfg.clone(),
            num_questions: qm.num_questions(),
            num_concepts: qm.num_concepts(),
            weights: self.save_weights(),
            q_matrix: Some(qm.clone()),
            score_reference,
        };
        serde_json::to_string(&saved).expect("model serialization")
    }

    /// Rebuild a model from an already-parsed [`SavedModel`].
    pub fn from_saved(saved: &SavedModel) -> Result<Rckt, PersistError> {
        let mut model = Rckt::new(
            saved.backbone,
            saved.num_questions,
            saved.num_concepts,
            saved.config.clone(),
        );
        model.load_weights(&saved.weights)?;
        Ok(model)
    }

    /// Rebuild a model from [`Rckt::export`] output.
    pub fn import(json: &str) -> Result<Rckt, PersistError> {
        Rckt::from_saved(&SavedModel::parse(json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_data::{make_batches, windows, SyntheticSpec};

    #[test]
    fn export_import_roundtrip_preserves_predictions() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let ws = windows(&ds, 20, 5);
        let idx: Vec<usize> = (0..ws.len().min(4)).collect();
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 4);
        let model = Rckt::new(
            Backbone::Akt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 16,
                heads: 2,
                ..Default::default()
            },
        );
        let json = model.export(ds.num_questions(), ds.num_concepts());
        let restored = Rckt::import(&json).unwrap();
        let a = model.predict_last(&batches[0]);
        let b = restored.predict_last(&batches[0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.prob - y.prob).abs() < 1e-6);
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let json = model.export(ds.num_questions(), ds.num_concepts());
        let tampered = json.replacen("\"version\":1", "\"version\":99", 1);
        assert!(matches!(
            Rckt::import(&tampered),
            Err(PersistError::Version(99))
        ));
    }

    #[test]
    fn garbage_is_a_parse_error() {
        assert!(matches!(
            Rckt::import("not json"),
            Err(PersistError::Json(_))
        ));
    }

    #[test]
    fn roundtrip_predictions_are_bit_identical() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let ws = windows(&ds, 20, 5);
        let idx: Vec<usize> = (0..ws.len().min(6)).collect();
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 6);
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let restored = Rckt::import(&model.export(ds.num_questions(), ds.num_concepts())).unwrap();
        for batch in &batches {
            let targets: Vec<usize> = (0..batch.batch)
                .map(|b| batch.seq_len(b).saturating_sub(1))
                .collect();
            let a = model.predict_targets(batch, &targets);
            let b = restored.predict_targets(batch, &targets);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(
                    x.prob.to_bits(),
                    y.prob.to_bits(),
                    "restored model must reproduce predictions bit-for-bit"
                );
                assert_eq!(x.label, y.label);
            }
            let ia = model.influences_exact(batch, &targets);
            let ib = restored.influences_exact(batch, &targets);
            for (x, y) in ia.iter().zip(&ib) {
                assert_eq!(x.score.to_bits(), y.score.to_bits());
                assert_eq!(x.influences.len(), y.influences.len());
                for ((pa, ca, da), (pb, cb, db)) in x.influences.iter().zip(&y.influences) {
                    assert_eq!((pa, ca, da.to_bits()), (pb, cb, db.to_bits()));
                }
            }
        }
    }

    #[test]
    fn truncated_file_is_a_parse_error() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let json = model.export(ds.num_questions(), ds.num_concepts());
        // Chop mid-document at several depths; every prefix must surface
        // as PersistError::Json, never a panic.
        for frac in [0.1, 0.5, 0.9, 0.999] {
            let cut = (json.len() as f64 * frac) as usize;
            let truncated = &json[..cut];
            assert!(
                matches!(Rckt::import(truncated), Err(PersistError::Json(_))),
                "truncated at {cut}/{} bytes should be a parse error",
                json.len()
            );
        }
        // An empty file too.
        assert!(matches!(Rckt::import(""), Err(PersistError::Json(_))));
    }

    #[test]
    fn embedded_qmatrix_roundtrips_and_stays_optional() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        // Plain export: no q_matrix key at all (old readers unaffected).
        let plain = model.export(ds.num_questions(), ds.num_concepts());
        assert!(!plain.contains("q_matrix"));
        assert!(SavedModel::parse(&plain).unwrap().q_matrix.is_none());

        // Embedded export round-trips the mapping and the dimensions.
        let rich = model.export_with_qmatrix(&ds.q_matrix);
        let saved = SavedModel::parse(&rich).unwrap();
        assert_eq!(saved.num_questions, ds.num_questions());
        assert_eq!(saved.num_concepts, ds.num_concepts());
        let qm = saved.q_matrix.as_ref().unwrap();
        assert_eq!(qm.num_questions(), ds.q_matrix.num_questions());
        for q in 0..qm.num_questions() {
            assert_eq!(qm.concepts_of(q as u32), ds.q_matrix.concepts_of(q as u32));
        }
        // And the model itself still loads from the parsed form.
        let restored = Rckt::from_saved(&saved).unwrap();
        assert_eq!(restored.num_questions(), ds.num_questions());
        assert_eq!(restored.num_concepts(), ds.num_concepts());
    }

    #[test]
    fn score_reference_is_additive_and_roundtrips() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        // Exports without a reference omit the key entirely.
        let plain = model.export_with_qmatrix(&ds.q_matrix);
        assert!(!plain.contains("score_reference"));
        assert!(SavedModel::parse(&plain).unwrap().score_reference.is_none());

        let reference = ScoreReference::from_scores([0.05, 0.55, 0.56, 0.95, 1.0, -0.5], 10);
        assert_eq!(reference.counts, vec![2, 0, 0, 0, 0, 2, 0, 0, 0, 2]);
        // Out-of-range scores clamp into the edge bins; 1.0 lands in the
        // last bin, -0.5 in the first.
        assert_eq!(reference.counts.iter().sum::<u64>(), 6);

        let rich = model.export_full(&ds.q_matrix, Some(reference.clone()));
        let saved = SavedModel::parse(&rich).unwrap();
        assert_eq!(saved.score_reference, Some(reference));
        // The model still loads and the q_matrix is intact alongside.
        assert!(saved.q_matrix.is_some());
        assert!(Rckt::from_saved(&saved).is_ok());
    }

    #[test]
    fn version_check_happens_in_parse() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let json = model.export(ds.num_questions(), ds.num_concepts());
        let tampered = json.replacen("\"version\":1", "\"version\":7", 1);
        assert!(matches!(
            SavedModel::parse(&tampered),
            Err(PersistError::Version(7))
        ));
        let msg = SavedModel::parse(&tampered).unwrap_err().to_string();
        assert!(msg.contains("version 7"), "contextual message: {msg}");
    }
}
