//! Self-contained model files: backbone + config + dataset dimensions +
//! weights, serialized to a single JSON document so a trained model can be
//! shipped, reloaded and queried without the training pipeline.

use crate::config::{Backbone, RcktConfig};
use crate::model::Rckt;
use serde::{Deserialize, Serialize};

/// Format version, bumped on breaking layout changes.
pub const MODEL_FILE_VERSION: u32 = 1;

/// A serialized RCKT model.
#[derive(Serialize, Deserialize)]
pub struct SavedModel {
    pub version: u32,
    pub backbone: Backbone,
    pub config: RcktConfig,
    pub num_questions: usize,
    pub num_concepts: usize,
    /// Inner weight payload (the `ParamStore` JSON).
    pub weights: String,
}

#[derive(Debug)]
pub enum PersistError {
    /// The file's format version is not supported.
    Version(u32),
    Json(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Version(v) => {
                write!(
                    f,
                    "unsupported model file version {v} (expected {MODEL_FILE_VERSION})"
                )
            }
            PersistError::Json(e) => write!(f, "model file parse error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl Rckt {
    /// Serialize the model (architecture + weights) into one JSON string.
    pub fn export(&self, num_questions: usize, num_concepts: usize) -> String {
        let saved = SavedModel {
            version: MODEL_FILE_VERSION,
            backbone: self.backbone,
            config: self.cfg.clone(),
            num_questions,
            num_concepts,
            weights: self.save_weights(),
        };
        serde_json::to_string(&saved).expect("model serialization")
    }

    /// Rebuild a model from [`Rckt::export`] output.
    pub fn import(json: &str) -> Result<Rckt, PersistError> {
        let saved: SavedModel = serde_json::from_str(json)?;
        if saved.version != MODEL_FILE_VERSION {
            return Err(PersistError::Version(saved.version));
        }
        let mut model = Rckt::new(
            saved.backbone,
            saved.num_questions,
            saved.num_concepts,
            saved.config,
        );
        model.load_weights(&saved.weights)?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_data::{make_batches, windows, SyntheticSpec};

    #[test]
    fn export_import_roundtrip_preserves_predictions() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let ws = windows(&ds, 20, 5);
        let idx: Vec<usize> = (0..ws.len().min(4)).collect();
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 4);
        let model = Rckt::new(
            Backbone::Akt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 16,
                heads: 2,
                ..Default::default()
            },
        );
        let json = model.export(ds.num_questions(), ds.num_concepts());
        let restored = Rckt::import(&json).unwrap();
        let a = model.predict_last(&batches[0]);
        let b = restored.predict_last(&batches[0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.prob - y.prob).abs() < 1e-6);
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let json = model.export(ds.num_questions(), ds.num_concepts());
        let tampered = json.replacen("\"version\":1", "\"version\":99", 1);
        assert!(matches!(
            Rckt::import(&tampered),
            Err(PersistError::Version(99))
        ));
    }

    #[test]
    fn garbage_is_a_parse_error() {
        assert!(matches!(
            Rckt::import("not json"),
            Err(PersistError::Json(_))
        ));
    }
}
