//! Counterfactual sequence construction (paper Sec. IV-B and IV-C4).
//!
//! An intervention flips the correctness of one response. Directly flipping
//! would make the rest of the sequence unreliable, so the **monotonicity
//! assumption** drives two repairs (Fig. 3):
//!
//! * **retain** responses whose correctness the proficiency shift cannot
//!   overturn (flip correct→incorrect lowers proficiency, which can only
//!   keep incorrect responses incorrect — retain those);
//! * **mask** responses the shift could overturn (the correct ones, in the
//!   same example) as unknown.
//!
//! Two construction modes exist:
//!
//! * **forward/exact** (Eq. 4–6): flip a *past* response `i`, predict the
//!   target — needs `t` counterfactual sequences per target;
//! * **backward/approximate** (Eq. 19): flip an *assumed* response to the
//!   target itself and read the influence off each past response — needs
//!   exactly two counterfactual sequences total.
//!
//! Everything here is pure index/category logic; tensors enter only in
//! [`crate::model`].

use rckt_models::ResponseCat;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Profiling tallies for counterfactual construction, cached so the
/// registry lookup stays off the per-sequence path. All updates are gated
/// on [`rckt_obs::profiling`].
struct CfCounters {
    /// Counterfactual/assumed sequences materialized.
    sequences: rckt_obs::Counter,
    /// Responses masked by the monotonicity repair.
    masked: rckt_obs::Counter,
    /// Responses retained by the monotonicity repair.
    retained: rckt_obs::Counter,
    forward_interventions: rckt_obs::Counter,
    backward_quadruples: rckt_obs::Counter,
}

fn cf_counters() -> &'static CfCounters {
    static COUNTERS: OnceLock<CfCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CfCounters {
        sequences: rckt_obs::counter("cf.sequences"),
        masked: rckt_obs::counter("cf.masked"),
        retained: rckt_obs::counter("cf.retained"),
        forward_interventions: rckt_obs::counter("cf.forward_interventions"),
        backward_quadruples: rckt_obs::counter("cf.backward_quadruples"),
    })
}

/// Sequence of response categories (one window), target position included.
pub type Cats = Vec<ResponseCat>;

/// The paper's ablation `-mono`: disable mask/retain (the counterfactual
/// sequence differs from the factual one only at the intervened response).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Retention {
    /// Full monotonicity-guided mask/retain (the paper's method).
    Monotonic,
    /// `-mono` ablation: flip only, keep everything else factual.
    FlipOnly,
}

/// Apply the monotonicity repair to all positions except `flip_at`:
/// keep responses of `retain_cat`, mask responses of the opposite
/// correctness; `Masked` inputs stay masked.
fn repair(cats: &mut Cats, flip_at: usize, retain_cat: ResponseCat) {
    let mut masked = 0u64;
    let mut retained = 0u64;
    for (i, c) in cats.iter_mut().enumerate() {
        if i == flip_at {
            continue;
        }
        if *c == retain_cat {
            retained += 1;
        } else if *c != ResponseCat::Masked {
            *c = ResponseCat::Masked;
            masked += 1;
        }
    }
    if rckt_obs::profiling() {
        let c = cf_counters();
        c.masked.add(masked);
        c.retained.add(retained);
    }
}

/// Forward-mode factual/counterfactual pair for intervening on past
/// response `i` (Eq. 4–6). `factual` is the unmodified category sequence.
/// Returns `(factual_view, counterfactual)` where the counterfactual flips
/// position `i` and repairs the rest according to `retention`.
pub fn forward_intervention(factual: &Cats, i: usize, retention: Retention) -> (Cats, Cats) {
    assert!(i < factual.len());
    let original = factual[i];
    assert_ne!(
        original,
        ResponseCat::Masked,
        "cannot intervene on a masked response"
    );
    let mut cf = factual.clone();
    cf[i] = original.flipped();
    if retention == Retention::Monotonic {
        // Flipping correct→incorrect means proficiency decreased: incorrect
        // responses stay reliable (retain), correct ones become unknown
        // (mask) — and vice versa.
        let retain = original.flipped();
        repair(&mut cf, i, retain);
    }
    if rckt_obs::profiling() {
        let c = cf_counters();
        c.forward_interventions.incr();
        c.sequences.incr();
    }
    (factual.clone(), cf)
}

/// Backward/approximate-mode sequence quadruple for a target at `target`
/// (Eq. 19 and Fig. 2). Positions after `target` must already be excluded
/// via validity masks by the caller.
///
/// ```
/// use rckt::counterfactual::{backward_quadruple, Retention};
/// use rckt_models::ResponseCat::{Correct as C, Incorrect as I, Masked as M};
///
/// // the paper's Fig. 1 example: ✓ ✗ ✓ ✓ ✗ with target q6
/// let cats = vec![C, I, C, C, I, M];
/// let [f_pos, cf_neg, _, _] = backward_quadruple(&cats, 5, Retention::Monotonic);
/// assert_eq!(f_pos,  vec![C, I, C, C, I, C]); // assume the target correct
/// assert_eq!(cf_neg, vec![M, I, M, M, I, I]); // flip it: retain ✗, mask ✓
/// ```
///
/// Returns `[F⁺, CF⁻, F⁻, CF⁺]`:
/// * `F⁺`  — assume the target answered correctly, everything else factual;
/// * `CF⁻` — intervene the target to incorrect; retain incorrect responses,
///   mask correct ones;
/// * `F⁻`  — assume the target answered incorrectly;
/// * `CF⁺` — intervene the target to correct; retain correct, mask
///   incorrect.
pub fn backward_quadruple(factual: &Cats, target: usize, retention: Retention) -> [Cats; 4] {
    assert!(target < factual.len());
    let mut f_pos = factual.clone();
    f_pos[target] = ResponseCat::Correct;
    let mut cf_neg = factual.clone();
    cf_neg[target] = ResponseCat::Incorrect;
    let mut f_neg = factual.clone();
    f_neg[target] = ResponseCat::Incorrect;
    let mut cf_pos = factual.clone();
    cf_pos[target] = ResponseCat::Correct;
    if retention == Retention::Monotonic {
        repair(&mut cf_neg, target, ResponseCat::Incorrect);
        repair(&mut cf_pos, target, ResponseCat::Correct);
    }
    if rckt_obs::profiling() {
        let c = cf_counters();
        c.backward_quadruples.incr();
        c.sequences.add(4);
    }
    [f_pos, cf_neg, f_neg, cf_pos]
}

/// Joint-training augmentation contexts (Sec. IV-D2): the factual sequence,
/// the sequence with **incorrect responses masked** (for `p^{M+}`), and the
/// one with **correct responses masked** (for `p^{M−}`).
pub fn joint_contexts(factual: &Cats) -> [Cats; 3] {
    let mask_where = |keep: ResponseCat| -> Cats {
        factual
            .iter()
            .map(|&c| {
                if c == keep || c == ResponseCat::Masked {
                    c
                } else {
                    ResponseCat::Masked
                }
            })
            .collect()
    };
    [
        factual.clone(),
        mask_where(ResponseCat::Correct),
        mask_where(ResponseCat::Incorrect),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ResponseCat::{Correct as C, Incorrect as I, Masked as M};

    /// The paper's running example (Fig. 1/3): ✓ ✗ ✓ ✓ ✗ with target q6.
    fn example() -> Cats {
        vec![C, I, C, C, I, M]
    }

    #[test]
    fn forward_flip_correct_masks_correct_retains_incorrect() {
        // Fig. 3: flip q3 (index 2, correct) to incorrect → mask q1, q4
        // (correct), retain q2, q5 (incorrect).
        let f = vec![C, I, C, C, I];
        let (fact, cf) = forward_intervention(&f, 2, Retention::Monotonic);
        assert_eq!(fact, f);
        assert_eq!(cf, vec![M, I, I, M, I]);
    }

    #[test]
    fn forward_flip_incorrect_masks_incorrect_retains_correct() {
        let f = vec![C, I, C, C, I];
        let (_, cf) = forward_intervention(&f, 4, Retention::Monotonic);
        assert_eq!(cf, vec![C, M, C, C, C]);
    }

    #[test]
    fn forward_flip_only_ablation_keeps_context() {
        let f = vec![C, I, C, C, I];
        let (_, cf) = forward_intervention(&f, 2, Retention::FlipOnly);
        assert_eq!(cf, vec![C, I, I, C, I]);
    }

    #[test]
    #[should_panic(expected = "masked")]
    fn forward_rejects_masked_position() {
        forward_intervention(&example(), 5, Retention::Monotonic);
    }

    #[test]
    fn backward_quadruple_matches_table_i() {
        // Table I: assuming r6=1 then flipping to 0 retains the incorrect
        // q2/q5 and masks the correct q1/q3/q4; vice versa for r6=0.
        let [f_pos, cf_neg, f_neg, cf_pos] =
            backward_quadruple(&example(), 5, Retention::Monotonic);
        assert_eq!(f_pos, vec![C, I, C, C, I, C]);
        assert_eq!(cf_neg, vec![M, I, M, M, I, I]);
        assert_eq!(f_neg, vec![C, I, C, C, I, I]);
        assert_eq!(cf_pos, vec![C, M, C, C, M, C]);
    }

    #[test]
    fn backward_counterfactuals_flip_exactly_the_target() {
        let [f_pos, cf_neg, f_neg, cf_pos] =
            backward_quadruple(&example(), 5, Retention::Monotonic);
        assert_eq!(f_pos[5], C);
        assert_eq!(cf_neg[5], I);
        assert_eq!(f_neg[5], I);
        assert_eq!(cf_pos[5], C);
    }

    #[test]
    fn backward_flip_only_ablation() {
        let [f_pos, cf_neg, _, cf_pos] = backward_quadruple(&example(), 5, Retention::FlipOnly);
        // context identical to factual, only the target differs
        assert_eq!(&cf_neg[..5], &f_pos[..5]);
        assert_eq!(&cf_pos[..5], &f_pos[..5]);
    }

    #[test]
    fn mask_retain_partitions_the_context() {
        // every non-target position is exactly retained or masked
        let cats = example();
        let [_, cf_neg, _, cf_pos] = backward_quadruple(&cats, 5, Retention::Monotonic);
        for i in 0..5 {
            match cats[i] {
                I => {
                    assert_eq!(cf_neg[i], I, "incorrect retained in CF-");
                    assert_eq!(cf_pos[i], M, "incorrect masked in CF+");
                }
                C => {
                    assert_eq!(cf_neg[i], M, "correct masked in CF-");
                    assert_eq!(cf_pos[i], C, "correct retained in CF+");
                }
                M => unreachable!(),
            }
        }
    }

    #[test]
    fn profiling_counts_sequences_and_repairs() {
        rckt_obs::set_profiling(true);
        let seq0 = rckt_obs::counter("cf.sequences").get();
        let quad0 = rckt_obs::counter("cf.backward_quadruples").get();
        let masked0 = rckt_obs::counter("cf.masked").get();
        let retained0 = rckt_obs::counter("cf.retained").get();
        backward_quadruple(&example(), 5, Retention::Monotonic);
        rckt_obs::set_profiling(false);
        // `>=`: other tests may construct counterfactuals concurrently while
        // profiling is on. This quadruple contributes 4 sequences; its two
        // repairs mask 3+2 and retain 2+3 of the ✓✗✓✓✗ context.
        assert!(rckt_obs::counter("cf.sequences").get() - seq0 >= 4);
        assert!(rckt_obs::counter("cf.backward_quadruples").get() - quad0 >= 1);
        assert!(rckt_obs::counter("cf.masked").get() - masked0 >= 5);
        assert!(rckt_obs::counter("cf.retained").get() - retained0 >= 5);
    }

    #[test]
    fn joint_contexts_mask_each_polarity() {
        let [f, m_plus, m_minus] = joint_contexts(&example());
        assert_eq!(f, example());
        assert_eq!(m_plus, vec![C, M, C, C, M, M]); // incorrect masked
        assert_eq!(m_minus, vec![M, I, M, M, I, M]); // correct masked
    }
}
