//! Incremental (append-one-response) inference for forward-only encoders.
//!
//! The serving hot path is a live tutoring session whose history grows by
//! exactly one response per request; re-running the full counterfactual
//! fan-out (four generator passes over the whole window, each with two
//! LSTM sweeps) on every `/predict` is pure waste. This module caches the
//! per-session encoder state and influence contributions so an append
//! recomputes **only the appended positions**.
//!
//! # Why three streams suffice
//!
//! The backward approximation scores a target from four generator passes
//! (`F⁺`, `CF⁻`, `F⁻`, `CF⁺`). The influence masks zero out the target
//! position and everything after it, so the score only reads context
//! probabilities at positions `i < target` — and for a *forward-only*
//! encoder, `p[i]` depends solely on the context categories at positions
//! `< i` plus the question at `i`. Those context categories are
//! target-independent:
//!
//! * `F⁺` and `F⁻` differ only at the target ⇒ their contexts are both the
//!   **factual** stream `F`.
//! * `CF⁻` under monotonic retention keeps incorrect responses and masks
//!   correct ones ⇒ the **retain-incorrect** stream `RI`.
//! * `CF⁺` symmetrically ⇒ the **retain-correct** stream `RC`.
//! * Under the `-mono` ablation (`Retention::FlipOnly`) all contexts stay
//!   factual and every per-position delta is exactly zero.
//!
//! So a session needs three cached LSTM states, one per stream, and each
//! append advances them one step and evaluates the prediction head at the
//! new position only.
//!
//! # Accuracy contract (see `docs/performance.md`)
//!
//! Incremental scores are **byte-identical** to the exact single-sequence
//! path ([`Rckt::predict_targets`] over a `[1, window]` batch) under every
//! `RCKT_KERNEL` variant and `RCKT_THREADS` width:
//!
//! * The per-step LSTM math replays [`LstmCell::step`] on the same `[1, d]`
//!   shapes the exact path uses (its per-timestep GEMMs are `[1, d]`
//!   regardless of window length), and a solo batch's validity gate is a
//!   bitwise no-op at valid steps.
//! * The prediction head runs over a full `[window, 2d]` matrix that is
//!   zero except at the appended rows — the *same kernel geometry* as the
//!   exact pass, and GEMM output rows depend only on their own input row,
//!   so the appended rows carry identical bits under any kernel variant.
//! * Per-position deltas replay the exact combine scalar-for-scalar
//!   (`sub → mask multiply → relu`), and the running sums accumulate in
//!   position order, matching `sum_last`'s left-to-right fold (trailing
//!   masked positions contribute signed zeros, which never change the
//!   final bits).
//!
//! Bidirectional encoders re-mix every earlier hidden state on append, so
//! they are not eligible: [`IncrementalState::new`] returns `None` and
//! callers fall back to the exact path.
//!
//! [`LstmCell::step`]: rckt_tensor::layers::LstmCell::step

use crate::counterfactual::Retention;
use crate::model::{Encoder, QueryError, Rckt};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt_data::{Batch, QMatrix};
use rckt_models::ResponseCat;
use rckt_tensor::{Graph, Shape};

/// Cached LSTM carries for one generator-context stream.
#[derive(Clone)]
struct StreamState {
    /// Per-layer `(h, c)`, each `[d]`.
    layers: Vec<(Vec<f32>, Vec<f32>)>,
    /// Top-layer output after the last appended response — the encoder
    /// state `h_i` the *next* position's head input sees (zeros before the
    /// first append, matching the encoder's zero-state gather at `t = 0`).
    last_out: Vec<f32>,
}

impl StreamState {
    fn zeros(layers: usize, d: usize) -> Self {
        StreamState {
            layers: vec![(vec![0.0; d], vec![0.0; d]); layers],
            last_out: vec![0.0; d],
        }
    }

    fn bytes(&self) -> usize {
        let vecs = self
            .layers
            .iter()
            .map(|(h, c)| h.capacity() + c.capacity())
            .sum::<usize>()
            + self.last_out.capacity();
        vecs * std::mem::size_of::<f32>()
    }
}

/// Per-session incremental inference state: the response history, three
/// cached encoder streams, and the per-position influence contributions
/// accumulated so far. Appending a response recomputes only the appended
/// position; scoring is O(1).
#[derive(Clone)]
pub struct IncrementalState {
    window: usize,
    dim: usize,
    clamp: bool,
    retention: Retention,
    questions: Vec<u32>,
    correct: Vec<bool>,
    /// Per-position Δ⁺ contribution (zero at incorrect positions).
    d_pos: Vec<f32>,
    /// Per-position Δ⁻ contribution (zero at correct positions).
    d_neg: Vec<f32>,
    /// Running Σ Δ⁺ / Σ Δ⁻ in position order (bitwise equal to the exact
    /// path's `sum_last` fold).
    dp: f32,
    dn: f32,
    /// `[F, RI, RC]` context streams.
    streams: [StreamState; 3],
}

impl IncrementalState {
    /// Fresh (empty-history) state for `model`, or `None` when the model's
    /// encoder is not forward-only (bidirectional state cannot be advanced
    /// incrementally) or the window is degenerate.
    pub fn new(model: &Rckt, window: usize) -> Option<Self> {
        if window == 0 {
            return None;
        }
        let lstm = match &model.encoder {
            Encoder::Lstm(enc) if enc.is_forward_only() => enc.forward_lstm(),
            _ => return None,
        };
        let d = model.cfg.dim;
        let s = StreamState::zeros(lstm.cells.len(), d);
        Some(IncrementalState {
            window,
            dim: d,
            clamp: model.cfg.clamp_inference,
            retention: model.cfg.retention,
            questions: Vec::new(),
            correct: Vec::new(),
            d_pos: Vec::new(),
            d_neg: Vec::new(),
            dp: 0.0,
            dn: 0.0,
            streams: [s.clone(), s.clone(), s],
        })
    }

    /// Number of responses appended so far.
    pub fn len(&self) -> usize {
        self.questions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.questions.is_empty()
    }

    /// The padded window length this state was built for.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Question ids of the appended history, in order.
    pub fn questions(&self) -> &[u32] {
        &self.questions
    }

    /// Correctness flags of the appended history, in order.
    pub fn correct_flags(&self) -> &[bool] {
        &self.correct
    }

    /// Per-position `(Δ⁺, Δ⁻)` contributions accumulated so far — the same
    /// values the exact path's influence maps carry at these positions.
    pub fn contributions(&self) -> (&[f32], &[f32]) {
        (&self.d_pos, &self.d_neg)
    }

    /// Approximate resident size of this state in bytes (reported by the
    /// serve-side state-bytes gauge).
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.questions.capacity() * std::mem::size_of::<u32>()
            + self.correct.capacity()
            + (self.d_pos.capacity() + self.d_neg.capacity()) * std::mem::size_of::<f32>()
            + self.streams.iter().map(StreamState::bytes).sum::<usize>()
    }

    /// Normalized-margin score for a prediction at target position
    /// `len()` — identical arithmetic to [`Rckt::predict_targets`]
    /// (`(Δ⁺ − Δ⁻)/(2t) + ½`, clamped). With no history the score is ½.
    ///
    /// The target *question* never enters: the influence masks zero the
    /// target position, so (like the exact path on a forward-only encoder)
    /// the score depends on the history alone.
    pub fn score(&self) -> f32 {
        let t = self.len().max(1) as f32;
        ((self.dp - self.dn) / (2.0 * t) + 0.5).clamp(0.0, 1.0)
    }

    /// Score for a *historical* prefix of this session: what [`Self::score`]
    /// returned when only the first `n` responses had been appended.
    /// Re-folds the cached per-position contributions in position order —
    /// the same left-to-right fold — so the bits match the live score at
    /// that point. `None` when `n` exceeds the appended history.
    ///
    /// This lets a server answer a replayed old request without rebuilding
    /// (or worse, discarding) the session state.
    pub fn score_at(&self, n: usize) -> Option<f32> {
        if n > self.len() {
            return None;
        }
        let dp: f32 = self.d_pos[..n].iter().sum();
        let dn: f32 = self.d_neg[..n].iter().sum();
        let t = n.max(1) as f32;
        Some(((dp - dn) / (2.0 * t) + 0.5).clamp(0.0, 1.0))
    }

    /// Context categories a factual response contributes to each stream.
    fn stream_cats(&self, correct: bool) -> [ResponseCat; 3] {
        let f = ResponseCat::from_correct(correct);
        match self.retention {
            // FlipOnly keeps counterfactual contexts factual (only the
            // target flips), so all three streams see the factual category.
            Retention::FlipOnly => [f, f, f],
            Retention::Monotonic => {
                let ri = if correct { ResponseCat::Masked } else { f };
                let rc = if correct { f } else { ResponseCat::Masked };
                [f, ri, rc]
            }
        }
    }

    /// Append one response. Recomputes exactly one position.
    pub fn append_response(
        &mut self,
        model: &Rckt,
        qm: &QMatrix,
        question: u32,
        correct: bool,
    ) -> Result<usize, QueryError> {
        self.append_responses(model, qm, &[(question, correct)])
    }

    /// Append a run of responses (the cold-install path), recomputing only
    /// the appended positions. Returns how many positions were recomputed
    /// (`items.len()`). Appending one at a time yields bit-identical state.
    ///
    /// The state is untouched if any item fails validation.
    pub fn append_responses(
        &mut self,
        model: &Rckt,
        qm: &QMatrix,
        items: &[(u32, bool)],
    ) -> Result<usize, QueryError> {
        if items.is_empty() {
            return Ok(0);
        }
        // Every response must leave room in the window for a target slot.
        if self.len() + items.len() + 1 > self.window {
            return Err(QueryError::TargetOutOfRange {
                seq: 0,
                target: self.len() + items.len(),
                t_len: self.window,
            });
        }
        let minis: Vec<Batch> = items
            .iter()
            .enumerate()
            .map(|(off, &(q, _))| {
                if (q as usize) >= qm.num_questions() {
                    return Err(QueryError::QuestionOutOfRange {
                        position: self.len() + off,
                        id: q as usize,
                        num_questions: qm.num_questions(),
                    });
                }
                let mini = mini_batch(q, qm);
                model.validate_query(&mini, &[0])?;
                Ok(mini)
            })
            .collect::<Result<_, QueryError>>()?;

        let lstm = match &model.encoder {
            Encoder::Lstm(enc) if enc.is_forward_only() => enc.forward_lstm(),
            _ => unreachable!("IncrementalState::new gates on a forward-only encoder"),
        };
        if rckt_obs::profiling() {
            rckt_obs::counter("core.infer.incremental_positions").add(items.len() as u64);
        }
        let d = self.dim;
        let start = self.len();
        let mut g = Graph::new();
        // Eval passes never consume randomness (dropout is a no-op); the
        // seed matches the exact path's fan-out workers for clarity.
        let mut rng = SmallRng::seed_from_u64(0);
        // Head-input rows (h_i ⊕ e_i) for the appended positions, per stream.
        let mut xrows: [Vec<Vec<f32>>; 3] = Default::default();
        for (mini, &(q, correct)) in minis.iter().zip(items) {
            // e_i exactly as the batch pass computes it: question gather +
            // segment-mean concept gather (Eq. 23), one row here.
            let e = model.emb.questions(&mut g, &model.store, mini);
            let e_row = g.data(e).to_vec();
            let cats = self.stream_cats(correct);
            for (s, stream) in self.streams.iter_mut().enumerate() {
                // The head input at this position reads the encoder state
                // *before* the response is consumed (the encode gather
                // shifts outputs by one step).
                let mut row = stream.last_out.clone();
                row.extend_from_slice(&e_row);
                xrows[s].push(row);
                // Advance: a_i = e_i + r(cat), one LstmCell::step per layer
                // on the same [1, d] shapes the exact path steps through.
                let a = model.emb.interactions(&mut g, &model.store, e, &[cats[s]]);
                let mut layer_in = a;
                for (li, cell) in lstm.cells.iter().enumerate() {
                    let h = g.input(stream.layers[li].0.clone(), Shape::matrix(1, d));
                    let c = g.input(stream.layers[li].1.clone(), Shape::matrix(1, d));
                    let (h2, c2) = cell.step(&mut g, &model.store, layer_in, h, c);
                    stream.layers[li] = (g.data(h2).to_vec(), g.data(c2).to_vec());
                    layer_in = h2;
                }
                stream.last_out = stream.layers[lstm.cells.len() - 1].0.clone();
            }
            self.questions.push(q);
            self.correct.push(correct);
        }

        // One head pass per stream over a [window, 2d] matrix that is zero
        // except at the appended rows. This is the same kernel geometry as
        // the exact pass — GEMM rows are independent, so the appended rows
        // carry the exact pass's bits under any kernel variant.
        let mut probs: [Vec<f32>; 3] = Default::default();
        for (s, rows) in xrows.iter().enumerate() {
            let mut buf = vec![0.0f32; self.window * 2 * d];
            for (off, row) in rows.iter().enumerate() {
                let pos = start + off;
                buf[pos * 2 * d..(pos + 1) * 2 * d].copy_from_slice(row);
            }
            let x = g.input(buf, Shape::matrix(self.window, 2 * d));
            let logits = model.head.forward(&mut g, &model.store, x, false, &mut rng);
            let p = g.sigmoid(logits);
            let pd = g.data(p);
            probs[s] = (0..items.len()).map(|off| pd[start + off]).collect();
        }

        // Per-position deltas, scalar-for-scalar the exact combine:
        // sub → mask multiply → relu (Eq. 19/20 with clamped inference).
        for (off, &(_, correct)) in items.iter().enumerate() {
            let (pf, pri, prc) = (probs[0][off], probs[1][off], probs[2][off]);
            let (mc, mi) = if correct {
                (1.0f32, 0.0f32)
            } else {
                (0.0, 1.0)
            };
            let mut dpos = (pf - pri) * mc;
            let mut dneg = (prc - pf) * mi;
            if self.clamp {
                dpos = dpos.max(0.0);
                dneg = dneg.max(0.0);
            }
            self.d_pos.push(dpos);
            self.d_neg.push(dneg);
            self.dp += dpos;
            self.dn += dneg;
        }
        Ok(items.len())
    }
}

/// A `[1, 1]` batch holding one response's question, built exactly like
/// [`Batch::from_windows`] builds a valid position.
fn mini_batch(q: u32, qm: &QMatrix) -> Batch {
    let ks = qm.concepts_of(q);
    Batch {
        batch: 1,
        t_len: 1,
        students: vec![0],
        questions: vec![q as usize],
        concept_flat: ks.iter().map(|&k| k as usize).collect(),
        concept_lens: vec![ks.len()],
        correct: vec![0.0],
        valid: vec![true],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Backbone, RcktConfig};
    use rckt_data::{SyntheticSpec, Window};

    fn setup(cfg: RcktConfig) -> (Rckt, rckt_data::Dataset) {
        let ds = SyntheticSpec::assist09().scaled(0.03).generate();
        let m = Rckt::new(Backbone::Dkt, ds.num_questions(), ds.num_concepts(), cfg);
        (m, ds)
    }

    fn uni_cfg() -> RcktConfig {
        RcktConfig {
            dim: 8,
            unidirectional: true,
            ..Default::default()
        }
    }

    /// History of `n` responses with deterministic question/correct churn.
    fn history(n: usize, num_questions: usize) -> Vec<(u32, bool)> {
        (0..n)
            .map(|i| ((1 + (i * 7 + 3) % (num_questions - 1)) as u32, i % 3 != 0))
            .collect()
    }

    /// Exact-path score over a padded `[1, window]` batch, mirroring the
    /// serve layer's window construction.
    fn exact_score(
        m: &Rckt,
        qm: &QMatrix,
        hist: &[(u32, bool)],
        target_q: u32,
        window: usize,
    ) -> f32 {
        let target = hist.len();
        assert!(target + 1 <= window);
        let mut questions = vec![0u32; window];
        let mut correct = vec![0u8; window];
        for (i, &(q, c)) in hist.iter().enumerate() {
            questions[i] = q;
            correct[i] = c as u8;
        }
        questions[target] = target_q;
        let w = Window {
            student: 0,
            questions,
            correct,
            len: target + 1,
        };
        let b = Batch::from_windows(&[&w], qm);
        m.predict_targets(&b, &[target])[0].prob
    }

    #[test]
    fn append_one_matches_exact_path_bitwise_at_every_prefix() {
        let (m, ds) = setup(uni_cfg());
        let window = 16;
        let hist = history(window - 1, ds.num_questions());
        let mut state = IncrementalState::new(&m, window).expect("forward-only DKT");
        for n in 0..hist.len() {
            let warm = state.score();
            let exact = exact_score(&m, &ds.q_matrix, &hist[..n], hist[n].0, window);
            assert_eq!(
                warm.to_bits(),
                exact.to_bits(),
                "prefix {n}: warm {warm} vs exact {exact}"
            );
            let recomputed = state
                .append_response(&m, &ds.q_matrix, hist[n].0, hist[n].1)
                .unwrap();
            assert_eq!(recomputed, 1);
        }
        let warm = state.score();
        let exact = exact_score(&m, &ds.q_matrix, &hist, 1, window);
        assert_eq!(warm.to_bits(), exact.to_bits(), "full-history score");
    }

    #[test]
    fn empty_history_scores_half() {
        let (m, ds) = setup(uni_cfg());
        let state = IncrementalState::new(&m, 16).unwrap();
        assert_eq!(state.score(), 0.5);
        assert_eq!(
            state.score().to_bits(),
            exact_score(&m, &ds.q_matrix, &[], 1, 16).to_bits()
        );
    }

    #[test]
    fn batch_install_equals_one_at_a_time() {
        let (m, ds) = setup(uni_cfg());
        let hist = history(10, ds.num_questions());
        let mut one = IncrementalState::new(&m, 16).unwrap();
        for &(q, c) in &hist {
            one.append_response(&m, &ds.q_matrix, q, c).unwrap();
        }
        let mut all = IncrementalState::new(&m, 16).unwrap();
        let recomputed = all.append_responses(&m, &ds.q_matrix, &hist).unwrap();
        assert_eq!(recomputed, hist.len());
        assert_eq!(one.score().to_bits(), all.score().to_bits());
        let (p1, n1) = one.contributions();
        let (p2, n2) = all.contributions();
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(p1), bits(p2));
        assert_eq!(bits(n1), bits(n2));
    }

    #[test]
    fn contributions_match_exact_influence_maps() {
        let (m, ds) = setup(uni_cfg());
        let window = 16;
        let hist = history(9, ds.num_questions());
        let mut state = IncrementalState::new(&m, window).unwrap();
        state.append_responses(&m, &ds.q_matrix, &hist).unwrap();

        let target = hist.len();
        let mut questions = vec![0u32; window];
        let mut correct = vec![0u8; window];
        for (i, &(q, c)) in hist.iter().enumerate() {
            questions[i] = q;
            correct[i] = c as u8;
        }
        questions[target] = hist[0].0;
        let w = Window {
            student: 0,
            questions,
            correct,
            len: target + 1,
        };
        let b = Batch::from_windows(&[&w], &ds.q_matrix);
        let rec = &m.influences(&b, &[target])[0];
        let (dp, dn) = state.contributions();
        for &(t, was_correct, delta) in &rec.influences {
            let mine = if was_correct { dp[t] } else { dn[t] };
            assert_eq!(mine.to_bits(), delta.to_bits(), "position {t}");
        }
        assert_eq!(state.score().to_bits(), rec.score.to_bits());
    }

    #[test]
    fn flip_only_retention_matches_exact() {
        let cfg = RcktConfig {
            retention: Retention::FlipOnly,
            ..uni_cfg()
        };
        let (m, ds) = setup(cfg);
        let hist = history(6, ds.num_questions());
        let mut state = IncrementalState::new(&m, 16).unwrap();
        state.append_responses(&m, &ds.q_matrix, &hist).unwrap();
        let exact = exact_score(&m, &ds.q_matrix, &hist, 1, 16);
        assert_eq!(state.score().to_bits(), exact.to_bits());
        // FlipOnly contexts are factual, so every context delta is zero and
        // the score collapses to ½ on a forward-only encoder.
        assert_eq!(state.score(), 0.5);
    }

    #[test]
    fn unclamped_inference_matches_exact() {
        let cfg = RcktConfig {
            clamp_inference: false,
            ..uni_cfg()
        };
        let (m, ds) = setup(cfg);
        let hist = history(8, ds.num_questions());
        let mut state = IncrementalState::new(&m, 16).unwrap();
        for (n, &(q, c)) in hist.iter().enumerate() {
            let exact = exact_score(&m, &ds.q_matrix, &hist[..n], q, 16);
            assert_eq!(state.score().to_bits(), exact.to_bits(), "prefix {n}");
            state.append_response(&m, &ds.q_matrix, q, c).unwrap();
        }
    }

    #[test]
    fn bidirectional_models_are_not_incremental() {
        let (m, _) = setup(RcktConfig {
            dim: 8,
            ..Default::default()
        });
        assert!(!m.supports_incremental());
        assert!(IncrementalState::new(&m, 16).is_none());
    }

    #[test]
    fn multi_layer_encoder_matches_exact() {
        let cfg = RcktConfig {
            layers: 2,
            ..uni_cfg()
        };
        let (m, ds) = setup(cfg);
        let hist = history(7, ds.num_questions());
        let mut state = IncrementalState::new(&m, 16).unwrap();
        for (n, &(q, c)) in hist.iter().enumerate() {
            let exact = exact_score(&m, &ds.q_matrix, &hist[..n], q, 16);
            assert_eq!(state.score().to_bits(), exact.to_bits(), "prefix {n}");
            state.append_response(&m, &ds.q_matrix, q, c).unwrap();
        }
    }

    #[test]
    fn window_capacity_is_enforced() {
        let (m, ds) = setup(uni_cfg());
        let mut state = IncrementalState::new(&m, 4).unwrap();
        // Window 4 leaves room for 3 responses + 1 target slot.
        let hist = history(3, ds.num_questions());
        state.append_responses(&m, &ds.q_matrix, &hist).unwrap();
        let err = state
            .append_response(&m, &ds.q_matrix, 1, true)
            .unwrap_err();
        assert!(matches!(err, QueryError::TargetOutOfRange { .. }));
        assert_eq!(state.len(), 3, "failed append must not mutate");
    }

    #[test]
    fn out_of_range_question_is_rejected_without_mutation() {
        let (m, ds) = setup(uni_cfg());
        let mut state = IncrementalState::new(&m, 16).unwrap();
        state.append_response(&m, &ds.q_matrix, 1, true).unwrap();
        let bad = ds.num_questions() as u32 + 10;
        let err = state
            .append_responses(&m, &ds.q_matrix, &[(2, true), (bad, false)])
            .unwrap_err();
        assert!(matches!(err, QueryError::QuestionOutOfRange { .. }));
        assert_eq!(state.len(), 1, "failed batch append must not mutate");
    }

    #[test]
    fn score_at_replays_the_live_score_of_every_prefix() {
        let (m, ds) = setup(uni_cfg());
        let hist = history(12, ds.num_questions());
        let mut state = IncrementalState::new(&m, 16).unwrap();
        // Record what score() actually returned at each prefix length.
        let mut live = vec![state.score()];
        for &(q, c) in &hist {
            state.append_response(&m, &ds.q_matrix, q, c).unwrap();
            live.push(state.score());
        }
        for (n, &expected) in live.iter().enumerate() {
            let replayed = state.score_at(n).unwrap();
            assert_eq!(
                replayed.to_bits(),
                expected.to_bits(),
                "replay of prefix {n}"
            );
        }
        assert_eq!(
            state.score_at(state.len()).unwrap().to_bits(),
            state.score().to_bits()
        );
        assert_eq!(state.score_at(state.len() + 1), None);
    }

    #[test]
    fn state_bytes_is_plausible_and_grows_with_history() {
        let (m, ds) = setup(uni_cfg());
        let mut state = IncrementalState::new(&m, 64).unwrap();
        let empty = state.state_bytes();
        assert!(empty > 0);
        state
            .append_responses(&m, &ds.q_matrix, &history(30, ds.num_questions()))
            .unwrap();
        assert!(state.state_bytes() > empty);
        // The whole point: state is O(layers·d + len), not O(window·d).
        assert!(state.state_bytes() < 64 * 1024);
    }
}
