//! The RCKT model: adaptive bidirectional encoder-MLP response probability
//! generator + response influence-based counterfactual reasoning.
//!
//! Approximate (backward) inference — the paper's default — needs four
//! encoder passes per target (`F⁺`, `CF⁻`, `F⁻`, `CF⁺`, Fig. 2); exact
//! (forward) inference needs `t + 2` passes and exists for the Table VI
//! comparison.

use crate::config::{Backbone, RcktConfig};
use crate::counterfactual::{backward_quadruple, forward_intervention, joint_contexts, Cats};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rckt_data::{make_batches, Batch, QMatrix, Window};
use rckt_metrics::{accuracy, auc};
use rckt_models::common::{factual_cats, ProbeSpec};
use rckt_models::model::{run_fit, FitReport, KtModel, TrainConfig};
use rckt_models::{BiAttnEncoder, BiEncoder, BiLstmEncoder, KtEmbedding, Prediction, ResponseCat};
use rckt_tensor::layers::PredictionMlp;
use rckt_tensor::pool;
use rckt_tensor::{Adam, Graph, ParamStore, Shape, Tx};

pub(crate) enum Encoder {
    Lstm(BiLstmEncoder),
    Attn(BiAttnEncoder),
}

impl Encoder {
    #[allow(clippy::too_many_arguments)]
    fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        e: Tx,
        a: Tx,
        batch: usize,
        t_len: usize,
        valid: &[bool],
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx {
        match self {
            Encoder::Lstm(enc) => enc.encode(g, store, e, a, batch, t_len, valid, train, rng),
            Encoder::Attn(enc) => enc.encode(g, store, e, a, batch, t_len, valid, train, rng),
        }
    }
}

/// Per-sequence influence attribution produced by [`Rckt::influences`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct InfluenceRecord {
    /// Target position within the window.
    pub target: usize,
    /// `(position, was_correct, influence Δ)` for each past response.
    pub influences: Vec<(usize, bool, f32)>,
    /// Accumulated correct-response influence Δ⁺ (Eq. 22).
    pub total_correct: f32,
    /// Accumulated incorrect-response influence Δ⁻.
    pub total_incorrect: f32,
    /// Normalized margin `(Δ⁺ − Δ⁻)/(2t) + ½ ∈ (0, 1)`; ≥ ½ predicts
    /// correct (Eq. 13 with the threshold at 0).
    pub score: f32,
    /// Ground-truth correctness of the target.
    pub label: bool,
}

impl InfluenceRecord {
    pub fn predicted_correct(&self) -> bool {
        self.score >= 0.5
    }
}

/// A malformed inference query, detected at the prediction API boundary
/// before any embedding lookup can panic. Produced by the `*_checked`
/// entry points ([`Rckt::predict_targets_checked`],
/// [`Rckt::influences_exact_checked`]); online servers map it to a 400
/// response, the CLI to a contextual error and nonzero exit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A question id at `position` is not in the model's vocabulary.
    QuestionOutOfRange {
        position: usize,
        id: usize,
        num_questions: usize,
    },
    /// A concept id at `position` is not in the model's vocabulary.
    ConceptOutOfRange {
        position: usize,
        id: usize,
        num_concepts: usize,
    },
    /// The target index for sequence `seq` is outside the window.
    TargetOutOfRange {
        seq: usize,
        target: usize,
        t_len: usize,
    },
    /// `targets.len()` does not match the batch's sequence count.
    TargetCountMismatch { targets: usize, batch: usize },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::QuestionOutOfRange {
                position,
                id,
                num_questions,
            } => write!(
                f,
                "question id {id} at position {position} is out of range (model knows {num_questions} questions)"
            ),
            QueryError::ConceptOutOfRange {
                position,
                id,
                num_concepts,
            } => write!(
                f,
                "concept id {id} at position {position} is out of range (model knows {num_concepts} concepts)"
            ),
            QueryError::TargetOutOfRange { seq, target, t_len } => write!(
                f,
                "target {target} for sequence {seq} is outside the window (t_len {t_len})"
            ),
            QueryError::TargetCountMismatch { targets, batch } => write!(
                f,
                "got {targets} targets for a batch of {batch} sequences"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// RCKT (the paper's model). Construct with [`Rckt::new`], train with
/// [`KtModel::fit`], explain with [`Rckt::influences`].
pub struct Rckt {
    pub cfg: RcktConfig,
    pub backbone: Backbone,
    pub(crate) emb: KtEmbedding,
    pub(crate) encoder: Encoder,
    pub(crate) head: PredictionMlp,
    pub(crate) store: ParamStore,
    adam: Adam,
    /// Question-vocabulary size the embeddings were built for; queries are
    /// validated against it by [`Rckt::validate_query`].
    num_questions: usize,
    /// Concept-vocabulary size the embeddings were built for.
    num_concepts: usize,
}

impl Rckt {
    pub fn new(
        backbone: Backbone,
        num_questions: usize,
        num_concepts: usize,
        cfg: RcktConfig,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.dim;
        let emb = KtEmbedding::new(&mut store, "emb", num_questions, num_concepts, d, &mut rng);
        let encoder = match backbone {
            Backbone::Dkt => {
                let mut enc =
                    BiLstmEncoder::new(&mut store, "enc", d, cfg.layers, cfg.dropout, &mut rng);
                if cfg.unidirectional {
                    enc = enc.forward_only();
                }
                Encoder::Lstm(enc)
            }
            Backbone::Sakt => Encoder::Attn(BiAttnEncoder::new(
                &mut store,
                "enc",
                d,
                cfg.heads,
                cfg.layers,
                false,
                cfg.dropout,
                cfg.max_len,
                &mut rng,
            )),
            Backbone::Akt => Encoder::Attn(BiAttnEncoder::new(
                &mut store,
                "enc",
                d,
                cfg.heads,
                cfg.layers,
                true,
                cfg.dropout,
                cfg.max_len,
                &mut rng,
            )),
        };
        let head = PredictionMlp::new(&mut store, "head", 2 * d, d, cfg.dropout, &mut rng);
        let adam = Adam::new(cfg.lr).with_l2(cfg.l2);
        Rckt {
            cfg,
            backbone,
            emb,
            encoder,
            head,
            store,
            adam,
            num_questions,
            num_concepts,
        }
    }

    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Question-vocabulary size this model was constructed for.
    pub fn num_questions(&self) -> usize {
        self.num_questions
    }

    /// Concept-vocabulary size this model was constructed for.
    pub fn num_concepts(&self) -> usize {
        self.num_concepts
    }

    /// Whether this model can serve incremental (append-one) inference via
    /// [`crate::incremental::IncrementalState`]: only forward-only LSTM
    /// encoders qualify, because appending a response leaves every earlier
    /// hidden state untouched. Bidirectional and attention backbones re-mix
    /// the whole window on append and must take the exact path.
    pub fn supports_incremental(&self) -> bool {
        matches!(&self.encoder, Encoder::Lstm(enc) if enc.is_forward_only())
    }

    /// Validate a query against the model's stored vocabulary sizes and the
    /// batch's own geometry, so out-of-range ids surface as a typed
    /// [`QueryError`] instead of a panic deep inside an embedding gather.
    pub fn validate_query(&self, batch: &Batch, targets: &[usize]) -> Result<(), QueryError> {
        if targets.len() != batch.batch {
            return Err(QueryError::TargetCountMismatch {
                targets: targets.len(),
                batch: batch.batch,
            });
        }
        for (seq, &t) in targets.iter().enumerate() {
            if t >= batch.t_len {
                return Err(QueryError::TargetOutOfRange {
                    seq,
                    target: t,
                    t_len: batch.t_len,
                });
            }
        }
        for (position, &q) in batch.questions.iter().enumerate() {
            if q >= self.num_questions {
                return Err(QueryError::QuestionOutOfRange {
                    position,
                    id: q,
                    num_questions: self.num_questions,
                });
            }
        }
        let mut flat = 0usize;
        for (position, &len) in batch.concept_lens.iter().enumerate() {
            for &k in &batch.concept_flat[flat..flat + len] {
                if k >= self.num_concepts {
                    return Err(QueryError::ConceptOutOfRange {
                        position,
                        id: k,
                        num_concepts: self.num_concepts,
                    });
                }
            }
            flat += len;
        }
        Ok(())
    }

    /// [`Rckt::predict_targets`] behind [`Rckt::validate_query`].
    pub fn predict_targets_checked(
        &self,
        batch: &Batch,
        targets: &[usize],
    ) -> Result<Vec<Prediction>, QueryError> {
        self.validate_query(batch, targets)?;
        Ok(self.predict_targets(batch, targets))
    }

    /// [`Rckt::influences`] behind [`Rckt::validate_query`].
    pub fn influences_checked(
        &self,
        batch: &Batch,
        targets: &[usize],
    ) -> Result<Vec<InfluenceRecord>, QueryError> {
        self.validate_query(batch, targets)?;
        Ok(self.influences(batch, targets))
    }

    /// [`Rckt::influences_exact`] behind [`Rckt::validate_query`].
    pub fn influences_exact_checked(
        &self,
        batch: &Batch,
        targets: &[usize],
    ) -> Result<Vec<InfluenceRecord>, QueryError> {
        self.validate_query(batch, targets)?;
        Ok(self.influences_exact(batch, targets))
    }

    /// Serialize weights; restore with [`Rckt::load_weights`].
    pub fn save_weights(&self) -> String {
        self.store.save_json()
    }

    pub fn load_weights(&mut self, json: &str) -> Result<(), serde_json::Error> {
        self.store = ParamStore::load_json(json)?;
        Ok(())
    }

    /// One probability-generator pass (Eq. 25–26): logits `[B*T, 1]` for
    /// every position, conditioned on the *other* positions' categories.
    #[allow(clippy::too_many_arguments)]
    fn logits_pass(
        &self,
        g: &mut Graph,
        batch: &Batch,
        cats: &[ResponseCat],
        valid: &[bool],
        probes: &[ProbeSpec],
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx {
        let e = self
            .emb
            .questions_with_probes(g, &self.store, batch, probes);
        let a = self.emb.interactions(g, &self.store, e, cats);
        let h = self.encoder.encode(
            g,
            &self.store,
            e,
            a,
            batch.batch,
            batch.t_len,
            valid,
            train,
            rng,
        );
        let x = g.concat_cols(h, e);
        self.head.forward(g, &self.store, x, train, rng)
    }

    #[allow(clippy::too_many_arguments)]
    fn probs_pass(
        &self,
        g: &mut Graph,
        batch: &Batch,
        cats: &[ResponseCat],
        valid: &[bool],
        probes: &[ProbeSpec],
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx {
        let logits = self.logits_pass(g, batch, cats, valid, probes, train, rng);
        g.sigmoid(logits)
    }

    /// Assemble the four flat category sequences of the backward
    /// approximation for per-sequence targets.
    fn quadruple_cats(&self, batch: &Batch, targets: &[usize]) -> [Vec<ResponseCat>; 4] {
        assert_eq!(
            targets.len(),
            batch.batch,
            "one target position per sequence in the batch"
        );
        let t_len = batch.t_len;
        let mut out: [Vec<ResponseCat>; 4] = Default::default();
        for o in &mut out {
            o.reserve(batch.batch * t_len);
        }
        #[allow(clippy::needless_range_loop)]
        for b in 0..batch.batch {
            let factual: Cats = (0..t_len)
                .map(|t| {
                    let i = b * t_len + t;
                    if batch.valid[i] {
                        ResponseCat::from_correct(batch.correct[i] >= 0.5)
                    } else {
                        ResponseCat::Masked
                    }
                })
                .collect();
            let quad = backward_quadruple(&factual, targets[b], self.cfg.retention);
            for (o, q) in out.iter_mut().zip(quad) {
                o.extend(q);
            }
        }
        out
    }

    /// Visibility for a target-conditioned pass: positions after the target
    /// are hidden, everything else follows the batch's own validity.
    fn visibility(&self, batch: &Batch, targets: &[usize]) -> Vec<bool> {
        let t_len = batch.t_len;
        (0..batch.batch * t_len)
            .map(|i| batch.valid[i] && (i % t_len) <= targets[i / t_len])
            .collect()
    }

    /// Influence masks: which positions count as past correct (mc) or past
    /// incorrect (mi) responses for each sequence's target.
    fn influence_masks(&self, batch: &Batch, targets: &[usize]) -> (Vec<f32>, Vec<f32>) {
        let t_len = batch.t_len;
        let n = batch.batch * t_len;
        let mut mc = vec![0.0f32; n];
        let mut mi = vec![0.0f32; n];
        for i in 0..n {
            let (b, t) = (i / t_len, i % t_len);
            if batch.valid[i] && t < targets[b] {
                if batch.correct[i] >= 0.5 {
                    mc[i] = 1.0;
                } else {
                    mi[i] = 1.0;
                }
            }
        }
        (mc, mi)
    }

    /// Build the counterfactual-reasoning graph for the given targets.
    /// Returns `(Δ⁺ [B,1], Δ⁻ [B,1], Δ⁺-map [B,T], Δ⁻-map [B,T])`.
    #[allow(clippy::too_many_arguments)]
    fn delta_graph(
        &self,
        g: &mut Graph,
        batch: &Batch,
        targets: &[usize],
        probes: &[ProbeSpec],
        train: bool,
        rng: &mut SmallRng,
    ) -> (Tx, Tx, Tx, Tx) {
        let (bsz, t_len) = (batch.batch, batch.t_len);
        let [f_pos, cf_neg, f_neg, cf_pos] = self.quadruple_cats(batch, targets);
        let vis = self.visibility(batch, targets);
        let p_fp = self.probs_pass(g, batch, &f_pos, &vis, probes, train, rng);
        let p_cfn = self.probs_pass(g, batch, &cf_neg, &vis, probes, train, rng);
        let p_fn = self.probs_pass(g, batch, &f_neg, &vis, probes, train, rng);
        let p_cfp = self.probs_pass(g, batch, &cf_pos, &vis, probes, train, rng);

        let (mc, mi) = self.influence_masks(batch, targets);
        // Δ⁺ map: correct responses, Eq. 19; Δ⁻ map: incorrect, Eq. 20.
        let mut d_pos = g.sub(p_fp, p_cfn);
        d_pos = g.dropout_mask(d_pos, mc);
        let mut d_neg = g.sub(p_cfp, p_fn);
        d_neg = g.dropout_mask(d_neg, mi);
        if !train && self.cfg.clamp_inference {
            // Influences are probability drops, defined non-negative
            // (Eq. 10/11); negative measurements are generator noise.
            d_pos = g.relu(d_pos);
            d_neg = g.relu(d_neg);
        }
        let d_pos_map = g.reshape(d_pos, Shape::matrix(bsz, t_len));
        let d_neg_map = g.reshape(d_neg, Shape::matrix(bsz, t_len));
        let delta_pos = g.sum_last(d_pos_map);
        let delta_neg = g.sum_last(d_neg_map);
        (delta_pos, delta_neg, d_pos_map, d_neg_map)
    }

    /// Inference-only counterpart of [`Rckt::delta_graph`]: the four
    /// generator passes of the backward approximation are independent, so
    /// they run as separate graphs fanned out on the [`pool`]. Eval passes
    /// never consume randomness (dropout is a no-op), so every pass
    /// computes the same bits no matter which worker runs it, and the
    /// results are combined in fixed pass order — predictions are
    /// identical for any `RCKT_THREADS`.
    ///
    /// Returns `(Δ⁺ [B], Δ⁻ [B], Δ⁺-map [B*T], Δ⁻-map [B*T])` as plain
    /// data (no gradients flow at inference).
    fn delta_infer(
        &self,
        batch: &Batch,
        targets: &[usize],
        probes: &[ProbeSpec],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let (bsz, t_len) = (batch.batch, batch.t_len);
        let [f_pos, cf_neg, f_neg, cf_pos] = self.quadruple_cats(batch, targets);
        let vis = self.visibility(batch, targets);
        if rckt_obs::profiling() {
            rckt_obs::counter("core.infer.passes").add(4);
        }
        let cats: [&[ResponseCat]; 4] = [&f_pos, &cf_neg, &f_neg, &cf_pos];
        let probs: Vec<Vec<f32>> = pool::parallel_map(4, |k| {
            let mut rng = SmallRng::seed_from_u64(0);
            let mut g = Graph::new();
            let p = self.probs_pass(&mut g, batch, cats[k], &vis, probes, false, &mut rng);
            g.data(p).to_vec()
        });
        let [p_fp, p_cfn, p_fn, p_cfp]: [Vec<f32>; 4] =
            probs.try_into().expect("four generator passes");

        // Combine with the same graph ops as delta_graph so the arithmetic
        // (and therefore the scores) matches the training-time definition.
        let mut g = Graph::new();
        let n = bsz * t_len;
        let t_fp = g.input(p_fp, Shape::matrix(n, 1));
        let t_cfn = g.input(p_cfn, Shape::matrix(n, 1));
        let t_fn = g.input(p_fn, Shape::matrix(n, 1));
        let t_cfp = g.input(p_cfp, Shape::matrix(n, 1));
        let (mc, mi) = self.influence_masks(batch, targets);
        let mut d_pos = g.sub(t_fp, t_cfn);
        d_pos = g.dropout_mask(d_pos, mc);
        let mut d_neg = g.sub(t_cfp, t_fn);
        d_neg = g.dropout_mask(d_neg, mi);
        if self.cfg.clamp_inference {
            d_pos = g.relu(d_pos);
            d_neg = g.relu(d_neg);
        }
        let d_pos_map = g.reshape(d_pos, Shape::matrix(bsz, t_len));
        let d_neg_map = g.reshape(d_neg, Shape::matrix(bsz, t_len));
        let delta_pos = g.sum_last(d_pos_map);
        let delta_neg = g.sum_last(d_neg_map);
        (
            g.data(delta_pos).to_vec(),
            g.data(delta_neg).to_vec(),
            g.data(d_pos_map).to_vec(),
            g.data(d_neg_map).to_vec(),
        )
    }

    /// Last valid position per sequence (the training target).
    fn last_targets(batch: &Batch) -> Vec<usize> {
        (0..batch.batch)
            .map(|b| batch.seq_len(b).saturating_sub(1))
            .collect()
    }

    /// One optimization step (Eq. 16–17 + Eq. 27–29). Returns the loss.
    ///
    /// Each sequence contributes one counterfactual training sample per
    /// step, at a freshly sampled target position (so over epochs every
    /// position serves as the target, matching the paper's
    /// one-sequence-one-target sample definition without starving the
    /// counterfactual loss of data).
    pub fn train_batch(&mut self, batch: &Batch, clip_norm: f32, rng: &mut SmallRng) -> f32 {
        use rand::Rng;
        self.store.zero_grads();
        let shards = self.cfg.grad_shards.max(1).min(batch.batch);
        let joint_norm = batch.num_valid().max(1) as f32;
        let val = if shards <= 1 {
            let (g, val) = self.batch_loss_graph(batch, 1.0, joint_norm, rng);
            self.store.accumulate_grads(&g);
            val
        } else {
            // Data-parallel gradient accumulation: each shard builds and
            // sweeps its own loss graph, scaled so the shard losses sum to
            // the full-batch loss. Seeds are drawn here in shard order and
            // gradients folded back in shard order, so the update depends
            // only on `grad_shards` — never on which worker ran a shard or
            // how many threads the pool has.
            let bsz = batch.batch;
            let bounds: Vec<(usize, usize)> = (0..shards)
                .map(|s| (s * bsz / shards, (s + 1) * bsz / shards))
                .collect();
            let seeds: Vec<u64> = (0..shards).map(|_| rng.gen()).collect();
            let subs: Vec<Batch> = bounds
                .iter()
                .map(|&(lo, hi)| batch.sub_batch(lo, hi))
                .collect();
            if rckt_obs::profiling() {
                rckt_obs::counter("core.train.shards").add(shards as u64);
            }
            let this: &Rckt = self;
            let results = pool::parallel_map(shards, |s| {
                let mut shard_rng = SmallRng::seed_from_u64(seeds[s]);
                let scale = subs[s].batch as f32 / bsz as f32;
                this.batch_loss_graph(&subs[s], scale, joint_norm, &mut shard_rng)
            });
            let mut val = 0.0f32;
            for (g, v) in &results {
                self.store.accumulate_grads(g);
                val += *v;
            }
            val
        };
        self.store.clip_grad_norm(clip_norm);
        self.adam.step(&mut self.store);
        val
    }

    /// Build the full training-loss graph for a (sub-)batch, run the
    /// backward sweep, and return the swept graph plus the loss value.
    ///
    /// `scale` re-weights the per-sequence mean terms (`L_CF`, `L*`) so
    /// that shard losses sum to the whole-batch mean (`1.0` for an unsharded
    /// batch — the scaling node is skipped entirely then, keeping the graph
    /// byte-identical to the historic inline path). `joint_norm` is the
    /// valid-position count of the *whole* batch, normalizing the joint BCE
    /// the same way regardless of sharding.
    fn batch_loss_graph(
        &self,
        batch: &Batch,
        scale: f32,
        joint_norm: f32,
        rng: &mut SmallRng,
    ) -> (Graph, f32) {
        use rand::Rng;
        let mut g = Graph::new();
        let (bsz, _t_len) = (batch.batch, batch.t_len);
        let targets: Vec<usize> = (0..bsz)
            .map(|b| {
                let len = batch.seq_len(b);
                if len <= 2 {
                    len.saturating_sub(1)
                } else {
                    rng.gen_range(1..len)
                }
            })
            .collect();

        let (delta_pos, delta_neg, d_pos_map, d_neg_map) =
            self.delta_graph(&mut g, batch, &targets, &[], true, rng);

        // L_CF = -log( (-1)^{r} (Δ⁻ − Δ⁺) / (2t) + ½ )
        let mut sign = vec![0.0f32; bsz];
        let mut inv2t = vec![0.0f32; bsz];
        for b in 0..bsz {
            let r = batch.correct[b * batch.t_len + targets[b]] >= 0.5;
            sign[b] = if r { -1.0 } else { 1.0 };
            inv2t[b] = 1.0 / (2.0 * targets[b].max(1) as f32);
        }
        let sign_t = g.input(sign, Shape::matrix(bsz, 1));
        let inv2t_t = g.input(inv2t, Shape::matrix(bsz, 1));
        let diff = g.sub(delta_neg, delta_pos);
        let signed = g.mul(diff, sign_t);
        let scaled = g.mul(signed, inv2t_t);
        let arg = g.add_scalar(scaled, 0.5);
        let logs = g.ln_clamped(arg, 1e-6);
        let neg_logs = g.neg(logs);
        let l_cf = g.mean_all(neg_logs);

        // Constraint L*: Σ max(−Δ_i, 0) (Eq. 17), scaled by α.
        let mut loss = l_cf;
        if self.cfg.alpha > 0.0 {
            let np = g.neg(d_pos_map);
            let rp = g.relu(np);
            let nn = g.neg(d_neg_map);
            let rn = g.relu(nn);
            let s = g.add(rp, rn);
            let per_seq = g.sum_last(s);
            let l_star = g.mean_all(per_seq);
            let l_star = g.mul_scalar(l_star, self.cfg.alpha);
            loss = g.add(loss, l_star);
        }
        if scale != 1.0 {
            loss = g.mul_scalar(loss, scale);
        }

        // Joint training (Eq. 27–29): BCE on the factual and two masked
        // contexts, over all valid positions (bidirectional encoders can
        // predict position 0 from future context). Already normalized by
        // the whole-batch valid count, so no extra shard scaling applies.
        if self.cfg.lambda > 0.0 {
            let factual: Vec<ResponseCat> = factual_cats(batch)
                .into_iter()
                .zip(&batch.valid)
                .map(|(c, &v)| if v { c } else { ResponseCat::Masked })
                .collect();
            let contexts = joint_contexts(&factual);
            let weights: Vec<f32> = batch.valid.iter().map(|&v| v as u8 as f32).collect();
            let mut joint = None;
            for ctx in &contexts {
                let logits = self.logits_pass(&mut g, batch, ctx, &batch.valid, &[], true, rng);
                let l = g.bce_with_logits(logits, &batch.correct, &weights, joint_norm);
                joint = Some(match joint {
                    None => l,
                    Some(j) => g.add(j, l),
                });
            }
            let j = g.mul_scalar(joint.expect("three contexts"), self.cfg.lambda);
            loss = g.add(loss, j);
        }

        let val = g.value(loss);
        g.backward(loss);
        (g, val)
    }

    /// Approximate-mode scores for explicit targets: `(score, label)` per
    /// sequence, where score is the normalized margin in `(0, 1)`.
    pub fn predict_targets(&self, batch: &Batch, targets: &[usize]) -> Vec<Prediction> {
        self.predict_targets_probed(batch, targets, &[])
    }

    /// [`Rckt::predict_targets`] with Eq. 30 concept probes substituted at
    /// chosen positions.
    pub fn predict_targets_probed(
        &self,
        batch: &Batch,
        targets: &[usize],
        probes: &[ProbeSpec],
    ) -> Vec<Prediction> {
        let _s = rckt_obs::span("rckt.infer.approx");
        let (dp, dn, _, _) = self.delta_infer(batch, targets, probes);
        (0..batch.batch)
            .map(|b| {
                let t = targets[b].max(1) as f32;
                let score = ((dp[b] - dn[b]) / (2.0 * t) + 0.5).clamp(0.0, 1.0);
                Prediction {
                    prob: score,
                    label: batch.correct[b * batch.t_len + targets[b]] >= 0.5,
                }
            })
            .collect()
    }

    /// Scores for each sequence's final response (the paper's per-student
    /// prediction setting).
    pub fn predict_last(&self, batch: &Batch) -> Vec<Prediction> {
        self.predict_targets(batch, &Self::last_targets(batch))
    }

    /// Full influence attribution for each sequence's target — the model's
    /// explanation output (Fig. 2 right, Table I).
    pub fn influences(&self, batch: &Batch, targets: &[usize]) -> Vec<InfluenceRecord> {
        self.influences_probed(batch, targets, &[])
    }

    /// [`Rckt::influences`] with Eq. 30 concept probes.
    pub fn influences_probed(
        &self,
        batch: &Batch,
        targets: &[usize],
        probes: &[ProbeSpec],
    ) -> Vec<InfluenceRecord> {
        let _s = rckt_obs::span("rckt.infer.approx");
        let (dp, dn, pm, nm) = self.delta_infer(batch, targets, probes);
        (0..batch.batch)
            .map(|b| {
                let target = targets[b];
                let mut influences = Vec::new();
                for t in 0..target {
                    let i = b * batch.t_len + t;
                    if !batch.valid[i] {
                        continue;
                    }
                    let correct = batch.correct[i] >= 0.5;
                    let delta = if correct { pm[i] } else { nm[i] };
                    influences.push((t, correct, delta));
                }
                let t = target.max(1) as f32;
                InfluenceRecord {
                    target,
                    influences,
                    total_correct: dp[b],
                    total_incorrect: dn[b],
                    score: ((dp[b] - dn[b]) / (2.0 * t) + 0.5).clamp(0.0, 1.0),
                    label: batch.correct[b * batch.t_len + target] >= 0.5,
                }
            })
            .collect()
    }

    /// Exact (forward/non-approximate) inference for each sequence's target:
    /// one factual pass plus one counterfactual pass per past response
    /// (Eq. 4–13). Exists to reproduce the Table VI before/after comparison.
    pub fn predict_exact_targets(&self, batch: &Batch, targets: &[usize]) -> Vec<Prediction> {
        self.influences_exact(batch, targets)
            .into_iter()
            .map(|r| Prediction {
                prob: r.score,
                label: r.label,
            })
            .collect()
    }

    /// Factual categories for exact inference: each sequence's real
    /// responses with the target masked (its response is what we predict).
    fn masked_factual_cats(&self, batch: &Batch, targets: &[usize]) -> Vec<Cats> {
        let t_len = batch.t_len;
        (0..batch.batch)
            .map(|b| {
                (0..t_len)
                    .map(|t| {
                        let i = b * t_len + t;
                        if batch.valid[i] && t != targets[b] {
                            ResponseCat::from_correct(batch.correct[i] >= 0.5)
                        } else {
                            ResponseCat::Masked
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The factual half of exact inference: one generator pass over the
    /// target-masked factual sequences, returning `p(correct)` at each
    /// sequence's target. This is the per-prefix state an online server
    /// caches; the counterfactual half ([`Rckt::exact_influence_entries`])
    /// consumes it without recomputing the pass.
    pub fn factual_target_probs(&self, batch: &Batch, targets: &[usize]) -> Vec<f32> {
        let factual_per_seq = self.masked_factual_cats(batch, targets);
        let flat_factual: Vec<ResponseCat> = factual_per_seq.concat();
        let vis = self.visibility(batch, targets);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let p = self.probs_pass(&mut g, batch, &flat_factual, &vis, &[], false, &mut rng);
        let d = g.data(p);
        (0..batch.batch)
            .map(|b| d[b * batch.t_len + targets[b]])
            .collect()
    }

    /// The counterfactual half of exact inference: one pass per
    /// intervention position against a precomputed factual target
    /// probability, returning `(position, was_correct, Δ)` entries per
    /// sequence (position-ascending).
    fn exact_influence_entries(
        &self,
        batch: &Batch,
        targets: &[usize],
        factual_per_seq: &[Cats],
        flat_factual: &[ResponseCat],
        p_target_factual: &[f32],
    ) -> Vec<Vec<(usize, bool, f32)>> {
        let t_len = batch.t_len;
        let vis = self.visibility(batch, targets);
        // One counterfactual pass per intervention position, fanned out on
        // the pool. Each pass is an independent eval-mode graph (no RNG
        // draws), and the per-response influences are folded back in index
        // order below, so the records are identical for any RCKT_THREADS.
        let max_target = targets.iter().copied().max().unwrap_or(0);
        if rckt_obs::profiling() {
            rckt_obs::counter("core.infer.passes").add(1 + max_target as u64);
        }
        let per_pos = pool::parallel_map(max_target, |i| {
            // intervene position i for every sequence where i is a valid
            // past response
            let mut cats = flat_factual.to_vec();
            let mut involved = vec![false; batch.batch];
            for b in 0..batch.batch {
                if i < targets[b] && batch.valid[b * t_len + i] {
                    let (_, cf) = forward_intervention(&factual_per_seq[b], i, self.cfg.retention);
                    cats[b * t_len..(b + 1) * t_len].copy_from_slice(&cf);
                    involved[b] = true;
                }
            }
            if !involved.iter().any(|&x| x) {
                return None;
            }
            let mut rng = SmallRng::seed_from_u64(0);
            let mut g = Graph::new();
            let p = self.probs_pass(&mut g, batch, &cats, &vis, &[], false, &mut rng);
            let d = g.data(p);
            let mut entries = Vec::new();
            for b in 0..batch.batch {
                if !involved[b] {
                    continue;
                }
                let p_cf = d[b * t_len + targets[b]];
                let correct = batch.correct[b * t_len + i] >= 0.5;
                let mut delta = if correct {
                    // Eq. 9: drop in p(correct) when a correct response flips
                    p_target_factual[b] - p_cf
                } else {
                    // Eq. 11: drop in p(incorrect) when an incorrect flips
                    p_cf - p_target_factual[b]
                };
                if self.cfg.clamp_inference {
                    delta = delta.max(0.0);
                }
                entries.push((b, correct, delta));
            }
            Some(entries)
        });
        let mut per_seq: Vec<Vec<(usize, bool, f32)>> = vec![Vec::new(); batch.batch];
        for (i, entries) in per_pos.into_iter().enumerate() {
            for (b, correct, delta) in entries.into_iter().flatten() {
                per_seq[b].push((i, correct, delta));
            }
        }
        per_seq
    }

    /// Exact-mode per-response influence attribution (Eq. 9/11): the
    /// non-approximate counterpart of [`Rckt::influences`], costing one
    /// forward pass per past response. Composed from the factual pass
    /// ([`Rckt::factual_target_probs`]), the per-position counterfactual
    /// deltas, and a plain assembly step — split so a serving layer can
    /// cache the factual state per history prefix; the composition is
    /// bit-identical to running the historic single-function path.
    pub fn influences_exact(&self, batch: &Batch, targets: &[usize]) -> Vec<InfluenceRecord> {
        let _s = rckt_obs::span("rckt.infer.exact");
        let t_len = batch.t_len;
        let factual_per_seq = self.masked_factual_cats(batch, targets);
        let flat_factual: Vec<ResponseCat> = factual_per_seq.concat();
        let p_target_factual = self.factual_target_probs(batch, targets);
        let per_seq = self.exact_influence_entries(
            batch,
            targets,
            &factual_per_seq,
            &flat_factual,
            &p_target_factual,
        );
        per_seq
            .into_iter()
            .enumerate()
            .map(|(b, influences)| {
                let total_correct: f32 = influences
                    .iter()
                    .filter(|(_, c, _)| *c)
                    .map(|(_, _, d)| d)
                    .sum();
                let total_incorrect: f32 = influences
                    .iter()
                    .filter(|(_, c, _)| !*c)
                    .map(|(_, _, d)| d)
                    .sum();
                let t = targets[b].max(1) as f32;
                InfluenceRecord {
                    target: targets[b],
                    influences,
                    total_correct,
                    total_incorrect,
                    score: ((total_correct - total_incorrect) / (2.0 * t) + 0.5).clamp(0.0, 1.0),
                    label: batch.correct[b * t_len + targets[b]] >= 0.5,
                }
            })
            .collect()
    }

    /// Exact-mode prediction at each sequence's final response.
    pub fn predict_exact_last(&self, batch: &Batch) -> Vec<Prediction> {
        self.predict_exact_targets(batch, &Self::last_targets(batch))
    }

    /// Raw generator probability at each sequence's target for an explicit
    /// category sequence (diagnostics; the influence machinery normally
    /// drives the generator internally).
    pub fn factual_pass_probs(
        &self,
        batch: &Batch,
        cats: &[ResponseCat],
        targets: &[usize],
    ) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(0);
        let vis = self.visibility(batch, targets);
        let mut g = Graph::new();
        let p = self.probs_pass(&mut g, batch, cats, &vis, &[], false, &mut rng);
        let d = g.data(p);
        (0..batch.batch)
            .map(|b| d[b * batch.t_len + targets[b]])
            .collect()
    }

    /// Predictions at strided positions (`t = stride−1, 2·stride−1, …` plus
    /// each sequence's final response). One 4-pass round per distinct `t`.
    pub fn predict_stride(&self, batch: &Batch, stride: usize) -> Vec<Prediction> {
        self.predict_stride_from(batch, stride, 0)
    }

    /// [`Rckt::predict_stride`] restricted to targets with at least `min_t`
    /// past responses. Influence aggregation is an ensemble over the past
    /// (see the paper's per-student setting), so very short histories are
    /// outside its intended regime.
    pub fn predict_stride_from(
        &self,
        batch: &Batch,
        stride: usize,
        min_t: usize,
    ) -> Vec<Prediction> {
        let stride = stride.max(2);
        let mut out = Vec::new();
        let mut by_t: Vec<Vec<usize>> = vec![Vec::new(); batch.t_len];
        for b in 0..batch.batch {
            let len = batch.seq_len(b);
            let mut t = stride - 1;
            while t < len {
                if t >= min_t {
                    by_t[t].push(b);
                }
                t += stride;
            }
            if len >= 2 && ((len - 1) % stride != stride - 1 || len - 1 < min_t) {
                by_t[len - 1].push(b);
            }
        }
        // One 4-pass round per distinct target index; the rounds are
        // independent, so they fan out on the pool and fold back in t
        // order (each round's own 4-pass fan-out runs inline when nested).
        let work: Vec<_> = by_t
            .iter()
            .enumerate()
            .filter(|(_, seqs)| !seqs.is_empty())
            .map(|(t, seqs)| {
                let targets: Vec<usize> = (0..batch.batch)
                    .map(|b| if seqs.contains(&b) { t } else { 1 })
                    .collect();
                (seqs, targets)
            })
            .collect();
        let preds_per_t: Vec<Vec<Prediction>> =
            pool::parallel_map(work.len(), |w| self.predict_targets(batch, &work[w].1));
        for ((seqs, _), preds) in work.iter().zip(&preds_per_t) {
            for &b in *seqs {
                out.push(preds[b]);
            }
        }
        out
    }

    /// Evaluate strided-target scores over batches: (AUC, ACC).
    pub fn evaluate_stride(&self, batches: &[Batch], stride: usize) -> (f64, f64) {
        self.evaluate_stride_from(batches, stride, 0)
    }

    /// [`Rckt::evaluate_stride`] with a minimum history length per target.
    pub fn evaluate_stride_from(
        &self,
        batches: &[Batch],
        stride: usize,
        min_t: usize,
    ) -> (f64, f64) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for b in batches {
            for p in self.predict_stride_from(b, stride, min_t) {
                scores.push(p.prob);
                labels.push(p.label);
            }
        }
        (auc(&scores, &labels), accuracy(&scores, &labels, 0.5))
    }

    /// Evaluate scores at last-position targets over batches: (AUC, ACC).
    pub fn evaluate_last(&self, batches: &[Batch]) -> (f64, f64) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for b in batches {
            for p in self.predict_last(b) {
                scores.push(p.prob);
                labels.push(p.label);
            }
        }
        (auc(&scores, &labels), accuracy(&scores, &labels, 0.5))
    }
}

impl KtModel for Rckt {
    fn name(&self) -> String {
        format!(
            "RCKT-{}",
            match self.backbone {
                Backbone::Dkt => "DKT",
                Backbone::Sakt => "SAKT",
                Backbone::Akt => "AKT",
            }
        )
    }

    fn fit(
        &mut self,
        windows: &[Window],
        train_idx: &[usize],
        val_idx: &[usize],
        qm: &QMatrix,
        cfg: &TrainConfig,
    ) -> FitReport {
        let val_batches = make_batches(windows, val_idx, qm, cfg.batch_size);
        // Validation at strided targets with at least half-window history —
        // the same regime the experiments test in.
        let min_t = val_batches.first().map(|b| b.t_len / 2).unwrap_or(0);
        let mut order = train_idx.to_vec();
        let name = self.name();
        run_fit(
            self,
            &name,
            cfg,
            train_idx.len(),
            val_idx.len(),
            |m, _epoch, rng| {
                order.shuffle(rng);
                let batches = make_batches(windows, &order, qm, cfg.batch_size);
                let mut loss_sum = 0.0f64;
                for b in &batches {
                    loss_sum += m.train_batch(b, cfg.clip_norm, rng) as f64;
                }
                (loss_sum / batches.len().max(1) as f64) as f32
            },
            |m| m.evaluate_stride_from(&val_batches, 10, min_t),
            |m| m.save_weights(),
            |m, s| m.load_weights(&s).expect("snapshot restores"),
        )
    }

    /// All-position prediction (one 4-pass round per target index) — used
    /// for apples-to-apples evaluation against conventional models; costly,
    /// prefer [`Rckt::predict_last`] / [`Rckt::predict_targets`] in loops.
    fn predict(&self, batch: &Batch) -> Vec<Prediction> {
        let t_len = batch.t_len;
        let mut by_pos: Vec<Option<Prediction>> = vec![None; batch.batch * t_len];
        // One independent round per target position; fanned out on the
        // pool, results written back in t order.
        let work: Vec<_> = (1..t_len)
            .filter_map(|t| {
                // sequences for which position t is a real response
                let involved: Vec<usize> = (0..batch.batch)
                    .filter(|&b| batch.valid[b * t_len + t])
                    .collect();
                if involved.is_empty() {
                    return None;
                }
                let targets: Vec<usize> = (0..batch.batch)
                    .map(|b| if batch.valid[b * t_len + t] { t } else { 1 })
                    .collect();
                Some((t, involved, targets))
            })
            .collect();
        let preds_per_t: Vec<Vec<Prediction>> =
            pool::parallel_map(work.len(), |w| self.predict_targets(batch, &work[w].2));
        for ((t, involved, _), preds) in work.iter().zip(&preds_per_t) {
            for &b in involved {
                by_pos[b * t_len + t] = Some(preds[b]);
            }
        }
        rckt_models::common::eval_positions(batch)
            .into_iter()
            .map(|i| by_pos[i].expect("prediction computed for every eval position"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_data::{windows, SyntheticSpec};

    fn tiny(scale: f64, cap: usize) -> (rckt_data::Dataset, Vec<Window>, Vec<Batch>) {
        let ds = SyntheticSpec::assist09().scaled(scale).generate();
        let ws = windows(&ds, 20, 5);
        let idx: Vec<usize> = (0..ws.len().min(cap)).collect();
        let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
        (ds, ws, batches)
    }

    fn small_model(ds: &rckt_data::Dataset, backbone: Backbone) -> Rckt {
        Rckt::new(
            backbone,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 16,
                heads: 2,
                lr: 3e-3,
                ..Default::default()
            },
        )
    }

    #[test]
    fn rckt_dkt_loss_decreases() {
        let (ds, _, batches) = tiny(0.03, 8);
        let mut m = small_model(&ds, Backbone::Dkt);
        let mut rng = SmallRng::seed_from_u64(1);
        let first = m.train_batch(&batches[0], 5.0, &mut rng);
        let mut last = first;
        for _ in 0..15 {
            last = m.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn rckt_akt_loss_decreases() {
        let (ds, _, batches) = tiny(0.03, 8);
        let mut m = small_model(&ds, Backbone::Akt);
        let mut rng = SmallRng::seed_from_u64(1);
        let first = m.train_batch(&batches[0], 5.0, &mut rng);
        let mut last = first;
        for _ in 0..15 {
            last = m.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(last < first, "{first} -> {last}");
    }

    /// Every paper Table III configuration constructs and takes a training
    /// step (multi-layer encoders, all dropout/l2 settings).
    #[test]
    fn paper_table3_configs_run() {
        let (ds, _, batches) = tiny(0.02, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        for dataset in ["assist09", "assist12", "slepemapy", "eedi"] {
            for backbone in [Backbone::Dkt, Backbone::Sakt, Backbone::Akt] {
                let cfg = RcktConfig {
                    dim: 16,
                    heads: 2,
                    ..RcktConfig::paper_table3(dataset, backbone)
                };
                let mut m = Rckt::new(backbone, ds.num_questions(), ds.num_concepts(), cfg);
                let loss = m.train_batch(&batches[0], 5.0, &mut rng);
                assert!(loss.is_finite(), "{dataset}/{backbone:?} produced {loss}");
            }
        }
    }

    /// Every ablation configuration still trains (loss decreases): -joint
    /// (λ=0), -con (α=0), -mono (flip-only retention).
    #[test]
    fn ablation_configs_train() {
        let (ds, _, batches) = tiny(0.03, 8);
        for cfg in [
            RcktConfig {
                dim: 16,
                lr: 3e-3,
                ..Default::default()
            }
            .without_joint(),
            RcktConfig {
                dim: 16,
                lr: 3e-3,
                ..Default::default()
            }
            .without_constraint(),
            RcktConfig {
                dim: 16,
                lr: 3e-3,
                ..Default::default()
            }
            .without_mono(),
        ] {
            let mut m = Rckt::new(Backbone::Dkt, ds.num_questions(), ds.num_concepts(), cfg);
            let mut rng = SmallRng::seed_from_u64(1);
            let first = m.train_batch(&batches[0], 5.0, &mut rng);
            let mut last = first;
            for _ in 0..12 {
                last = m.train_batch(&batches[0], 5.0, &mut rng);
            }
            assert!(last < first, "ablation failed to train: {first} -> {last}");
        }
    }

    /// Data-parallel gradient sharding still trains (loss decreases).
    #[test]
    fn sharded_training_decreases_loss() {
        let (ds, _, batches) = tiny(0.03, 8);
        let mut m = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 16,
                lr: 3e-3,
                ..Default::default()
            }
            .with_grad_shards(4),
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let first = m.train_batch(&batches[0], 5.0, &mut rng);
        assert!(first.is_finite());
        let mut last = first;
        for _ in 0..15 {
            last = m.train_batch(&batches[0], 5.0, &mut rng);
        }
        assert!(last < first, "{first} -> {last}");
    }

    /// The sharded path is deterministic: a rerun from the same seed gives
    /// bit-identical losses and weights (shard seeds are drawn in shard
    /// order and gradients folded in shard order).
    #[test]
    fn sharded_training_is_reproducible() {
        let (ds, _, batches) = tiny(0.03, 4);
        let cfg = RcktConfig {
            dim: 16,
            lr: 3e-3,
            ..Default::default()
        }
        .with_grad_shards(3);
        let run = |cfg: RcktConfig| {
            let mut m = Rckt::new(Backbone::Dkt, ds.num_questions(), ds.num_concepts(), cfg);
            let mut rng = SmallRng::seed_from_u64(9);
            let l1 = m.train_batch(&batches[0], 5.0, &mut rng);
            let l2 = m.train_batch(&batches[0], 5.0, &mut rng);
            (l1, l2, m.save_weights())
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(a.2, b.2);
    }

    /// The reported margin must equal the sum-comparison rule of Eq. 13:
    /// score ≥ ½ ⟺ Δ⁺ ≥ Δ⁻.
    #[test]
    fn prediction_consistent_with_influence_totals() {
        let (ds, _, batches) = tiny(0.03, 4);
        let m = small_model(&ds, Backbone::Dkt);
        for batch in &batches {
            let targets = Rckt::last_targets(batch);
            let preds = m.predict_targets(batch, &targets);
            let recs = m.influences(batch, &targets);
            for (p, r) in preds.iter().zip(&recs) {
                assert!((p.prob - r.score).abs() < 1e-6);
                assert_eq!(p.prob >= 0.5, r.total_correct >= r.total_incorrect);
                // totals match the per-response sums
                let sum_pos: f32 = r
                    .influences
                    .iter()
                    .filter(|(_, c, _)| *c)
                    .map(|(_, _, d)| d)
                    .sum();
                let sum_neg: f32 = r
                    .influences
                    .iter()
                    .filter(|(_, c, _)| !*c)
                    .map(|(_, _, d)| d)
                    .sum();
                assert!((sum_pos - r.total_correct).abs() < 1e-4);
                assert!((sum_neg - r.total_incorrect).abs() < 1e-4);
            }
        }
    }

    /// After training with the positivity constraint, influences should be
    /// mostly non-negative.
    #[test]
    fn constraint_pushes_influences_positive() {
        let (ds, _, batches) = tiny(0.05, 8);
        // disable inference clamping so the raw trained influences are
        // observable
        let mut m = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 16,
                lr: 3e-3,
                clamp_inference: false,
                ..Default::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10 {
            for b in &batches {
                m.train_batch(b, 5.0, &mut rng);
            }
        }
        let mut neg = 0usize;
        let mut total = 0usize;
        let mut neg_mass = 0.0f32;
        let mut mass = 0.0f32;
        for b in &batches {
            let targets = Rckt::last_targets(b);
            for r in m.influences(b, &targets) {
                for (_, _, d) in r.influences {
                    total += 1;
                    mass += d.abs();
                    if d < -1e-3 {
                        neg += 1;
                        neg_mass += -d;
                    }
                }
            }
        }
        assert!(total > 0);
        let frac = neg as f32 / total as f32;
        let mass_frac = neg_mass / mass.max(1e-9);
        assert!(
            frac < 0.35 && mass_frac < 0.2,
            "too many negative influences after training: {frac:.2} of count, {mass_frac:.2} of mass"
        );
    }

    /// Exact-mode influence records are internally consistent: totals match
    /// per-response sums and the score reproduces the margin rule.
    #[test]
    fn exact_influences_consistent() {
        let (ds, _, batches) = tiny(0.03, 4);
        let m = small_model(&ds, Backbone::Dkt);
        for batch in &batches {
            let targets = Rckt::last_targets(batch);
            for r in m.influences_exact(batch, &targets) {
                let sp: f32 = r
                    .influences
                    .iter()
                    .filter(|(_, c, _)| *c)
                    .map(|(_, _, d)| d)
                    .sum();
                let sn: f32 = r
                    .influences
                    .iter()
                    .filter(|(_, c, _)| !*c)
                    .map(|(_, _, d)| d)
                    .sum();
                assert!((sp - r.total_correct).abs() < 1e-5);
                assert!((sn - r.total_incorrect).abs() < 1e-5);
                let manual = ((sp - sn) / (2.0 * r.target.max(1) as f32) + 0.5).clamp(0.0, 1.0);
                assert!((r.score - manual).abs() < 1e-5);
                assert_eq!(r.influences.len(), r.target);
            }
        }
    }

    /// Exact (forward) and approximate (backward) inference should rank
    /// students similarly (the Bayes-correlation argument of Sec. IV-C4).
    #[test]
    fn exact_and_approximate_scores_correlate() {
        let (ds, _, batches) = tiny(0.05, 16);
        let mut m = small_model(&ds, Backbone::Dkt);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..8 {
            for b in &batches {
                m.train_batch(b, 5.0, &mut rng);
            }
        }
        let mut approx = Vec::new();
        let mut exact = Vec::new();
        for b in &batches {
            for p in m.predict_last(b) {
                approx.push(p.prob as f64);
            }
            for p in m.predict_exact_last(b) {
                exact.push(p.prob as f64);
            }
        }
        let r = pearson(&approx, &exact);
        assert!(r > 0.3, "exact/approx correlation too low: {r}");
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(1e-12)
    }

    #[test]
    fn weights_roundtrip_preserves_predictions() {
        let (ds, _, batches) = tiny(0.03, 4);
        let mut m = small_model(&ds, Backbone::Dkt);
        let mut rng = SmallRng::seed_from_u64(2);
        m.train_batch(&batches[0], 5.0, &mut rng);
        let before = m.predict_last(&batches[0]);
        let saved = m.save_weights();
        let mut m2 = small_model(&ds, Backbone::Dkt);
        m2.load_weights(&saved).unwrap();
        let after = m2.predict_last(&batches[0]);
        for (x, y) in before.iter().zip(&after) {
            assert!((x.prob - y.prob).abs() < 1e-6);
        }
    }

    /// `predict` (all positions) agrees with per-target predictions.
    #[test]
    fn full_predict_matches_targeted() {
        let (ds, _, batches) = tiny(0.02, 2);
        let m = small_model(&ds, Backbone::Dkt);
        let b = &batches[0];
        let all = m.predict(b);
        let pos = rckt_models::common::eval_positions(b);
        // check one position per sequence against predict_targets
        for (p, &i) in all.iter().zip(&pos) {
            let (seq, t) = (i / b.t_len, i % b.t_len);
            let targets: Vec<usize> = (0..b.batch)
                .map(|bb| if b.valid[bb * b.t_len + t] { t } else { 1 })
                .collect();
            let tp = m.predict_targets(b, &targets);
            assert!((p.prob - tp[seq].prob).abs() < 1e-6, "mismatch at {i}");
        }
    }

    /// Out-of-range ids and targets surface as typed errors at the API
    /// boundary instead of panicking inside an embedding gather — what an
    /// online server needs to answer 400 rather than die.
    #[test]
    fn checked_queries_reject_out_of_range_ids() {
        let (ds, _, batches) = tiny(0.02, 2);
        let m = small_model(&ds, Backbone::Dkt);
        let good = &batches[0];
        let targets = Rckt::last_targets(good);
        assert!(m.predict_targets_checked(good, &targets).is_ok());
        assert!(m.influences_checked(good, &targets).is_ok());
        assert!(m.influences_exact_checked(good, &targets).is_ok());

        // Question id beyond the model's vocabulary.
        let mut bad = good.clone();
        bad.questions[3] = m.num_questions() + 5;
        assert_eq!(
            m.predict_targets_checked(&bad, &targets).unwrap_err(),
            QueryError::QuestionOutOfRange {
                position: 3,
                id: m.num_questions() + 5,
                num_questions: m.num_questions(),
            }
        );

        // Concept id beyond the model's vocabulary.
        let mut bad = good.clone();
        bad.concept_flat[0] = m.num_concepts() + 2;
        assert!(matches!(
            m.influences_exact_checked(&bad, &targets),
            Err(QueryError::ConceptOutOfRange { position: 0, .. })
        ));

        // Target outside the window.
        let mut t2 = targets.clone();
        t2[0] = good.t_len + 1;
        assert_eq!(
            m.predict_targets_checked(good, &t2).unwrap_err(),
            QueryError::TargetOutOfRange {
                seq: 0,
                target: good.t_len + 1,
                t_len: good.t_len,
            }
        );

        // Wrong number of targets.
        assert_eq!(
            m.influences_checked(good, &targets[..targets.len() - 1])
                .unwrap_err(),
            QueryError::TargetCountMismatch {
                targets: targets.len() - 1,
                batch: good.batch,
            }
        );

        // Errors render a contextual message.
        let msg = m
            .predict_targets_checked(
                &{
                    let mut b = good.clone();
                    b.questions[0] = 99_999;
                    b
                },
                &targets,
            )
            .unwrap_err()
            .to_string();
        assert!(
            msg.contains("99999") && msg.contains("out of range"),
            "{msg}"
        );
    }

    /// Micro-batching invariance: a sequence predicted alone produces the
    /// same bits as the same sequence inside a larger batch (same t_len).
    /// This is what lets an online server fuse concurrent requests into
    /// one `predict_targets`/`influences_exact` call and still answer
    /// bit-identically to a solo offline run.
    #[test]
    fn batched_inference_is_bitwise_solo_equivalent() {
        let (ds, ws, _) = tiny(0.03, 6);
        let m = small_model(&ds, Backbone::Dkt);
        let refs: Vec<&Window> = ws.iter().take(6).collect();
        let full = Batch::from_windows(&refs, &ds.q_matrix);
        let targets = Rckt::last_targets(&full);
        let batched_preds = m.predict_targets(&full, &targets);
        let batched_recs = m.influences_exact(&full, &targets);
        for (b, &w) in refs.iter().enumerate() {
            let solo = Batch::from_windows(&[w], &ds.q_matrix);
            let solo_targets = vec![targets[b]];
            let sp = m.predict_targets(&solo, &solo_targets);
            assert_eq!(
                sp[0].prob.to_bits(),
                batched_preds[b].prob.to_bits(),
                "sequence {b}: batched vs solo predict_targets diverged"
            );
            let sr = &m.influences_exact(&solo, &solo_targets)[0];
            let br = &batched_recs[b];
            assert_eq!(sr.score.to_bits(), br.score.to_bits());
            assert_eq!(sr.influences.len(), br.influences.len());
            for ((pa, ca, da), (pb, cb, db)) in sr.influences.iter().zip(&br.influences) {
                assert_eq!((pa, ca, da.to_bits()), (pb, cb, db.to_bits()));
            }
        }
    }

    /// The factual/counterfactual split composes back to the monolithic
    /// exact path: `factual_target_probs` matches the probabilities the
    /// full `influences_exact` run uses internally.
    #[test]
    fn factual_split_matches_exact_path() {
        let (ds, _, batches) = tiny(0.03, 4);
        let m = small_model(&ds, Backbone::Dkt);
        let b = &batches[0];
        let targets = Rckt::last_targets(b);
        let probs = m.factual_target_probs(b, &targets);
        assert_eq!(probs.len(), b.batch);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        // Running the split twice is deterministic to the bit.
        let again = m.factual_target_probs(b, &targets);
        for (x, y) in probs.iter().zip(&again) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
