//! # rckt
//!
//! Rust reproduction of **RCKT — Response influence-based Counterfactual
//! Knowledge Tracing** (Cui et al., ICDE 2024).
//!
//! RCKT answers *"what if the student had answered this question
//! incorrectly instead?"* for every past response, measures the resulting
//! change in the predicted outcome on a target question (the **response
//! influence**), and predicts by comparing the accumulated correct- and
//! incorrect-response influences. The prediction is therefore a transparent
//! sum of per-response attributions — ante-hoc interpretable by
//! construction.
//!
//! * [`counterfactual`] — sequence construction with monotonicity-guided
//!   mask/retain (Sec. IV-B), both exact and approximate modes.
//! * [`model`] — the adaptive bidirectional encoder-MLP generator, the
//!   counterfactual training objective (Eq. 16–17) with joint training
//!   (Eq. 27–29), approximate inference (Eq. 19–22) and exact inference.
//! * [`proficiency`] — concept-proficiency tracing (Eq. 30) for the Fig. 5
//!   style dashboards.
//! * [`explain`] — influence reports rendered for humans (Table I style).
//! * [`incremental`] — per-session append-one inference for forward-only
//!   encoders: cached stream states make a live session's next prediction
//!   O(1) encoder steps instead of a full counterfactual fan-out, with
//!   scores byte-identical to the exact path.
//!
//! ```no_run
//! use rckt::{Backbone, Rckt, RcktConfig};
//! use rckt_data::{make_batches, windows, SyntheticSpec, KFold};
//! use rckt_models::KtModel;
//! use rckt_models::model::TrainConfig;
//!
//! let ds = SyntheticSpec::assist09().generate();
//! let ws = windows(&ds, 50, 5);
//! let folds = KFold::paper(42).split(ws.len());
//! let mut model = Rckt::new(Backbone::Dkt, ds.num_questions(), ds.num_concepts(),
//!                           RcktConfig::default());
//! model.fit(&ws, &folds[0].train, &folds[0].val, &ds.q_matrix, &TrainConfig::default());
//! let test = make_batches(&ws, &folds[0].test, &ds.q_matrix, 16);
//! let (auc, acc) = model.evaluate_last(&test);
//! println!("AUC {auc:.4} ACC {acc:.4}");
//! ```

pub mod analysis;
pub mod audit;
pub mod config;
pub mod counterfactual;
pub mod explain;
pub mod incremental;
pub mod model;
pub mod persist;
pub mod proficiency;

pub use config::{Backbone, RcktConfig, Retention};
pub use incremental::IncrementalState;
pub use model::{InfluenceRecord, QueryError, Rckt};
pub use persist::{PersistError, SavedModel, ScoreReference};
