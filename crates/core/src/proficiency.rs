//! Interpretable knowledge-proficiency tracing (paper Sec. V-E, Eq. 30).
//!
//! RCKT probes a concept `k` by building a *virtual target question* whose
//! embedding is the mean ID embedding of every question tagged with `k`,
//! plus `k`'s own embedding. The proficiency after the first `j` responses
//! is the normalized influence margin for that virtual target appended
//! after the length-`j` prefix — scaled into `(0, 1)` by construction.

use crate::model::{InfluenceRecord, Rckt};
use rckt_data::{Batch, QMatrix, Window};
use rckt_models::common::ProbeSpec;

/// Proficiency trajectory of one student on one concept.
#[derive(Clone, Debug)]
pub struct ProficiencyTrace {
    pub concept: u16,
    /// `after[j]` = proficiency after responses `0..=j` (length = window
    /// len); values in `(0, 1)`.
    pub after: Vec<f32>,
}

impl ProficiencyTrace {
    /// Values min-max rescaled into `(0, 1)` for display, as the paper does
    /// for its Fig. 5 squares ("whose values are scaled into (0,1)"). The
    /// raw margin is diluted by the `1/(2t)` normalization, so rescaling
    /// makes the trajectory's shape visible.
    pub fn min_max_scaled(&self) -> Vec<f32> {
        let lo = self.after.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = self.after.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if !(hi - lo).is_normal() {
            return vec![0.5; self.after.len()];
        }
        self.after
            .iter()
            .map(|&v| 0.05 + 0.9 * (v - lo) / (hi - lo))
            .collect()
    }
}

/// A window expanded into per-prefix probe rows: row `j` holds the first
/// `j + 1` real responses followed by a probe slot.
fn probe_batch(window: &Window, qm: &QMatrix) -> (Batch, Vec<usize>) {
    let len = window.len;
    assert!(len >= 1);
    let t_len = len + 1;
    let bsz = len;
    let mut questions = Vec::with_capacity(bsz * t_len);
    let mut concept_flat = Vec::new();
    let mut concept_lens = Vec::with_capacity(bsz * t_len);
    let mut correct = Vec::with_capacity(bsz * t_len);
    let mut valid = Vec::with_capacity(bsz * t_len);
    let mut targets = Vec::with_capacity(bsz);
    for j in 0..len {
        // row j: prefix = responses 0..=j, probe target at position j+1
        for t in 0..t_len {
            let q = if t < len {
                window.questions[t] as usize
            } else {
                0
            };
            questions.push(q);
            let ks = qm.concepts_of(q as u32);
            concept_lens.push(ks.len());
            concept_flat.extend(ks.iter().map(|&k| k as usize));
            correct.push(if t < len {
                window.correct[t] as f32
            } else {
                0.0
            });
            valid.push(t <= j + 1);
        }
        targets.push(j + 1);
    }
    let students = vec![window.student; bsz];
    (
        Batch {
            batch: bsz,
            t_len,
            students,
            questions,
            concept_flat,
            concept_lens,
            correct,
            valid,
        },
        targets,
    )
}

impl Rckt {
    /// Trace proficiency on `concept` after every response of `window`.
    pub fn trace_proficiency(
        &self,
        window: &Window,
        qm: &QMatrix,
        concept: u16,
    ) -> ProficiencyTrace {
        let (batch, targets) = probe_batch(window, qm);
        let questions: Vec<usize> = qm
            .questions_of(concept)
            .into_iter()
            .map(|q| q as usize)
            .collect();
        assert!(!questions.is_empty(), "concept {concept} has no questions");
        let probes: Vec<ProbeSpec> = (0..batch.batch)
            .map(|b| ProbeSpec {
                position: b * batch.t_len + targets[b],
                questions: questions.clone(),
                concept: concept as usize,
            })
            .collect();
        let preds = self.predict_targets_probed(&batch, &targets, &probes);
        ProficiencyTrace {
            concept,
            after: preds.into_iter().map(|p| p.prob).collect(),
        }
    }

    /// Per-response influences on capturing `concept` after the whole
    /// window (the octagon row at the bottom of the paper's Fig. 5).
    pub fn concept_influences(
        &self,
        window: &Window,
        qm: &QMatrix,
        concept: u16,
    ) -> InfluenceRecord {
        let (batch, targets) = probe_batch(window, qm);
        let questions: Vec<usize> = qm
            .questions_of(concept)
            .into_iter()
            .map(|q| q as usize)
            .collect();
        assert!(!questions.is_empty(), "concept {concept} has no questions");
        // only the final prefix row is needed
        let last = batch.batch - 1;
        let sub = sub_batch(&batch, last);
        let probe = ProbeSpec {
            position: targets[last],
            questions,
            concept: concept as usize,
        };
        self.influences_probed(&sub, &[targets[last]], &[probe])
            .into_iter()
            .next()
            .expect("one record")
    }
}

/// Extract sequence `b` of a batch as a standalone single-row batch.
fn sub_batch(batch: &Batch, b: usize) -> Batch {
    let t_len = batch.t_len;
    let range = b * t_len..(b + 1) * t_len;
    let mut concept_flat = Vec::new();
    let mut cursor = 0;
    for (i, &len) in batch.concept_lens.iter().enumerate() {
        if range.contains(&i) {
            concept_flat.extend_from_slice(&batch.concept_flat[cursor..cursor + len]);
        }
        cursor += len;
    }
    Batch {
        batch: 1,
        t_len,
        students: vec![batch.students[b]],
        questions: batch.questions[range.clone()].to_vec(),
        concept_flat,
        concept_lens: batch.concept_lens[range.clone()].to_vec(),
        correct: batch.correct[range.clone()].to_vec(),
        valid: batch.valid[range].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Backbone, RcktConfig};
    use rckt_data::SyntheticSpec;

    fn toy_window() -> (rckt_data::Dataset, Window) {
        let ds = SyntheticSpec::assist09().scaled(0.02).generate();
        let seq = &ds.sequences[0];
        let len = seq.len().min(8);
        let mut questions = vec![0u32; len];
        let mut correct = vec![0u8; len];
        for t in 0..len {
            questions[t] = seq.interactions[t].question;
            correct[t] = seq.interactions[t].correct as u8;
        }
        (
            ds.clone(),
            Window {
                student: 0,
                questions,
                correct,
                len,
            },
        )
    }

    #[test]
    fn probe_batch_shapes() {
        let (ds, w) = toy_window();
        let (batch, targets) = probe_batch(&w, &ds.q_matrix);
        assert_eq!(batch.batch, w.len);
        assert_eq!(batch.t_len, w.len + 1);
        assert_eq!(targets, (1..=w.len).collect::<Vec<_>>());
        for (j, &target) in targets.iter().enumerate() {
            for t in 0..batch.t_len {
                let v = batch.valid[j * batch.t_len + t];
                assert_eq!(v, t <= target, "row {j} pos {t}");
            }
        }
    }

    #[test]
    fn proficiency_values_are_scaled() {
        let (ds, w) = toy_window();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let concept = ds.q_matrix.concepts_of(w.questions[0])[0];
        let trace = model.trace_proficiency(&w, &ds.q_matrix, concept);
        assert_eq!(trace.after.len(), w.len);
        for &p in &trace.after {
            assert!((0.0..=1.0).contains(&p), "proficiency {p} out of range");
        }
    }

    #[test]
    fn concept_influences_cover_all_responses() {
        let (ds, w) = toy_window();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let concept = ds.q_matrix.concepts_of(w.questions[0])[0];
        let rec = model.concept_influences(&w, &ds.q_matrix, concept);
        assert_eq!(rec.influences.len(), w.len);
        assert_eq!(rec.target, w.len);
    }
}
