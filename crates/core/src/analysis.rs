//! Aggregate influence analyses.
//!
//! The paper's introduction argues response influences "can unveil various
//! underlying features, such as the forgetting curve and question value
//! during student learning processes". This module implements those two
//! aggregations over [`InfluenceRecord`]s:
//!
//! * [`forgetting_curve`] — mean influence magnitude as a function of how
//!   long ago the response happened (lag from the target). A decaying curve
//!   reproduces the forgetting behaviour the paper observes in Fig. 5
//!   ("the more recent responses have larger influences").
//! * [`question_value`] — mean influence contributed by each question,
//!   usable for question recommendation and question-bank construction.

use crate::model::InfluenceRecord;
use rckt_data::Batch;
use std::collections::HashMap;

/// Mean |influence| per lag bucket: `(lag, mean, count)` sorted by lag,
/// where `lag = target − position` (1 = the most recent response).
pub fn forgetting_curve<'a>(
    records: impl IntoIterator<Item = &'a InfluenceRecord>,
) -> Vec<(usize, f64, usize)> {
    let mut acc: HashMap<usize, (f64, usize)> = HashMap::new();
    for rec in records {
        for &(pos, _, delta) in &rec.influences {
            let lag = rec.target - pos;
            let e = acc.entry(lag).or_default();
            e.0 += delta.abs() as f64;
            e.1 += 1;
        }
    }
    let mut out: Vec<(usize, f64, usize)> = acc
        .into_iter()
        .map(|(lag, (sum, n))| (lag, sum / n as f64, n))
        .collect();
    out.sort_by_key(|&(lag, _, _)| lag);
    out
}

/// Weighted linear-regression slope of mean influence vs lag — negative
/// when recency dominates (forgetting).
pub fn forgetting_slope(curve: &[(usize, f64, usize)]) -> f64 {
    let w: f64 = curve.iter().map(|&(_, _, n)| n as f64).sum();
    if w == 0.0 {
        return 0.0;
    }
    let mx = curve
        .iter()
        .map(|&(l, _, n)| l as f64 * n as f64)
        .sum::<f64>()
        / w;
    let my = curve.iter().map(|&(_, v, n)| v * n as f64).sum::<f64>() / w;
    let cov: f64 = curve
        .iter()
        .map(|&(l, v, n)| n as f64 * (l as f64 - mx) * (v - my))
        .sum();
    let var: f64 = curve
        .iter()
        .map(|&(l, _, n)| n as f64 * (l as f64 - mx).powi(2))
        .sum();
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

/// Mean influence contributed by each question across records:
/// `question -> (mean |influence|, occurrences)`.
///
/// `records` must be the output of [`crate::Rckt::influences`] on `batch`
/// (one record per sequence, in order).
pub fn question_value(records: &[InfluenceRecord], batch: &Batch) -> HashMap<usize, (f64, usize)> {
    assert_eq!(records.len(), batch.batch);
    let mut acc: HashMap<usize, (f64, usize)> = HashMap::new();
    for (b, rec) in records.iter().enumerate() {
        for &(pos, _, delta) in &rec.influences {
            let q = batch.questions[b * batch.t_len + pos];
            let e = acc.entry(q).or_default();
            e.0 += delta.abs() as f64;
            e.1 += 1;
        }
    }
    acc.into_iter()
        .map(|(q, (sum, n))| (q, (sum / n as f64, n)))
        .collect()
}

/// The `k` highest-value questions (by mean |influence|), requiring at
/// least `min_count` observations.
pub fn top_value_questions(
    values: &HashMap<usize, (f64, usize)>,
    k: usize,
    min_count: usize,
) -> Vec<(usize, f64)> {
    let mut v: Vec<(usize, f64)> = values
        .iter()
        .filter(|(_, &(_, n))| n >= min_count)
        .map(|(&q, &(m, _))| (q, m))
        .collect();
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(target: usize, influences: Vec<(usize, bool, f32)>) -> InfluenceRecord {
        InfluenceRecord {
            target,
            influences,
            total_correct: 0.0,
            total_incorrect: 0.0,
            score: 0.5,
            label: true,
        }
    }

    #[test]
    fn forgetting_curve_buckets_by_lag() {
        let r1 = rec(3, vec![(0, true, 0.1), (1, true, 0.2), (2, true, 0.4)]);
        let r2 = rec(2, vec![(0, false, 0.2), (1, false, 0.6)]);
        let curve = forgetting_curve([&r1, &r2]);
        // lag 1: 0.4 and 0.6 -> mean 0.5; lag 2: 0.2, 0.2 -> 0.2; lag 3: 0.1
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].0, 1);
        assert!((curve[0].1 - 0.5).abs() < 1e-6);
        assert_eq!(curve[0].2, 2);
        assert!((curve[1].1 - 0.2).abs() < 1e-6);
        assert!((curve[2].1 - 0.1).abs() < 1e-6);
    }

    #[test]
    fn slope_negative_for_decaying_curve() {
        let curve = vec![(1usize, 0.5f64, 10usize), (2, 0.3, 10), (3, 0.1, 10)];
        assert!(forgetting_slope(&curve) < 0.0);
        let flat = vec![(1usize, 0.3f64, 10usize), (2, 0.3, 10)];
        assert!(forgetting_slope(&flat).abs() < 1e-12);
    }

    #[test]
    fn question_value_aggregates_by_question() {
        let batch = Batch {
            batch: 1,
            t_len: 4,
            students: vec![0],
            questions: vec![7, 9, 7, 1],
            concept_flat: vec![0, 0, 0, 0],
            concept_lens: vec![1, 1, 1, 1],
            correct: vec![1.0, 0.0, 1.0, 1.0],
            valid: vec![true; 4],
        };
        let r = rec(3, vec![(0, true, 0.2), (1, false, 0.3), (2, true, 0.4)]);
        let v = question_value(&[r], &batch);
        assert!((v[&7].0 - 0.3).abs() < 1e-6); // (0.2 + 0.4)/2
        assert_eq!(v[&7].1, 2);
        assert!((v[&9].0 - 0.3).abs() < 1e-6);
        let top = top_value_questions(&v, 1, 2);
        assert_eq!(top, vec![(7, v[&7].0)]);
    }
}
