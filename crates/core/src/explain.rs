//! Human-readable rendering of influence attributions (the paper's Table I
//! and Fig. 6 presentation).

use crate::model::InfluenceRecord;
use std::fmt::Write as _;

/// Context used to label an influence table.
#[derive(Clone, Debug, Default)]
pub struct ExplainContext {
    /// Optional question label per window position.
    pub question_labels: Vec<String>,
}

/// Render an [`InfluenceRecord`] as a Table I style text table: one row per
/// past response with its correctness and influence, then the accumulated
/// totals and the verdict.
pub fn render_influence_table(rec: &InfluenceRecord, ctx: &ExplainContext) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "{:<6} {:<24} {:>3}  {:>10}",
        "pos", "question", "r", "influence"
    )
    .unwrap();
    for &(pos, correct, delta) in &rec.influences {
        let label = ctx
            .question_labels
            .get(pos)
            .cloned()
            .unwrap_or_else(|| format!("q{}", pos + 1));
        writeln!(
            s,
            "{:<6} {:<24} {:>3}  {:>10.4}",
            pos + 1,
            truncate(&label, 24),
            if correct { "✓" } else { "✗" },
            delta
        )
        .unwrap();
    }
    writeln!(
        s,
        "Δ+ = {:.4}   Δ- = {:.4}   margin score = {:.4}",
        rec.total_correct, rec.total_incorrect, rec.score
    )
    .unwrap();
    writeln!(
        s,
        "prediction: {}   ground truth: {}",
        if rec.predicted_correct() {
            "correct (✓)"
        } else {
            "incorrect (✗)"
        },
        if rec.label {
            "correct (✓)"
        } else {
            "incorrect (✗)"
        }
    )
    .unwrap();
    s
}

/// Machine-readable explanation payload for downstream UIs.
#[derive(serde::Serialize)]
pub struct InfluenceJson<'a> {
    pub record: &'a InfluenceRecord,
    /// Optional question label per window position (parallel to positions).
    pub question_labels: &'a [String],
    pub schema: &'static str,
}

/// Serialize an influence record (plus labels) to a stable JSON schema.
pub fn to_json(rec: &InfluenceRecord, ctx: &ExplainContext) -> String {
    serde_json::to_string(&InfluenceJson {
        record: rec,
        question_labels: &ctx.question_labels,
        schema: "rckt.influence.v1",
    })
    .expect("influence serialization")
}

/// The most influential past responses, strongest first.
pub fn top_influences(rec: &InfluenceRecord, k: usize) -> Vec<(usize, bool, f32)> {
    let mut v = rec.influences.clone();
    v.sort_by(|a, b| b.2.abs().partial_cmp(&a.2.abs()).expect("finite influence"));
    v.truncate(k);
    v
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> InfluenceRecord {
        InfluenceRecord {
            target: 5,
            influences: vec![
                (0, true, 0.1),
                (1, false, 0.2),
                (2, true, 0.5),
                (3, true, 0.3),
                (4, false, 0.8),
            ],
            total_correct: 0.9,
            total_incorrect: 1.0,
            score: 0.49,
            label: false,
        }
    }

    #[test]
    fn table_renders_all_rows_and_verdict() {
        let t = render_influence_table(&record(), &ExplainContext::default());
        assert_eq!(t.lines().count(), 1 + 5 + 2);
        assert!(t.contains("Δ+ = 0.9000"));
        assert!(t.contains("prediction: incorrect"));
    }

    #[test]
    fn top_influences_sorted_by_magnitude() {
        let top = top_influences(&record(), 2);
        assert_eq!(top[0], (4, false, 0.8));
        assert_eq!(top[1], (2, true, 0.5));
    }

    #[test]
    fn json_export_contains_schema_and_values() {
        let ctx = ExplainContext {
            question_labels: vec!["q one".into()],
        };
        let j = to_json(&record(), &ctx);
        assert!(j.contains("rckt.influence.v1"));
        assert!(j.contains("\"total_correct\":0.9"));
        let parsed: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(parsed["record"]["influences"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn labels_are_truncated() {
        let ctx = ExplainContext {
            question_labels: vec!["a very very very long question label indeed".into(); 5],
        };
        let t = render_influence_table(&record(), &ctx);
        assert!(t.contains('…'));
    }
}
