//! RCKT configuration: backbone choice, hyper-parameters, ablation toggles.

use serde::{Deserialize, Serialize};

pub use crate::counterfactual::Retention;

/// Which DLKT sequence encoder the adaptive generator wraps (Sec. V-A4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Backbone {
    /// BiLSTM (RCKT-DKT).
    Dkt,
    /// Bidirectional transformer (RCKT-SAKT).
    Sakt,
    /// Bidirectional monotonic-attention transformer (RCKT-AKT).
    Akt,
}

/// Hyper-parameters and ablation switches for [`crate::Rckt`].
///
/// The paper's Table III tunes `{lr, λ, l2, dropout, layers}` per
/// dataset/encoder; `α` is fixed at 1.0. The ablations of Table V map to:
/// `-joint` → `lambda = 0`, `-mono` → `retention = FlipOnly`,
/// `-con` → `alpha = 0`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RcktConfig {
    pub dim: usize,
    pub heads: usize,
    pub layers: usize,
    pub dropout: f32,
    pub lr: f32,
    pub l2: f32,
    /// Loss balancer λ (Eq. 29).
    pub lambda: f32,
    /// Constraint intensity α (Eq. 16); the paper fixes 1.0.
    pub alpha: f32,
    /// Monotonicity-guided retention vs the `-mono` ablation.
    pub retention: Retention,
    /// Ablation: use a forward-only (uni-directional) encoder, violating
    /// the approximation's bidirectionality requirement (Sec. IV-C4) —
    /// exists to quantify that requirement. Only honored by the DKT
    /// backbone.
    pub unidirectional: bool,
    /// Clamp per-response influences at zero during inference. The paper
    /// *defines* influences as probability drops subject to Δ ≥ 0
    /// (Eq. 10/11) and enforces the constraint softly during training
    /// (Eq. 17); clamping at inference applies the same semantics to the
    /// accumulation of Eq. 12.
    pub clamp_inference: bool,
    pub max_len: usize,
    pub seed: u64,
    /// Number of data-parallel gradient shards per training batch. Each
    /// shard builds its loss graph independently (on the `rckt_tensor`
    /// thread pool when it is wider than one) with its own RNG stream
    /// seeded in shard order, and gradients are summed in fixed shard
    /// order — so the trained weights depend only on this value, never on
    /// the thread count. `1` (the default) keeps the historic single-graph
    /// RNG stream byte-for-byte.
    #[serde(default = "default_grad_shards")]
    pub grad_shards: usize,
}

fn default_grad_shards() -> usize {
    1
}

impl Default for RcktConfig {
    fn default() -> Self {
        RcktConfig {
            dim: 32,
            heads: 4,
            layers: 1,
            dropout: 0.2,
            lr: 1e-3,
            l2: 1e-5,
            lambda: 0.3,
            alpha: 1.0,
            retention: Retention::Monotonic,
            unidirectional: false,
            clamp_inference: true,
            max_len: 200,
            seed: 0,
            grad_shards: 1,
        }
    }
}

impl RcktConfig {
    /// The paper's tuned hyper-parameters (Table III) for a dataset/encoder
    /// pair: `{learning rate, λ, l2, dropout, layers}`. Dataset names match
    /// the [`rckt_data::SyntheticSpec`] presets; unknown names fall back to
    /// defaults. Dimension stays at the caller's choice (the paper fixes
    /// 128; CPU runs typically use 32).
    pub fn paper_table3(dataset: &str, backbone: Backbone) -> Self {
        // (lr, lambda, l2, dropout, layers)
        let (lr, lambda, l2, dropout, layers) = match (dataset, backbone) {
            ("assist09", Backbone::Dkt) => (1e-3, 0.1, 1e-5, 0.3, 2),
            ("assist09", Backbone::Sakt) => (2e-3, 0.1, 2e-4, 0.2, 3),
            ("assist09", Backbone::Akt) => (5e-4, 0.01, 5e-5, 0.0, 3),
            ("assist12", Backbone::Dkt) => (2e-3, 0.01, 1e-5, 0.0, 3),
            ("assist12", Backbone::Sakt) => (2e-3, 0.1, 5e-4, 0.2, 3),
            ("assist12", Backbone::Akt) => (5e-4, 0.05, 1e-5, 0.0, 3),
            ("slepemapy", Backbone::Dkt) => (1e-3, 0.1, 0.0, 0.0, 3),
            ("slepemapy", Backbone::Sakt) => (5e-4, 0.4, 1e-5, 0.0, 3),
            ("slepemapy", Backbone::Akt) => (5e-4, 0.01, 1e-5, 0.0, 2),
            ("eedi", Backbone::Dkt) => (1e-3, 0.1, 0.0, 0.0, 3),
            ("eedi", Backbone::Sakt) => (1e-3, 0.1, 1e-5, 0.0, 3),
            ("eedi", Backbone::Akt) => (5e-4, 0.01, 1e-5, 0.0, 3),
            _ => return RcktConfig::default(),
        };
        RcktConfig {
            lr,
            lambda,
            l2,
            dropout,
            layers,
            ..Default::default()
        }
    }

    /// The `-joint` ablation (no joint training of the probability
    /// generator).
    pub fn without_joint(mut self) -> Self {
        self.lambda = 0.0;
        self
    }

    /// The `-mono` ablation (no monotonicity-guided retention).
    pub fn without_mono(mut self) -> Self {
        self.retention = Retention::FlipOnly;
        self
    }

    /// The `-con` ablation (no positivity constraint on influences).
    pub fn without_constraint(mut self) -> Self {
        self.alpha = 0.0;
        self
    }

    /// Set the number of data-parallel gradient shards per batch.
    pub fn with_grad_shards(mut self, n: usize) -> Self {
        self.grad_shards = n.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_known_entries() {
        let c = RcktConfig::paper_table3("assist09", Backbone::Dkt);
        assert_eq!(
            (c.lr, c.lambda, c.l2, c.dropout, c.layers),
            (1e-3, 0.1, 1e-5, 0.3, 2)
        );
        let c = RcktConfig::paper_table3("slepemapy", Backbone::Sakt);
        assert_eq!((c.lr, c.lambda), (5e-4, 0.4));
        // α fixed at 1.0 everywhere, as in the paper
        assert_eq!(c.alpha, 1.0);
    }

    #[test]
    fn table3_unknown_falls_back_to_default() {
        let c = RcktConfig::paper_table3("junyi", Backbone::Akt);
        let d = RcktConfig::default();
        assert_eq!(c.lr, d.lr);
        assert_eq!(c.layers, d.layers);
    }

    #[test]
    fn grad_shards_defaults_and_loads_old_configs() {
        assert_eq!(RcktConfig::default().grad_shards, 1);
        assert_eq!(RcktConfig::default().with_grad_shards(0).grad_shards, 1);
        assert_eq!(RcktConfig::default().with_grad_shards(4).grad_shards, 4);
        // configs serialized before the field existed still deserialize
        let mut v = serde_json::to_value(RcktConfig::default()).unwrap();
        v.as_object_mut().unwrap().remove("grad_shards");
        let c: RcktConfig = serde_json::from_value(v).unwrap();
        assert_eq!(c.grad_shards, 1);
    }

    #[test]
    fn ablation_builders() {
        assert_eq!(RcktConfig::default().without_joint().lambda, 0.0);
        assert_eq!(RcktConfig::default().without_constraint().alpha, 0.0);
        assert_eq!(
            RcktConfig::default().without_mono().retention,
            Retention::FlipOnly
        );
    }
}
