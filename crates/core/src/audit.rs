//! Subgroup performance audits.
//!
//! The paper's related work (Sec. II-B) notes counterfactual reasoning is
//! also used for model unbiasedness/fairness but leaves that out of scope.
//! This module provides the audit half of that story: split students into
//! observable subgroups (by their overall correct rate, a proxy for
//! ability) and compare discrimination (AUC) and calibration per group —
//! so a deployment can check whether predictions serve weaker students as
//! well as stronger ones.

use rckt_metrics::{accuracy, auc};
use rckt_models::Prediction;

/// One subgroup's audit row.
#[derive(Clone, Debug)]
pub struct GroupReport {
    /// Inclusive lower bound of the group's correct-rate bucket.
    pub rate_lo: f64,
    /// Exclusive upper bound (1.0 inclusive for the last group).
    pub rate_hi: f64,
    pub n: usize,
    pub auc: f64,
    pub acc: f64,
    /// Mean predicted probability minus observed correct rate — positive
    /// means the model flatters the group, negative means it undersells.
    pub calibration_gap: f64,
}

/// Audit predictions grouped by each *student's* overall correct rate.
///
/// `per_student` holds, per student, their predictions (any mix of target
/// positions). Students are bucketed into `groups` equal-width correct-rate
/// bands over `[0, 1]`.
pub fn audit_by_ability(per_student: &[Vec<Prediction>], groups: usize) -> Vec<GroupReport> {
    assert!(groups >= 1);
    let mut buckets: Vec<Vec<&Prediction>> = vec![Vec::new(); groups];
    for preds in per_student {
        if preds.is_empty() {
            continue;
        }
        let rate = preds.iter().filter(|p| p.label).count() as f64 / preds.len() as f64;
        let g = ((rate * groups as f64) as usize).min(groups - 1);
        buckets[g].extend(preds.iter());
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(g, preds)| {
            let scores: Vec<f32> = preds.iter().map(|p| p.prob).collect();
            let labels: Vec<bool> = preds.iter().map(|p| p.label).collect();
            let mean_p = if scores.is_empty() {
                0.0
            } else {
                scores.iter().map(|&s| s as f64).sum::<f64>() / scores.len() as f64
            };
            let rate = if labels.is_empty() {
                0.0
            } else {
                labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64
            };
            GroupReport {
                rate_lo: g as f64 / groups as f64,
                rate_hi: (g + 1) as f64 / groups as f64,
                n: scores.len(),
                auc: auc(&scores, &labels),
                acc: accuracy(&scores, &labels, 0.5),
                calibration_gap: mean_p - rate,
            }
        })
        .collect()
}

/// Largest pairwise AUC difference between non-empty groups — a single
/// disparity number for dashboards (0 = perfectly even).
pub fn auc_disparity(reports: &[GroupReport]) -> f64 {
    let aucs: Vec<f64> = reports
        .iter()
        .filter(|r| r.n >= 10)
        .map(|r| r.auc)
        .collect();
    match (
        aucs.iter().cloned().fold(f64::NAN, f64::min),
        aucs.iter().cloned().fold(f64::NAN, f64::max),
    ) {
        (lo, hi) if lo.is_finite() && hi.is_finite() => hi - lo,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preds(pairs: &[(f32, bool)]) -> Vec<Prediction> {
        pairs
            .iter()
            .map(|&(prob, label)| Prediction { prob, label })
            .collect()
    }

    #[test]
    fn groups_split_by_student_rate() {
        let weak = preds(&[(0.3, false), (0.4, false), (0.6, true)]); // rate 1/3
        let strong = preds(&[(0.8, true), (0.9, true), (0.2, false)]); // rate 2/3
        let reports = audit_by_ability(&[weak, strong], 2);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].n, 3);
        assert_eq!(reports[1].n, 3);
        assert!(reports[0].rate_hi <= 0.5 + 1e-12);
    }

    #[test]
    fn calibration_gap_signs() {
        // model says 0.9 but the group answers correctly half the time →
        // flattering, positive gap
        let flattered = preds(&[(0.9, true), (0.9, false)]);
        let reports = audit_by_ability(&[flattered], 1);
        assert!(reports[0].calibration_gap > 0.3);
    }

    #[test]
    fn disparity_zero_when_even_or_empty() {
        assert_eq!(auc_disparity(&[]), 0.0);
        let even = vec![
            GroupReport {
                rate_lo: 0.0,
                rate_hi: 0.5,
                n: 20,
                auc: 0.7,
                acc: 0.6,
                calibration_gap: 0.0,
            },
            GroupReport {
                rate_lo: 0.5,
                rate_hi: 1.0,
                n: 20,
                auc: 0.7,
                acc: 0.6,
                calibration_gap: 0.0,
            },
        ];
        assert!(auc_disparity(&even).abs() < 1e-12);
        let uneven = vec![
            GroupReport {
                rate_lo: 0.0,
                rate_hi: 0.5,
                n: 20,
                auc: 0.6,
                acc: 0.6,
                calibration_gap: 0.0,
            },
            GroupReport {
                rate_lo: 0.5,
                rate_hi: 1.0,
                n: 20,
                auc: 0.75,
                acc: 0.6,
                calibration_gap: 0.0,
            },
        ];
        assert!((auc_disparity(&uneven) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn small_groups_excluded_from_disparity() {
        let tiny = vec![GroupReport {
            rate_lo: 0.0,
            rate_hi: 1.0,
            n: 3,
            auc: 0.2,
            acc: 0.5,
            calibration_gap: 0.0,
        }];
        assert_eq!(auc_disparity(&tiny), 0.0);
    }
}
