//! Property tests for the metrics registry: counter totals survive
//! arbitrary concurrent interleavings, and histogram bucketing conserves
//! the observation count.

use proptest::prelude::*;

use rckt_obs::{counter, histogram_with};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The sum of per-thread increments always equals the counter total,
    /// regardless of thread count and per-thread workload.
    #[test]
    fn counter_total_preserved_under_concurrency(
        amounts in prop::collection::vec(0u64..2_000, 1..8),
    ) {
        // A fresh name per case: proptest reuses the process, and the
        // registry is process-global.
        let name = format!("proptest.counter.{:x}", fingerprint(&amounts));
        let c = counter(&name);
        let before = c.get();
        std::thread::scope(|s| {
            for &n in &amounts {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..n {
                        c.incr();
                    }
                });
            }
        });
        let expected: u64 = amounts.iter().sum();
        prop_assert_eq!(c.get() - before, expected);
    }

    /// Every observation lands in exactly one bucket: bucket counts sum to
    /// the total count, and the estimated quantile is an actual bucket
    /// upper bound at or above the true quantile's bucket.
    #[test]
    fn histogram_conserves_count_and_orders_quantiles(
        values in prop::collection::vec(0.0f64..100.0, 1..200),
        q in 0.01f64..1.0,
    ) {
        let name = format!("proptest.hist.{:x}.{}", values.len(), (q * 1000.0) as u64);
        let h = histogram_with(&name, &[0.1, 1.0, 5.0, 10.0, 50.0]);
        let base = h.count();
        for &v in &values {
            h.observe(v);
        }
        let total: u64 = h.bucket_counts().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, h.count());
        prop_assert_eq!(h.count() - base, values.len() as u64);
        let p = h.quantile(q);
        prop_assert!(p > 0.0);
        // Monotone in q.
        prop_assert!(h.quantile(1.0) >= p);
    }
}

fn fingerprint(v: &[u64]) -> u64 {
    // FNV-1a, enough to keep per-case metric names distinct.
    let mut h = 0xcbf29ce484222325u64;
    for &x in v {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h ^ v.len() as u64
}
