//! Text rendering of everything collected so far — the `--profile` output.

use std::fmt::Write;

use crate::metrics::metrics_snapshot;
use crate::span::phase_timings;

fn human_count(v: u64) -> String {
    const UNITS: [(u64, &str); 4] = [
        (1_000_000_000_000, "T"),
        (1_000_000_000, "G"),
        (1_000_000, "M"),
        (1_000, "k"),
    ];
    for (scale, suffix) in UNITS {
        if v >= scale {
            return format!("{:.2}{}", v as f64 / scale as f64, suffix);
        }
    }
    v.to_string()
}

/// Render per-phase timings, counters, gauges, and histogram summaries as
/// an aligned text table. Returns an empty-ish header even when nothing
/// was recorded, so callers can print it unconditionally under `--profile`.
pub fn profile_report() -> String {
    let mut out = String::from("=== profile ===\n");

    let phases = phase_timings();
    if !phases.is_empty() {
        out.push_str("-- phases (wall clock) --\n");
        let w = phases.iter().map(|(p, _)| p.len()).max().unwrap_or(0);
        for (path, stat) in &phases {
            let mean = if stat.count > 0 {
                stat.secs / stat.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:w$}  total {:>9.3}s  count {:>7}  mean {:>9.4}s",
                path, stat.secs, stat.count, mean
            );
        }
    }

    let snap = metrics_snapshot();
    let counters: Vec<_> = snap.counters.iter().filter(|&&(_, v)| v > 0).collect();
    if !counters.is_empty() {
        out.push_str("-- counters --\n");
        let w = counters.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (name, v) in &counters {
            let _ = writeln!(out, "{:w$}  {:>14}  ({})", name, v, human_count(*v));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("-- gauges --\n");
        let w = snap.gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{:w$}  {:.6}", name, v);
        }
    }
    let hists: Vec<_> = snap.histograms.iter().filter(|h| h.count > 0).collect();
    if !hists.is_empty() {
        out.push_str("-- histograms --\n");
        let w = hists.iter().map(|h| h.name.len()).max().unwrap_or(0);
        for h in &hists {
            let _ = writeln!(
                out,
                "{:w$}  n {:>8}  mean {:>10.4}  p50 {:>10.4}  p90 {:>10.4}  p99 {:>10.4}",
                h.name, h.count, h.mean, h.p50, h.p90, h.p99
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter, histogram_with};
    use crate::span::span;

    #[test]
    fn report_includes_phases_counters_histograms() {
        let _g = crate::testutil::global_lock();
        {
            let _s = span("test_report_phase");
        }
        counter("test.report.counter").add(1_500_000);
        histogram_with("test.report.hist", &[1.0, 10.0]).observe(0.5);
        let r = profile_report();
        assert!(r.starts_with("=== profile ==="));
        assert!(r.contains("test_report_phase"));
        assert!(r.contains("test.report.counter"));
        assert!(r.contains("(1.50M)"));
        assert!(r.contains("test.report.hist"));
    }

    #[test]
    fn human_count_scales() {
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(1_500), "1.50k");
        assert_eq!(human_count(2_000_000), "2.00M");
        assert_eq!(human_count(3_000_000_000), "3.00G");
        assert_eq!(human_count(4_500_000_000_000), "4.50T");
    }
}
