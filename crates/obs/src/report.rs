//! Text rendering of everything collected so far — the `--profile` output.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::metrics::metrics_snapshot;
use crate::span::phase_timings;

fn human_count(v: u64) -> String {
    const UNITS: [(u64, &str); 4] = [
        (1_000_000_000_000, "T"),
        (1_000_000_000, "G"),
        (1_000_000, "M"),
        (1_000, "k"),
    ];
    for (scale, suffix) in UNITS {
        if v >= scale {
            return format!("{:.2}{}", v as f64 / scale as f64, suffix);
        }
    }
    v.to_string()
}

/// One tensor op kind's aggregates, reconstructed from the registry's
/// `op.<kind>.*` metrics (the naming contract with `rckt-tensor`'s
/// per-op profiler).
#[derive(Default)]
struct OpRow {
    calls: u64,
    fwd_secs: f64,
    bwd_secs: f64,
    flops: u64,
    alloc_bytes: u64,
}

fn collect_op_rows(snap: &crate::metrics::MetricsSnapshot) -> BTreeMap<String, OpRow> {
    let mut rows: BTreeMap<String, OpRow> = BTreeMap::new();
    for h in &snap.histograms {
        if let Some(kind) = h
            .name
            .strip_prefix("op.")
            .and_then(|r| r.strip_suffix(".secs"))
        {
            let row = rows.entry(kind.to_string()).or_default();
            row.calls = h.count;
            row.fwd_secs = h.sum;
        } else if let Some(kind) = h
            .name
            .strip_prefix("op.")
            .and_then(|r| r.strip_suffix(".bwd_secs"))
        {
            rows.entry(kind.to_string()).or_default().bwd_secs = h.sum;
        }
    }
    for (name, v) in &snap.counters {
        if let Some(kind) = name
            .strip_prefix("op.")
            .and_then(|r| r.strip_suffix(".flops"))
        {
            rows.entry(kind.to_string()).or_default().flops = *v;
        } else if let Some(kind) = name
            .strip_prefix("op.")
            .and_then(|r| r.strip_suffix(".alloc_bytes"))
        {
            rows.entry(kind.to_string()).or_default().alloc_bytes = *v;
        }
    }
    rows.retain(|_, r| r.calls > 0 || r.flops > 0 || r.alloc_bytes > 0 || r.bwd_secs > 0.0);
    rows
}

/// Render per-phase timings, counters, gauges, and histogram summaries as
/// an aligned text table. Returns an empty-ish header even when nothing
/// was recorded, so callers can print it unconditionally under `--profile`.
pub fn profile_report() -> String {
    let mut out = String::from("=== profile ===\n");

    let phases = phase_timings();
    if !phases.is_empty() {
        out.push_str("-- phases (wall clock) --\n");
        let w = phases.iter().map(|(p, _)| p.len()).max().unwrap_or(0);
        for (path, stat) in &phases {
            let mean = if stat.count > 0 {
                stat.secs / stat.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:w$}  total {:>9.3}s  count {:>7}  mean {:>9.4}s",
                path, stat.secs, stat.count, mean
            );
        }
    }

    let snap = metrics_snapshot();

    let ops = collect_op_rows(&snap);
    if !ops.is_empty() {
        out.push_str("-- tensor ops --\n");
        let w = ops.keys().map(|k| k.len()).max().unwrap_or(0).max(4);
        let _ = writeln!(
            out,
            "{:w$}  {:>9}  {:>10}  {:>10}  {:>9}  {:>8}  {:>9}",
            "op", "calls", "fwd", "bwd", "flops", "gflop/s", "alloc"
        );
        for (kind, r) in &ops {
            let gflops = if r.fwd_secs > 0.0 {
                r.flops as f64 / r.fwd_secs / 1e9
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:w$}  {:>9}  {:>9.4}s  {:>9.4}s  {:>9}  {:>8.2}  {:>8}B",
                kind,
                r.calls,
                r.fwd_secs,
                r.bwd_secs,
                human_count(r.flops),
                gflops,
                human_count(r.alloc_bytes)
            );
        }
    }
    for (name, v) in &snap.gauges {
        if name == "tensor.mem.peak_bytes" && *v > 0.0 {
            let _ = writeln!(
                out,
                "-- tensor memory --\npeak {:>10}B  live {:>10}B",
                human_count(*v as u64),
                human_count(
                    snap.gauges
                        .iter()
                        .find(|(n, _)| n == "tensor.mem.live_bytes")
                        .map(|&(_, v)| v as u64)
                        .unwrap_or(0)
                )
            );
        }
    }

    let counters: Vec<_> = snap.counters.iter().filter(|&&(_, v)| v > 0).collect();
    if !counters.is_empty() {
        out.push_str("-- counters --\n");
        let w = counters.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (name, v) in &counters {
            let _ = writeln!(out, "{:w$}  {:>14}  ({})", name, v, human_count(*v));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("-- gauges --\n");
        let w = snap.gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{:w$}  {:.6}", name, v);
        }
    }
    let hists: Vec<_> = snap.histograms.iter().filter(|h| h.count > 0).collect();
    if !hists.is_empty() {
        out.push_str("-- histograms --\n");
        let w = hists.iter().map(|h| h.name.len()).max().unwrap_or(0);
        for h in &hists {
            let _ = writeln!(
                out,
                "{:w$}  n {:>8}  mean {:>10.4}  p50 {:>10.4}  p90 {:>10.4}  p99 {:>10.4}",
                h.name, h.count, h.mean, h.p50, h.p90, h.p99
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter, histogram_with};
    use crate::span::span;

    #[test]
    fn report_includes_phases_counters_histograms() {
        let _g = crate::testutil::global_lock();
        {
            let _s = span("test_report_phase");
        }
        counter("test.report.counter").add(1_500_000);
        histogram_with("test.report.hist", &[1.0, 10.0]).observe(0.5);
        let r = profile_report();
        assert!(r.starts_with("=== profile ==="));
        assert!(r.contains("test_report_phase"));
        assert!(r.contains("test.report.counter"));
        assert!(r.contains("(1.50M)"));
        assert!(r.contains("test.report.hist"));
    }

    #[test]
    fn report_renders_tensor_op_table() {
        let _g = crate::testutil::global_lock();
        let h = histogram_with("op.test_report_mm.secs", &[1e-6, 1e-3, 1.0]);
        h.observe(0.5);
        h.observe(0.5);
        counter("op.test_report_mm.flops").add(2_000_000_000);
        counter("op.test_report_mm.alloc_bytes").add(4096);
        crate::metrics::gauge("tensor.mem.peak_bytes").set(8192.0);
        let r = profile_report();
        assert!(r.contains("-- tensor ops --"));
        assert!(r.contains("test_report_mm"));
        assert!(r.contains("2.00G"), "flops rendered human-readable: {r}");
        assert!(r.contains("4.10k"), "alloc bytes rendered: {r}");
        assert!(r.contains("-- tensor memory --"));
        crate::metrics::gauge("tensor.mem.peak_bytes").set(0.0);
    }

    #[test]
    fn human_count_scales() {
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(1_500), "1.50k");
        assert_eq!(human_count(2_000_000), "2.00M");
        assert_eq!(human_count(3_000_000_000), "3.00G");
        assert_eq!(human_count(4_500_000_000_000), "4.50T");
    }
}
