//! Shared per-epoch training reporting, used by both the baseline
//! `sgd_fit` driver and `Rckt::fit` so the two loops emit identical
//! telemetry.

use crate::event::event;
use crate::level::{enabled, Level};

/// One epoch's training summary.
#[derive(Clone, Copy, Debug)]
pub struct EpochReport<'a> {
    /// Model tag used in log lines (e.g. `"rckt"`, `"dkt"`).
    pub model: &'a str,
    /// 0-based epoch index.
    pub epoch: usize,
    pub mean_loss: f32,
    pub val_auc: f64,
    pub val_acc: f64,
    /// Wall-clock seconds spent in this epoch (train + validate).
    pub wall_secs: f64,
}

/// Emit the per-epoch record: a `train.epoch` event at [`Level::Debug`],
/// falling back to the legacy one-line stderr format when `verbose` is set
/// but debug events are filtered out — so `--verbose` keeps working without
/// any observability flags.
pub fn report_epoch(r: &EpochReport<'_>, verbose: bool) {
    if enabled(Level::Debug) {
        event(
            Level::Debug,
            "train.epoch",
            &[
                ("model", r.model.into()),
                ("epoch", r.epoch.into()),
                ("loss", r.mean_loss.into()),
                ("val_auc", r.val_auc.into()),
                ("val_acc", r.val_acc.into()),
                ("secs", r.wall_secs.into()),
            ],
        );
    } else if verbose {
        eprintln!(
            "[{}] epoch {:>3} loss {:.4} val auc {:.4} acc {:.4} ({:.1}s)",
            r.model, r.epoch, r.mean_loss, r.val_auc, r.val_acc, r.wall_secs
        );
    }
}

/// Emit the `train.start` event ([`Level::Info`]).
pub fn report_start(model: &str, n_train: usize, n_val: usize, max_epochs: usize) {
    event(
        Level::Info,
        "train.start",
        &[
            ("model", model.into()),
            ("train_seqs", n_train.into()),
            ("val_seqs", n_val.into()),
            ("max_epochs", max_epochs.into()),
        ],
    );
}

/// Emit the `train.done` event ([`Level::Info`]).
pub fn report_done(
    model: &str,
    epochs_run: usize,
    best_epoch: usize,
    best_val_auc: f64,
    secs: f64,
) {
    event(
        Level::Info,
        "train.done",
        &[
            ("model", model.into()),
            ("epochs_run", epochs_run.into()),
            ("best_epoch", best_epoch.into()),
            ("best_val_auc", best_val_auc.into()),
            ("secs", secs.into()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_level, Level};
    use crate::testutil;

    #[test]
    fn report_epoch_emits_debug_event_to_json() {
        let _g = testutil::global_lock();
        let before = crate::level::level();
        let path = std::env::temp_dir().join("rckt_obs_train_test.jsonl");
        let path = path.to_str().unwrap().to_string();
        set_level(Level::Debug);
        crate::event::set_stderr_sink(false);
        crate::event::log_to_json(&path).unwrap();
        report_epoch(
            &EpochReport {
                model: "rckt",
                epoch: 3,
                mean_loss: 0.25,
                val_auc: 0.81,
                val_acc: 0.74,
                wall_secs: 1.5,
            },
            false,
        );
        report_start("rckt", 100, 20, 50);
        report_done("rckt", 12, 9, 0.82, 18.0);
        crate::event::close_json();
        crate::event::set_stderr_sink(true);
        set_level(before);

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"event\":\"train.epoch\""));
        assert!(text.contains("\"val_auc\":0.81"));
        assert!(text.contains("\"event\":\"train.start\""));
        assert!(text.contains("\"event\":\"train.done\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_epoch_silent_when_off_and_not_verbose() {
        let _g = testutil::global_lock();
        let before = crate::level::level();
        set_level(Level::Off);
        // Must not panic; verbose=false means no legacy line either.
        report_epoch(
            &EpochReport {
                model: "m",
                epoch: 0,
                mean_loss: 0.0,
                val_auc: 0.5,
                val_acc: 0.5,
                wall_secs: 0.0,
            },
            false,
        );
        set_level(before);
    }
}
