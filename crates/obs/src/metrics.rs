//! Concurrent metrics registry: named counters, gauges, and fixed-bucket
//! histograms. Handles are cheap `Arc` clones of the registered metric, so
//! hot paths can cache one in a `OnceLock` and skip the registry lookup.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing event tally.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Strictly increasing upper bounds; an implicit `+inf` bucket follows.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; `buckets[i]` counts `v <= bounds[i]`
    /// (with `v > bounds[i-1]`), the last bucket counts the overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum as `f64` bits, updated by CAS.
    sum_bits: AtomicU64,
    /// Largest finite value observed so far as `f64` bits (CAS-max);
    /// `f64::NEG_INFINITY` bits while empty. Lets quantile queries that
    /// land in the overflow bucket report a finite estimate instead of
    /// `+inf` (which the JSON sink would silently turn into `null`).
    max_bits: AtomicU64,
}

/// Fixed-bucket histogram with quantile queries.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

/// Default bucket ladder: a 1–2.5–5 progression from 1e-6 to 1e4 — wide
/// enough for both sub-millisecond timings (seconds) and batch-scale
/// counts.
pub fn default_bounds() -> Vec<f64> {
    let mut out = Vec::new();
    let mut decade = 1e-6;
    while decade < 1e5 {
        for m in [1.0, 2.5, 5.0] {
            out.push(decade * m);
        }
        decade *= 10.0;
    }
    out
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }

    pub fn observe(&self, v: f64) {
        let i = self.0.bounds.partition_point(|&b| v > b);
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if v.is_finite() {
            let mut cur = self.0.max_bits.load(Ordering::Relaxed);
            while v > f64::from_bits(cur) {
                match self.0.max_bits.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Largest finite value observed since creation/reset, if any.
    pub fn max_observed(&self) -> Option<f64> {
        let m = f64::from_bits(self.0.max_bits.load(Ordering::Relaxed));
        (m > f64::NEG_INFINITY).then_some(m)
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// The q-quantile (`0 < q <= 1`) as the upper bound of the bucket
    /// containing it — the standard fixed-bucket estimate. Returns 0 for an
    /// empty histogram. A quantile landing in the overflow bucket is
    /// clamped to the largest value observed (falling back to the largest
    /// finite bucket bound) so the estimate stays finite: downstream JSON
    /// sinks encode non-finite floats as `null`, which used to silently
    /// wipe p99 from events, manifests, and `/runs` whenever a single
    /// sample exceeded the bucket ladder.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return match self.0.bounds.get(i) {
                    Some(&bound) => bound,
                    None => self.overflow_estimate(),
                };
            }
        }
        self.overflow_estimate()
    }

    /// Finite stand-in for "above every bucket bound": the max observed
    /// value when one is known, else the largest finite bound.
    fn overflow_estimate(&self) -> f64 {
        let top = *self.0.bounds.last().expect("histogram has bounds");
        match self.max_observed() {
            Some(m) => m.max(top),
            None => top,
        }
    }

    /// `(upper_bound, count)` per bucket; the overflow bucket reports
    /// `+inf` as its bound.
    pub fn bucket_counts(&self) -> Vec<(f64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    self.0.bounds.get(i).copied().unwrap_or(f64::INFINITY),
                    b.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.0
            .max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

static COUNTERS: Mutex<BTreeMap<String, Counter>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, Gauge>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<String, Histogram>> = Mutex::new(BTreeMap::new());

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Get or register the counter `name`.
pub fn counter(name: &str) -> Counter {
    lock(&COUNTERS).entry(name.to_string()).or_default().clone()
}

/// Get or register the gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    lock(&GAUGES).entry(name.to_string()).or_default().clone()
}

/// Get or register the histogram `name` with [`default_bounds`].
pub fn histogram(name: &str) -> Histogram {
    histogram_with(name, &default_bounds())
}

/// Get or register the histogram `name` with explicit bucket upper bounds
/// (strictly increasing). Bounds of an already-registered histogram win.
pub fn histogram_with(name: &str, bounds: &[f64]) -> Histogram {
    lock(&HISTOGRAMS)
        .entry(name.to_string())
        .or_insert_with(|| Histogram::new(bounds))
        .clone()
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    /// `(upper_bound, count)` per bucket, overflow bound `+inf` — the raw
    /// (non-cumulative) counts from [`Histogram::bucket_counts`].
    pub buckets: Vec<(f64, u64)>,
}

/// Point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSummary>,
}

impl MetricsSnapshot {
    /// The snapshot as one JSON object — the `metrics` section of a
    /// postmortem bundle. Counters and gauges become name→value maps;
    /// histograms keep their quantile summary and raw bucket counts.
    pub fn to_json(&self) -> String {
        let mut counters = crate::json::Obj::new();
        for (name, v) in &self.counters {
            counters.u64(name, *v);
        }
        let mut gauges = crate::json::Obj::new();
        for (name, v) in &self.gauges {
            gauges.f64(name, *v);
        }
        let histograms = crate::json::array(self.histograms.iter().map(|h| {
            let buckets = crate::json::array(
                h.buckets
                    .iter()
                    .map(|(bound, count)| format!("[{},{}]", crate::json::number(*bound), count)),
            );
            let mut o = crate::json::Obj::new();
            o.str("name", &h.name)
                .u64("count", h.count)
                .f64("sum", h.sum)
                .f64("mean", h.mean)
                .f64("p50", h.p50)
                .f64("p90", h.p90)
                .f64("p99", h.p99)
                .raw("buckets", &buckets);
            o.finish()
        }));
        let mut out = crate::json::Obj::new();
        out.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &histograms);
        out.finish()
    }
}

pub fn metrics_snapshot() -> MetricsSnapshot {
    let counters = lock(&COUNTERS)
        .iter()
        .map(|(k, c)| (k.clone(), c.get()))
        .collect();
    let gauges = lock(&GAUGES)
        .iter()
        .map(|(k, g)| (k.clone(), g.get()))
        .collect();
    let histograms = lock(&HISTOGRAMS)
        .iter()
        .map(|(k, h)| HistogramSummary {
            name: k.clone(),
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            buckets: h.bucket_counts(),
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zero every registered metric **in place** — existing handles stay valid
/// and keep pointing at the same metric.
pub fn reset_metrics() {
    for c in lock(&COUNTERS).values() {
        c.reset();
    }
    for g in lock(&GAUGES).values() {
        g.reset();
    }
    for h in lock(&HISTOGRAMS).values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_handles_alias() {
        let a = counter("test.metrics.counter_alias");
        let b = counter("test.metrics.counter_alias");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = gauge("test.metrics.gauge");
        g.set(1.5);
        g.set(-2.0);
        assert_eq!(gauge("test.metrics.gauge").get(), -2.0);
    }

    #[test]
    fn histogram_bucketing_boundaries() {
        let h = histogram_with("test.metrics.hist_edges", &[1.0, 2.0, 4.0]);
        // v <= bound goes into that bucket; above every bound → overflow.
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0] {
            h.observe(v);
        }
        let counts: Vec<u64> = h.bucket_counts().iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
        assert!((h.sum() - 21.0).abs() < 1e-12);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let h = histogram_with("test.metrics.hist_quant", &[1.0, 2.0, 4.0, 8.0]);
        // 90 observations <= 1, 9 in (1,2], 1 in (4,8]
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..9 {
            h.observe(1.5);
        }
        h.observe(5.0);
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.9), 1.0);
        assert_eq!(h.quantile(0.95), 2.0);
        assert_eq!(h.quantile(1.0), 8.0);
        // overflow bucket clamps to the max observed value
        let h2 = histogram_with("test.metrics.hist_over", &[1.0]);
        h2.observe(5.0);
        assert_eq!(h2.quantile(0.5), 5.0);
        // empty histogram → 0
        let h3 = histogram_with("test.metrics.hist_empty", &[1.0]);
        assert_eq!(h3.quantile(0.99), 0.0);
    }

    #[test]
    fn overflow_quantile_stays_finite_and_json_numeric() {
        // Regression: a sample above every bucket bound used to make the
        // quantile +inf, which the JSON sink encodes as null — p99 then
        // silently vanished from events, manifests, and /runs.
        let h = histogram_with("test.metrics.hist_overfix", &[1e-3, 1.0]);
        h.observe(0.5);
        h.observe(120.0);
        h.observe(450.0);
        assert_eq!(h.quantile(0.99), 450.0);
        assert_eq!(h.max_observed(), Some(450.0));
        assert_ne!(crate::json::number(h.quantile(0.99)), "null");
        let s = metrics_snapshot();
        let hs = s
            .histograms
            .iter()
            .find(|x| x.name == "test.metrics.hist_overfix")
            .unwrap();
        assert!(hs.p50.is_finite() && hs.p90.is_finite() && hs.p99.is_finite());

        // A non-finite observation never poisons the max estimate.
        let h2 = histogram_with("test.metrics.hist_overinf", &[1.0]);
        h2.observe(f64::INFINITY);
        assert_eq!(h2.quantile(0.99), 1.0, "falls back to the largest bound");

        // reset() also clears the tracked max.
        h.reset();
        assert_eq!(h.max_observed(), None);
        h.observe(2.0);
        assert_eq!(h.quantile(0.99), 2.0);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile is 0, including the degenerate q values.
        let h = histogram_with("test.metrics.edge_empty", &[1.0, 2.0]);
        for q in [0.0, 0.5, 1.0, -3.0, 7.0] {
            assert_eq!(h.quantile(q), 0.0);
        }

        // Single sample: every quantile lands in that sample's bucket.
        let h = histogram_with("test.metrics.edge_single", &[1.0, 2.0, 4.0]);
        h.observe(1.5);
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 2.0);
        }
        // q is clamped, so out-of-range requests behave like 0 and 1.
        assert_eq!(h.quantile(-1.0), 2.0);
        assert_eq!(h.quantile(2.0), 2.0);

        // All-equal samples: the distribution is a point mass; every
        // quantile reports the one occupied bucket's upper bound.
        let h = histogram_with("test.metrics.edge_equal", &[1.0, 2.0, 4.0]);
        for _ in 0..1000 {
            h.observe(3.0);
        }
        for q in [0.001, 0.25, 0.5, 0.75, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 4.0);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 3.0).abs() < 1e-9);

        // Sample exactly on a bucket bound belongs to that bucket.
        let h = histogram_with("test.metrics.edge_bound", &[1.0, 2.0]);
        h.observe(1.0);
        assert_eq!(h.quantile(0.5), 1.0);
    }

    #[test]
    fn snapshot_summary_carries_sum_and_buckets() {
        let h = histogram_with("test.metrics.snap_detail", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        let s = metrics_snapshot();
        let hs = s
            .histograms
            .iter()
            .find(|h| h.name == "test.metrics.snap_detail")
            .unwrap();
        assert_eq!(hs.count, 3);
        assert!((hs.sum - 11.0).abs() < 1e-12);
        let counts: Vec<u64> = hs.buckets.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![1, 1, 1]);
        assert!(hs.buckets.last().unwrap().0.is_infinite());
    }

    #[test]
    fn default_bounds_are_strictly_increasing() {
        let b = default_bounds();
        assert!(b.len() > 20);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b[0] <= 1e-6 * 1.0001 && *b.last().unwrap() >= 1e4);
    }

    #[test]
    fn reset_zeroes_in_place_keeping_handles() {
        let c = counter("test.metrics.reset_keep");
        let h = histogram_with("test.metrics.reset_hist", &[1.0]);
        c.add(7);
        h.observe(0.5);
        reset_metrics();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.add(2);
        assert_eq!(
            counter("test.metrics.reset_keep").get(),
            2,
            "handle still registered"
        );
    }

    #[test]
    fn snapshot_contains_registered_metrics() {
        counter("test.metrics.snap_c").add(5);
        gauge("test.metrics.snap_g").set(2.5);
        histogram_with("test.metrics.snap_h", &[1.0, 10.0]).observe(0.5);
        let s = metrics_snapshot();
        assert!(s
            .counters
            .iter()
            .any(|(k, v)| k == "test.metrics.snap_c" && *v >= 5));
        assert!(s
            .gauges
            .iter()
            .any(|(k, v)| k == "test.metrics.snap_g" && *v == 2.5));
        let h = s
            .histograms
            .iter()
            .find(|h| h.name == "test.metrics.snap_h")
            .unwrap();
        assert!(h.count >= 1);
        assert_eq!(h.p50, 1.0);
    }

    #[test]
    fn concurrent_counter_updates_preserve_total() {
        let c = counter("test.metrics.concurrent");
        c.reset();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn concurrent_histogram_preserves_count_and_sum() {
        let h = histogram_with("test.metrics.concurrent_hist", &[0.5, 1.0]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..5_000 {
                        h.observe(0.25);
                    }
                });
            }
        });
        assert_eq!(h.count(), 20_000);
        assert!((h.sum() - 5_000.0).abs() < 1e-6);
    }
}
