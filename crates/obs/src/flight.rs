//! Flight recorder: a fixed-budget in-memory ring of the most recent
//! structured events and per-request records, so a crash or an SLO
//! breach can be reconstructed after the fact from a self-contained
//! postmortem bundle instead of whatever happened to reach stderr.
//!
//! Two rings live behind one mutex-protected recorder:
//!
//! * the **event ring** is fed by the global event sink ([`tap_event`]
//!   is called from [`crate::event::event`] for every admitted event,
//!   except `serve.access`, whose structured twin lands in the request
//!   ring instead);
//! * the **request ring** is fed explicitly by the serving layer with
//!   one [`RequestRecord`] per HTTP request (id, endpoint, student,
//!   queue/infer micros, batch size, status, warm-path classification).
//!
//! Entries are stored pre-encoded as JSON object strings, so the byte
//! budget is exact (the sum of stored string lengths never exceeds the
//! configured budget — a property the tests assert after every push)
//! and a snapshot is a cheap join. Eviction is strictly FIFO; an entry
//! larger than the whole budget is dropped and counted, never stored.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::event::Value;
use crate::json::{self, Obj};
use crate::level::Level;

/// Byte budgets for the two rings. The defaults keep a busy server's
/// last few thousand requests (~100 B each encoded) resident for well
/// under a megabyte of heap.
#[derive(Clone, Copy, Debug)]
pub struct FlightConfig {
    /// Budget for the structured-event ring, in encoded bytes.
    pub event_bytes: usize,
    /// Budget for the per-request ring, in encoded bytes.
    pub request_bytes: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            event_bytes: 128 * 1024,
            request_bytes: 256 * 1024,
        }
    }
}

/// One served HTTP request, as remembered by the flight ring.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Unix timestamp (seconds) when the response was written.
    pub ts: f64,
    /// The response's `X-Request-Id`.
    pub request_id: String,
    pub method: String,
    /// Endpoint path (`/predict`, `/explain`, …).
    pub path: String,
    /// Students named in the body (comma-joined), when the handler got
    /// far enough to parse one; empty otherwise.
    pub students: String,
    pub queue_micros: u64,
    pub infer_micros: u64,
    pub total_micros: u64,
    pub batch_size: u64,
    /// HTTP status code (200, 400, 503, 504, …).
    pub status: u64,
    /// Warm-path classification: `append`, `replay`, `cold_build`,
    /// `diverged_rebuild`, `cache` (session-cache hit), or `-` when the
    /// request never reached the model (errors, non-inference paths).
    pub warm: String,
    /// Batcher shard that answered the request (`"0"`, `"1"`, …), or `-`
    /// when it never reached a shard (errors, non-inference paths).
    pub shard: String,
}

impl RequestRecord {
    fn encode(&self) -> String {
        // Fixed shape: 12 keys + scalar values fit comfortably in 256
        // bytes, so the hot path is one allocation.
        let mut o = Obj::with_capacity(256);
        o.f64("ts", self.ts)
            .str("request_id", &self.request_id)
            .str("method", &self.method)
            .str("path", &self.path)
            .str("students", &self.students)
            .u64("queue_micros", self.queue_micros)
            .u64("infer_micros", self.infer_micros)
            .u64("total_micros", self.total_micros)
            .u64("batch", self.batch_size)
            .u64("status", self.status)
            .str("warm", &self.warm)
            .str("shard", &self.shard);
        o.finish()
    }
}

/// One FIFO ring of pre-encoded JSON entries under an exact byte budget.
struct Ring {
    budget: usize,
    bytes: usize,
    items: VecDeque<String>,
    evicted: u64,
}

impl Ring {
    fn new(budget: usize) -> Ring {
        Ring {
            budget,
            bytes: 0,
            items: VecDeque::new(),
            evicted: 0,
        }
    }

    fn push(&mut self, entry: String) {
        if entry.len() > self.budget {
            // Larger than the whole ring: count it as evicted-on-arrival
            // rather than blowing the budget for one entry.
            self.evicted += 1;
            return;
        }
        self.bytes += entry.len();
        self.items.push_back(entry);
        while self.bytes > self.budget {
            if let Some(front) = self.items.pop_front() {
                self.bytes -= front.len();
                self.evicted += 1;
            } else {
                break;
            }
        }
    }

    fn snapshot_array(&self) -> String {
        json::array(self.items.iter().cloned())
    }
}

struct Inner {
    events: Ring,
    requests: Ring,
}

/// The mutex-protected pair of rings. Shared as `Arc<FlightRecorder>`
/// between the serving layer, the global event tap, and the postmortem
/// writer.
pub struct FlightRecorder {
    cfg: FlightConfig,
    inner: Mutex<Inner>,
}

/// Live occupancy of one ring: `(entries, bytes_used, evicted)`.
pub type RingUsage = (usize, usize, u64);

impl FlightRecorder {
    pub fn new(cfg: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            cfg,
            inner: Mutex::new(Inner {
                events: Ring::new(cfg.event_bytes),
                requests: Ring::new(cfg.request_bytes),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record one structured event (already admitted by the level
    /// filter). Fields are encoded exactly as the JSON-lines sink
    /// encodes them.
    pub fn record_event(&self, level: Level, name: &str, fields: &[(&str, Value)]) {
        let mut f = Obj::new();
        for (k, v) in fields {
            f.raw(k, &v.to_json());
        }
        let mut o = Obj::new();
        o.f64("ts", unix_ts())
            .str("level", level.as_str())
            .str("event", name)
            .raw("fields", &f.finish());
        self.lock().events.push(o.finish());
    }

    /// Record one served request.
    pub fn record_request(&self, rec: &RequestRecord) {
        let line = rec.encode();
        self.lock().requests.push(line);
    }

    pub fn event_usage(&self) -> RingUsage {
        let g = self.lock();
        (g.events.items.len(), g.events.bytes, g.events.evicted)
    }

    pub fn request_usage(&self) -> RingUsage {
        let g = self.lock();
        (g.requests.items.len(), g.requests.bytes, g.requests.evicted)
    }

    /// The whole recorder as one JSON object — the `flight` section of a
    /// postmortem bundle, and the body of `GET /debug/flight`.
    pub fn snapshot_json(&self) -> String {
        let g = self.lock();
        let mut o = Obj::new();
        o.u64("event_budget_bytes", self.cfg.event_bytes as u64)
            .u64("request_budget_bytes", self.cfg.request_bytes as u64)
            .u64("event_bytes", g.events.bytes as u64)
            .u64("request_bytes", g.requests.bytes as u64)
            .u64("evicted_events", g.events.evicted)
            .u64("evicted_requests", g.requests.evicted)
            .raw("events", &g.events.snapshot_array())
            .raw("requests", &g.requests.snapshot_array());
        o.finish()
    }
}

fn unix_ts() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Process-global recorder installed as the event tap. `ACTIVE` keeps
/// the per-event check to one relaxed atomic load when no recorder is
/// installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Arc<FlightRecorder>>> = Mutex::new(None);

fn global_slot() -> std::sync::MutexGuard<'static, Option<Arc<FlightRecorder>>> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Install `rec` as the process-global recorder fed by the event sink.
/// A later install replaces an earlier one (last server wins, as with
/// the panic-hook context).
pub fn install(rec: Arc<FlightRecorder>) {
    *global_slot() = Some(rec);
    ACTIVE.store(true, Ordering::Release);
}

/// Remove the global recorder if it is `rec` (so a stopping server does
/// not tear down a newer server's recorder).
pub fn uninstall(rec: &Arc<FlightRecorder>) {
    let mut g = global_slot();
    if g.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, rec)) {
        *g = None;
        ACTIVE.store(false, Ordering::Release);
    }
}

/// The currently installed global recorder, if any.
pub fn global() -> Option<Arc<FlightRecorder>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    global_slot().clone()
}

/// Event-sink hook, called by [`crate::event::event`] for every admitted
/// event. `serve.access` is skipped: its structured twin is recorded in
/// the request ring by the serving layer, and storing both would spend
/// the event budget on duplicates.
pub fn tap_event(level: Level, name: &str, fields: &[(&str, Value)]) {
    if !ACTIVE.load(Ordering::Relaxed) || name == "serve.access" {
        return;
    }
    if let Some(rec) = global() {
        rec.record_event(level, name, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    fn record(n: u64) -> RequestRecord {
        RequestRecord {
            ts: 1000.0 + n as f64,
            request_id: format!("req-{n}"),
            method: "POST".to_string(),
            path: "/predict".to_string(),
            students: n.to_string(),
            queue_micros: 10,
            infer_micros: 200,
            total_micros: 250,
            batch_size: 1,
            status: 200,
            warm: "append".to_string(),
            shard: "0".to_string(),
        }
    }

    #[test]
    fn bounded_memory_never_exceeds_byte_budget() {
        let rec = FlightRecorder::new(FlightConfig {
            event_bytes: 512,
            request_bytes: 2048,
        });
        for n in 0..500 {
            rec.record_request(&record(n));
            rec.record_event(
                Level::Info,
                "unit.flight",
                &[
                    ("n", n.into()),
                    ("pad", "x".repeat((n % 40) as usize).into()),
                ],
            );
            let (_, ebytes, _) = rec.event_usage();
            let (_, rbytes, _) = rec.request_usage();
            assert!(ebytes <= 512, "event ring over budget: {ebytes}");
            assert!(rbytes <= 2048, "request ring over budget: {rbytes}");
        }
        let (kept, _, evicted) = rec.request_usage();
        assert_eq!(kept as u64 + evicted, 500, "every push kept or evicted");
        assert!(evicted > 0, "budget small enough to force eviction");
    }

    #[test]
    fn eviction_is_fifo_and_keeps_the_newest() {
        let rec = FlightRecorder::new(FlightConfig {
            event_bytes: 64,
            request_bytes: 600,
        });
        for n in 0..50 {
            rec.record_request(&record(n));
        }
        let snap = parse(&rec.snapshot_json()).unwrap();
        let reqs = snap.get("requests").unwrap().as_array().unwrap();
        assert!(!reqs.is_empty() && reqs.len() < 50);
        let ids: Vec<u64> = reqs
            .iter()
            .map(|r| {
                r.get("request_id")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .strip_prefix("req-")
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        // The survivors are exactly the newest pushes, still in order.
        let newest: Vec<u64> = (50 - ids.len() as u64..50).collect();
        assert_eq!(ids, newest, "FIFO eviction must keep the newest suffix");
    }

    #[test]
    fn oversized_entry_is_dropped_not_stored() {
        let rec = FlightRecorder::new(FlightConfig {
            event_bytes: 64,
            request_bytes: 80,
        });
        let mut big = record(0);
        big.students = "s".repeat(500);
        rec.record_request(&big);
        let (kept, bytes, evicted) = rec.request_usage();
        assert_eq!((kept, bytes, evicted), (0, 0, 1));
    }

    #[test]
    fn concurrent_writers_smoke_at_thread_widths() {
        let threads: usize = std::env::var("RCKT_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(4);
        let per_thread = 200u64;
        let rec = Arc::new(FlightRecorder::new(FlightConfig {
            event_bytes: 4096,
            request_bytes: 4096,
        }));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for n in 0..per_thread {
                        rec.record_request(&record(t as u64 * per_thread + n));
                        rec.record_event(Level::Debug, "unit.concurrent", &[("t", t.into())]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (kept, bytes, evicted) = rec.request_usage();
        assert!(bytes <= 4096);
        assert_eq!(kept as u64 + evicted, threads as u64 * per_thread);
        let snap = parse(&rec.snapshot_json()).unwrap();
        assert!(snap.get("requests").unwrap().as_array().unwrap().len() == kept);
    }

    #[test]
    fn snapshot_round_trips_through_the_strict_parser() {
        let rec = FlightRecorder::new(FlightConfig::default());
        rec.record_request(&record(7));
        rec.record_event(
            Level::Info,
            "unit.snap",
            &[("k", 1u64.into()), ("s", "a\"b".into())],
        );
        let text = rec.snapshot_json();
        let snap = parse(&text).unwrap();
        let req = &snap.get("requests").unwrap().as_array().unwrap()[0];
        assert_eq!(req.get("request_id").unwrap().as_str(), Some("req-7"));
        assert_eq!(req.get("status").unwrap().as_f64(), Some(200.0));
        assert_eq!(req.get("warm").unwrap().as_str(), Some("append"));
        assert_eq!(req.get("shard").unwrap().as_str(), Some("0"));
        let ev = &snap.get("events").unwrap().as_array().unwrap()[0];
        assert_eq!(ev.get("event").unwrap().as_str(), Some("unit.snap"));
        match ev.get("fields").unwrap().get("s") {
            Some(JsonValue::Str(s)) => assert_eq!(s, "a\"b"),
            other => panic!("fields.s: {other:?}"),
        }
    }

    #[test]
    fn global_tap_feeds_installed_recorder_and_skips_access_events() {
        let _g = crate::testutil::global_lock();
        let rec = Arc::new(FlightRecorder::new(FlightConfig::default()));
        install(Arc::clone(&rec));
        tap_event(Level::Info, "unit.tapped", &[("k", 1u64.into())]);
        tap_event(Level::Info, "serve.access", &[("k", 2u64.into())]);
        let (kept, _, _) = rec.event_usage();
        assert_eq!(kept, 1, "serve.access must be skipped");
        uninstall(&rec);
        assert!(global().is_none());
        tap_event(Level::Info, "unit.after", &[]);
        assert_eq!(rec.event_usage().0, 1, "uninstalled recorder gets nothing");
    }
}
