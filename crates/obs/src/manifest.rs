//! Run manifests: stamp every experiment result with the git commit, seed,
//! configuration, per-phase timings, and profiling counters, and write it
//! as JSON so `results/BENCH_*.json` accumulates a comparable history.

use std::io::Write;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{array, Obj};
use crate::metrics::metrics_snapshot;
use crate::span::PhasesSnapshot;

/// One span path's contribution to a run.
#[derive(Clone, Debug)]
pub struct PhaseTiming {
    pub name: String,
    pub secs: f64,
    pub count: u64,
}

/// Provenance + measurements for one experiment run.
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// Binary or experiment name (`table6_efficiency`, `cli train`, …).
    pub bin: String,
    /// Current git commit hash, or `"unknown"` outside a checkout.
    pub git_commit: String,
    /// Unix timestamp (seconds) when the manifest was captured.
    pub unix_ts: u64,
    pub seed: u64,
    /// Ordered `(key, value)` configuration pairs.
    pub config: Vec<(String, String)>,
    /// Per-phase wall-clock timings for this run.
    pub phases: Vec<PhaseTiming>,
    /// Profiling counters at capture time (kernel FLOPs, CF tallies, …).
    pub counters: Vec<(String, u64)>,
    /// Named scalar results (AUC, ACC, seconds, …).
    pub results: Vec<(String, f64)>,
}

impl RunManifest {
    /// Capture provenance plus, when `since` is given, the growth of the
    /// phase table since that snapshot (so concurrent or earlier runs do
    /// not leak into this manifest).
    pub fn capture(bin: &str, seed: u64, since: Option<&PhasesSnapshot>) -> RunManifest {
        let phases = match since {
            Some(s) => s.delta(),
            None => crate::span::phase_timings(),
        };
        let counters = metrics_snapshot()
            .counters
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .collect();
        RunManifest {
            bin: bin.to_string(),
            git_commit: git_commit(),
            unix_ts: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            seed,
            config: Vec::new(),
            phases: phases
                .into_iter()
                .map(|(name, s)| PhaseTiming {
                    name,
                    secs: s.secs,
                    count: s.count,
                })
                .collect(),
            counters,
            results: Vec::new(),
        }
    }

    /// Append a configuration pair (builder style).
    pub fn config(mut self, key: &str, value: impl ToString) -> Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Append a named scalar result (builder style).
    pub fn result(mut self, key: &str, value: f64) -> Self {
        self.results.push((key.to_string(), value));
        self
    }

    /// Encode as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut config = Obj::new();
        for (k, v) in &self.config {
            config.str(k, v);
        }
        let mut results = Obj::new();
        for (k, v) in &self.results {
            results.f64(k, *v);
        }
        let mut counters = Obj::new();
        for (k, v) in &self.counters {
            counters.u64(k, *v);
        }
        let phases = array(self.phases.iter().map(|p| {
            let mut o = Obj::new();
            o.str("name", &p.name)
                .f64("secs", p.secs)
                .u64("count", p.count);
            o.finish()
        }));
        let mut o = Obj::new();
        o.str("bin", &self.bin)
            .str("git_commit", &self.git_commit)
            .u64("unix_ts", self.unix_ts)
            .u64("seed", self.seed)
            .raw("config", &config.finish())
            .raw("phases", &phases)
            .raw("counters", &counters.finish())
            .raw("results", &results.finish());
        o.finish()
    }

    /// Make this manifest visible at the live `/runs` telemetry endpoint
    /// (see [`crate::serve`]). Cheap; harmless when no server is running.
    pub fn publish(&self) {
        crate::serve::publish_manifest(&self.to_json());
    }

    /// Write the manifest as a standalone pretty-enough JSON file (also
    /// published to the live `/runs` endpoint).
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        self.publish();
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Append the manifest as one line to a JSON-lines history file,
    /// creating parent directories as needed (also published to the live
    /// `/runs` endpoint).
    pub fn append_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        self.publish();
        writeln!(f, "{}", self.to_json())
    }
}

/// The current git commit hash, read directly from `.git` (no subprocess):
/// follows `HEAD` to a ref under `refs/` or into `packed-refs`, walking up
/// from the current directory to find the repository root. Returns
/// `"unknown"` when not in a git checkout.
pub fn git_commit() -> String {
    let mut dir = match std::env::current_dir() {
        Ok(d) => d,
        Err(_) => return "unknown".to_string(),
    };
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return read_commit(&git).unwrap_or_else(|| "unknown".to_string());
        }
        if !dir.pop() {
            return "unknown".to_string();
        }
    }
}

fn read_commit(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the file holds the hash itself.
        return Some(head.to_string());
    };
    if let Ok(h) = std::fs::read_to_string(git.join(refname)) {
        return Some(h.trim().to_string());
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if let Some((hash, name)) = line.split_once(' ') {
            if name.trim() == refname {
                return Some(hash.trim().to_string());
            }
        }
    }
    None
}

/// The invoking binary's basename (from `argv[0]`), for manifest `bin`
/// fields without each binary hard-coding its own name.
pub fn bin_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .map(Path::new)
        .and_then(|p| p.file_name())
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_has_all_sections() {
        let m = RunManifest {
            bin: "test_bin".into(),
            git_commit: "abc123".into(),
            unix_ts: 1700000000,
            seed: 42,
            config: vec![("scale".into(), "0.5".into())],
            phases: vec![PhaseTiming {
                name: "fit".into(),
                secs: 1.25,
                count: 2,
            }],
            counters: vec![("kernel.matmul.flops".into(), 1000)],
            results: vec![("auc".into(), 0.81)],
        };
        let j = m.to_json();
        assert!(j.contains("\"bin\":\"test_bin\""));
        assert!(j.contains("\"git_commit\":\"abc123\""));
        assert!(j.contains("\"seed\":42"));
        assert!(j.contains("\"config\":{\"scale\":\"0.5\"}"));
        assert!(j.contains("\"phases\":[{\"name\":\"fit\",\"secs\":1.25,\"count\":2}]"));
        assert!(j.contains("\"counters\":{\"kernel.matmul.flops\":1000}"));
        assert!(j.contains("\"results\":{\"auc\":0.81}"));
    }

    #[test]
    fn capture_fills_provenance_and_delta_phases() {
        let _g = crate::testutil::global_lock();
        let snap = crate::span::phases_snapshot();
        {
            let _s = crate::span::span("test_manifest_phase");
        }
        let m = RunManifest::capture("caps", 7, Some(&snap))
            .config("k", "v")
            .result("auc", 0.9);
        assert_eq!(m.bin, "caps");
        assert_eq!(m.seed, 7);
        assert!(m.unix_ts > 1_600_000_000, "plausible wall clock");
        assert!(m.phases.iter().any(|p| p.name == "test_manifest_phase"));
        assert_eq!(m.config, vec![("k".to_string(), "v".to_string())]);
        assert_eq!(m.results, vec![("auc".to_string(), 0.9)]);
    }

    #[test]
    fn git_commit_resolves_in_this_repo() {
        // The test runs inside the repo checkout, so this must find a hash.
        let c = git_commit();
        assert!(c == "unknown" || c.len() >= 7, "got {c:?}");
    }

    #[test]
    fn append_jsonl_accumulates_lines() {
        let path = std::env::temp_dir().join("rckt_obs_manifest_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let m = RunManifest {
            bin: "b".into(),
            ..Default::default()
        };
        m.append_jsonl(&path).unwrap();
        m.append_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }
}
