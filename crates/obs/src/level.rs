//! Global verbosity level and the profiling switch.

use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Event verbosity. Ordered: `Off < Info < Debug < Trace`.
#[repr(u8)]
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Emit nothing (the library default).
    Off = 0,
    /// Coarse progress: run/fit start and end, dataset summaries.
    Info = 1,
    /// Per-epoch training detail.
    Debug = 2,
    /// Span-level timing events.
    Trace = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Info,
            2 => Level::Debug,
            3 => Level::Trace,
            _ => Level::Off,
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(Level::Off),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (off|info|debug|trace)"
            )),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Set the global level filter.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Current global level.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Would an event at `l` pass the filter? `enabled(Off)` is always false.
#[inline]
pub fn enabled(l: Level) -> bool {
    l != Level::Off && (l as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Enable/disable profiling counters (kernel FLOPs, counterfactual
/// mask/retain tallies). Independent of the event level so `--profile`
/// works without any logging.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Hot-path guard for profiling counters: one relaxed atomic load when
/// disabled, so instrumented kernels stay effectively zero-cost.
#[inline]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn parse_and_roundtrip() {
        for (s, l) in [
            ("off", Level::Off),
            ("info", Level::Info),
            ("DEBUG", Level::Debug),
            ("trace", Level::Trace),
        ] {
            assert_eq!(s.parse::<Level>().unwrap(), l);
        }
        assert!("verbose".parse::<Level>().is_err());
        assert_eq!(Level::Debug.as_str(), "debug");
    }

    #[test]
    fn enabled_respects_ordering() {
        let _g = testutil::global_lock();
        let before = level();
        set_level(Level::Debug);
        assert!(enabled(Level::Info));
        assert!(enabled(Level::Debug));
        assert!(!enabled(Level::Trace));
        assert!(!enabled(Level::Off), "Off never passes");
        set_level(Level::Off);
        assert!(!enabled(Level::Info));
        set_level(before);
    }

    #[test]
    fn profiling_toggle() {
        let _g = testutil::global_lock();
        let before = profiling();
        set_profiling(true);
        assert!(profiling());
        set_profiling(false);
        assert!(!profiling());
        set_profiling(before);
    }
}
