//! Chrome trace-event export: spans (and the tensor pool's parallel
//! regions) recorded as complete events and written as a JSON file that
//! `chrome://tracing` and Perfetto load directly.
//!
//! Armed by [`start_trace`]; while armed, every [`crate::span`] drop and
//! every pool region calls [`record_event`], which encodes one
//! `ph:"X"` event with microsecond timestamps relative to the arming
//! instant. Each OS thread gets a small stable tid plus a `thread_name`
//! metadata event, so pool workers render as separate lanes.
//! [`finish_trace`] writes the collected events and disarms.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Obj;

/// Hard cap on buffered events so a pathological run cannot exhaust
/// memory; overflow is counted and reported in the final file.
const MAX_EVENTS: usize = 1_000_000;

struct TraceState {
    path: String,
    epoch: Instant,
    /// Pre-encoded JSON event objects.
    events: Vec<String>,
    dropped: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<TraceState>> = Mutex::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Bumped on every [`start_trace`] so re-armed traces get fresh
/// `thread_name` metadata events.
static GENERATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    /// Generation this thread last emitted its `thread_name` event for.
    static NAMED_GEN: Cell<u64> = const { Cell::new(0) };
}

fn lock_state() -> std::sync::MutexGuard<'static, Option<TraceState>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether a trace is being collected — one relaxed load, so callers can
/// guard their `Instant::now()` bookkeeping on it.
pub fn trace_enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm trace collection; events recorded from now on are written to
/// `path` by [`finish_trace`]. Re-arming discards any pending events.
pub fn start_trace(path: &str) {
    let mut st = lock_state();
    *st = Some(TraceState {
        path: path.to_string(),
        epoch: Instant::now(),
        events: Vec::new(),
        dropped: 0,
    });
    GENERATION.fetch_add(1, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
}

fn this_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Record one complete (`ph:"X"`) event: `name` under category `cat`,
/// starting at `start` and lasting `dur_secs`. No-op unless armed.
pub fn record_event(name: &str, cat: &str, start: Instant, dur_secs: f64) {
    if !trace_enabled() {
        return;
    }
    let tid = this_tid();
    let generation = GENERATION.load(Ordering::Relaxed);
    let name_meta = NAMED_GEN.with(|n| {
        if n.get() == generation {
            None
        } else {
            n.set(generation);
            let tname = std::thread::current()
                .name()
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("thread-{tid}"));
            let mut o = Obj::new();
            o.str("ph", "M")
                .u64("pid", 1)
                .u64("tid", tid)
                .str("name", "thread_name")
                .raw("args", &{
                    let mut a = Obj::new();
                    a.str("name", &tname);
                    a.finish()
                });
            Some(o.finish())
        }
    });
    let mut st = lock_state();
    let Some(state) = st.as_mut() else {
        return;
    };
    // A start captured before arming clamps to the trace epoch.
    let ts_us = start
        .checked_duration_since(state.epoch)
        .map(|d| d.as_secs_f64() * 1e6)
        .unwrap_or(0.0);
    if let Some(meta) = name_meta {
        state.events.push(meta);
    }
    if state.events.len() >= MAX_EVENTS {
        state.dropped += 1;
        return;
    }
    let mut o = Obj::new();
    o.str("ph", "X")
        .u64("pid", 1)
        .u64("tid", tid)
        .str("name", name)
        .str("cat", cat)
        .f64("ts", ts_us)
        .f64("dur", (dur_secs * 1e6).max(0.0));
    state.events.push(o.finish());
}

/// Disarm and write the collected events as `{"traceEvents":[...]}` to
/// the path given to [`start_trace`]. Returns `Ok(None)` when no trace
/// was armed, else the path written.
pub fn finish_trace() -> std::io::Result<Option<String>> {
    ARMED.store(false, Ordering::Relaxed);
    let state = lock_state().take();
    let Some(state) = state else {
        return Ok(None);
    };
    if let Some(dir) = std::path::Path::new(&state.path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out =
        String::with_capacity(state.events.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in state.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push_str("]}");
    std::fs::write(&state.path, out)?;
    if state.dropped > 0 {
        eprintln!(
            "rckt-obs: trace buffer overflowed; dropped {} events (kept {})",
            state.dropped, MAX_EVENTS
        );
    }
    Ok(Some(state.path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disarmed_by_default_and_records_nothing() {
        let _g = crate::testutil::global_lock();
        let _ = finish_trace();
        assert!(!trace_enabled());
        record_event("noop", "span", Instant::now(), 0.001);
        assert!(finish_trace().unwrap().is_none());
    }

    #[test]
    fn events_and_thread_lanes_round_trip() {
        let _g = crate::testutil::global_lock();
        let path = std::env::temp_dir().join("rckt_obs_trace_test.json");
        let path = path.to_string_lossy().into_owned();
        start_trace(&path);
        assert!(trace_enabled());

        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        record_event("main.work", "span", t0, 0.001);
        std::thread::Builder::new()
            .name("rckt-pool-0".to_string())
            .spawn(|| {
                record_event("pool.run", "pool", Instant::now(), 0.0005);
            })
            .unwrap()
            .join()
            .unwrap();

        let written = finish_trace().unwrap().expect("trace was armed");
        assert_eq!(written, path);
        assert!(!trace_enabled());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        assert!(text.contains("\"name\":\"main.work\""));
        assert!(text.contains("\"name\":\"pool.run\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("rckt-pool-0"));
        assert!(text.contains("\"ph\":\"X\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn spans_feed_the_trace_when_armed() {
        let _g = crate::testutil::global_lock();
        let path = std::env::temp_dir().join("rckt_obs_trace_span_test.json");
        let path = path.to_string_lossy().into_owned();
        start_trace(&path);
        {
            let _s = crate::span::span("test_trace_span");
        }
        finish_trace().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\":\"test_trace_span\""));
        let _ = std::fs::remove_file(&path);
    }
}
