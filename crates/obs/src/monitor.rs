//! Streaming model-quality monitors for online serving.
//!
//! A [`QualityMonitor`] ingests a stream of [`QualityEvent`]s — one per
//! served prediction, labeled feedback item, or explanation — and
//! maintains sliding-window estimates of how healthy the model is in
//! production:
//!
//! * **rolling AUC / ECE** over the last `feedback_window` labeled
//!   (score, outcome) pairs delivered via `POST /feedback`;
//! * **score-distribution quantiles** (p50/p90/p99) via the P² streaming
//!   estimator of Jain & Chlamtác — O(1) memory, no sample buffer;
//! * **population-stability-index (PSI) drift** of the live score
//!   histogram against a training-time reference embedded in the model
//!   file (`SavedModel.score_reference`);
//! * **influence health** per `/explain`: the correct-vs-incorrect
//!   influence mass ratio (RCKT's ante-hoc interpretable signal), plus
//!   normalized entropy and sparsity of the |Δ| distribution.
//!
//! Everything is plain `std` and strictly deterministic in ingestion
//! order: replaying the same event stream through a fresh monitor
//! reproduces every gauge bit-for-bit, which is what lets
//! `rckt monitor --replay` diff byte-identically against live
//! `/metrics` output. Threshold crossings surface as [`Alert`]s so the
//! caller can emit structured log events.

use std::collections::VecDeque;

/// Number of equal-width score bins on `[0, 1]` used for both the PSI
/// live histogram and the training-time reference. Fixed so the model
/// file and the monitor always agree.
pub const SCORE_BINS: usize = 10;

/// Sliding-window sizes and alert thresholds.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Labeled (score, outcome) pairs kept for rolling AUC/ECE.
    pub feedback_window: usize,
    /// Per-explanation influence stats kept for rolling means.
    pub influence_window: usize,
    /// Minimum samples in a window before its alert can fire; stops a
    /// handful of early events from tripping thresholds.
    pub min_samples: usize,
    /// Alert when rolling AUC falls below this.
    pub auc_min: f64,
    /// Alert when rolling ECE rises above this.
    pub ece_max: f64,
    /// Alert when score-distribution PSI rises above this. 0.25 is the
    /// conventional "significant shift" threshold.
    pub psi_max: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            feedback_window: 1024,
            influence_window: 256,
            min_samples: 20,
            auc_min: 0.55,
            ece_max: 0.15,
            psi_max: 0.25,
        }
    }
}

/// One observed event in the quality stream. The CSV wire format (one
/// event per line, see [`QualityEvent::encode`]) is what the serve
/// quality log stores and `rckt monitor --replay` reads back.
#[derive(Clone, Debug, PartialEq)]
pub enum QualityEvent {
    /// A served prediction score (every `/predict` response item).
    Score(f64),
    /// Ground truth arrived for an earlier prediction (`POST /feedback`).
    Feedback { score: f64, label: bool },
    /// Influence-health stats distilled from one `/explain` record.
    Influence {
        /// Summed |Δ| mass of correct-response influences.
        correct_mass: f64,
        /// Summed |Δ| mass of incorrect-response influences.
        incorrect_mass: f64,
        /// Shannon entropy of the |Δ| distribution, normalized to [0,1].
        entropy: f64,
        /// Fraction of influences with |Δ| below 1% of the total mass.
        sparsity: f64,
    },
}

impl QualityEvent {
    /// One CSV line (no trailing newline). Floats use Rust's shortest
    /// round-trip formatting so decode → encode is the identity.
    pub fn encode(&self) -> String {
        match self {
            QualityEvent::Score(s) => format!("predict,{s}"),
            QualityEvent::Feedback { score, label } => {
                format!("feedback,{score},{}", u8::from(*label))
            }
            QualityEvent::Influence {
                correct_mass,
                incorrect_mass,
                entropy,
                sparsity,
            } => format!("explain,{correct_mass},{incorrect_mass},{entropy},{sparsity}"),
        }
    }

    /// Parse one CSV line; `None` for blanks, comments, the `reference`
    /// header, and anything malformed (a replay skips those).
    pub fn decode(line: &str) -> Option<QualityEvent> {
        let line = line.trim();
        let mut parts = line.split(',');
        match parts.next()? {
            "predict" => Some(QualityEvent::Score(parts.next()?.parse().ok()?)),
            "feedback" => {
                let score = parts.next()?.parse().ok()?;
                let label = match parts.next()? {
                    "1" => true,
                    "0" => false,
                    _ => return None,
                };
                Some(QualityEvent::Feedback { score, label })
            }
            "explain" => {
                let mut f = || parts.next()?.parse::<f64>().ok();
                Some(QualityEvent::Influence {
                    correct_mass: f()?,
                    incorrect_mass: f()?,
                    entropy: f()?,
                    sparsity: f()?,
                })
            }
            _ => None,
        }
    }
}

/// Encode a reference histogram as the quality log's header line.
pub fn encode_reference(counts: &[u64]) -> String {
    let mut out = String::from("reference");
    for c in counts {
        out.push(',');
        out.push_str(&c.to_string());
    }
    out
}

/// Parse a `reference,c0,...,c9` header line; `None` if it is not one.
pub fn decode_reference(line: &str) -> Option<Vec<u64>> {
    let rest = line.trim().strip_prefix("reference,")?;
    let counts: Option<Vec<u64>> = rest.split(',').map(|c| c.parse().ok()).collect();
    counts.filter(|c| c.len() == SCORE_BINS)
}

/// A threshold crossing: fired once when the metric first enters the bad
/// region, re-armed when it leaves.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// `auc_low`, `ece_high`, or `psi_high`.
    pub name: &'static str,
    pub value: f64,
    pub threshold: f64,
}

/// P² streaming quantile estimator (Jain & Chlamtác 1985): five markers
/// track the target quantile with O(1) memory and deterministic
/// arithmetic. Below five observations the exact sample quantile is
/// returned instead.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Actual marker positions (1-based observation counts).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Per-observation increments of the desired positions.
    dn: [f64; 5],
    count: usize,
    init: [f64; 5],
}

impl P2Quantile {
    pub fn new(p: f64) -> P2Quantile {
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: [0.0; 5],
        }
    }

    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.init[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                let mut s = self.init;
                s.sort_by(f64::total_cmp);
                self.q = s;
            }
            return;
        }
        self.count += 1;
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[0] <= x < q[4], so exactly one cell holds it.
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.q[i] && x < self.q[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < candidate && candidate < self.q[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate; NaN before the first observation.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.count < 5 {
            let mut s = self.init[..self.count].to_vec();
            s.sort_by(f64::total_cmp);
            let rank = (self.count as f64 * self.p).ceil() as usize;
            return s[rank.max(1).min(self.count) - 1];
        }
        self.q[2]
    }

    pub fn count(&self) -> usize {
        self.count
    }
}

/// The streaming quality monitor. See the module docs for what it
/// tracks; [`QualityMonitor::gauges`] is the single source of truth for
/// exported values, shared by the live `/metrics` path and the offline
/// replay report.
pub struct QualityMonitor {
    cfg: MonitorConfig,
    // Labeled feedback ring + cached rolling stats.
    feedback: VecDeque<(f64, bool)>,
    auc: f64,
    ece: f64,
    // Score distribution.
    score_count: u64,
    score_bins: [u64; SCORE_BINS],
    reference: Option<[f64; SCORE_BINS]>,
    psi: f64,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
    // Influence health ring + cached rolling means.
    influence: VecDeque<(f64, f64, f64)>,
    inf_mass_ratio: f64,
    inf_entropy: f64,
    inf_sparsity: f64,
    // Alerting.
    events: u64,
    alerts: u64,
    breached: [bool; 3],
}

impl QualityMonitor {
    pub fn new(cfg: MonitorConfig) -> QualityMonitor {
        QualityMonitor {
            cfg,
            feedback: VecDeque::new(),
            auc: f64::NAN,
            ece: f64::NAN,
            score_count: 0,
            score_bins: [0; SCORE_BINS],
            reference: None,
            psi: 0.0,
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
            influence: VecDeque::new(),
            inf_mass_ratio: f64::NAN,
            inf_entropy: f64::NAN,
            inf_sparsity: f64::NAN,
            events: 0,
            alerts: 0,
            breached: [false; 3],
        }
    }

    /// Install the training-time reference histogram (bin counts over
    /// [`SCORE_BINS`] equal-width bins on `[0,1]`). An all-zero or
    /// wrong-length histogram is ignored — PSI then stays unexported.
    pub fn set_reference(&mut self, counts: &[u64]) {
        if counts.len() != SCORE_BINS {
            return;
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return;
        }
        let mut props = [0.0; SCORE_BINS];
        for (p, &c) in props.iter_mut().zip(counts) {
            *p = c as f64 / total as f64;
        }
        self.reference = Some(props);
    }

    pub fn has_reference(&self) -> bool {
        self.reference.is_some()
    }

    /// Ingest one event and return any alerts that newly fired.
    pub fn ingest(&mut self, ev: &QualityEvent) -> Vec<Alert> {
        self.events += 1;
        match *ev {
            QualityEvent::Score(s) => self.observe_score(s),
            QualityEvent::Feedback { score, label } => {
                self.feedback.push_back((score, label));
                while self.feedback.len() > self.cfg.feedback_window {
                    self.feedback.pop_front();
                }
                self.auc = rolling_auc(&self.feedback);
                self.ece = rolling_ece(&self.feedback);
            }
            QualityEvent::Influence {
                correct_mass,
                incorrect_mass,
                entropy,
                sparsity,
            } => {
                let total = correct_mass + incorrect_mass;
                let ratio = if total > 0.0 {
                    correct_mass / total
                } else {
                    0.5
                };
                self.influence.push_back((ratio, entropy, sparsity));
                while self.influence.len() > self.cfg.influence_window {
                    self.influence.pop_front();
                }
                let n = self.influence.len() as f64;
                let (mut r, mut e, mut s) = (0.0, 0.0, 0.0);
                for &(ri, ei, si) in &self.influence {
                    r += ri;
                    e += ei;
                    s += si;
                }
                self.inf_mass_ratio = r / n;
                self.inf_entropy = e / n;
                self.inf_sparsity = s / n;
            }
        }
        self.check_alerts()
    }

    fn observe_score(&mut self, s: f64) {
        self.score_count += 1;
        let bin = ((s * SCORE_BINS as f64) as usize).min(SCORE_BINS - 1);
        self.score_bins[bin] += 1;
        self.p50.observe(s);
        self.p90.observe(s);
        self.p99.observe(s);
        if let Some(reference) = &self.reference {
            self.psi = psi(&self.score_bins, reference);
        }
    }

    fn check_alerts(&mut self) -> Vec<Alert> {
        let min = self.cfg.min_samples;
        let conditions = [
            (
                "auc_low",
                self.feedback.len() >= min && self.auc < self.cfg.auc_min,
                self.auc,
                self.cfg.auc_min,
            ),
            (
                "ece_high",
                self.feedback.len() >= min && self.ece > self.cfg.ece_max,
                self.ece,
                self.cfg.ece_max,
            ),
            (
                "psi_high",
                self.reference.is_some()
                    && self.score_count >= min as u64
                    && self.psi > self.cfg.psi_max,
                self.psi,
                self.cfg.psi_max,
            ),
        ];
        let mut fired = Vec::new();
        for (i, (name, active, value, threshold)) in conditions.into_iter().enumerate() {
            if active && !self.breached[i] {
                self.breached[i] = true;
                self.alerts += 1;
                fired.push(Alert {
                    name,
                    value,
                    threshold,
                });
            } else if !active {
                self.breached[i] = false;
            }
        }
        fired
    }

    /// Every gauge the monitor currently exports, as (internal dotted
    /// name, value). Gauges appear only once their window has data, so a
    /// monitor that never saw feedback exports no AUC at all rather than
    /// a misleading placeholder.
    pub fn gauges(&self) -> Vec<(&'static str, f64)> {
        let mut g: Vec<(&'static str, f64)> = Vec::with_capacity(12);
        if !self.feedback.is_empty() {
            g.push(("quality.auc", self.auc));
            g.push(("quality.ece", self.ece));
            g.push(("quality.feedback_count", self.feedback.len() as f64));
        }
        if self.score_count > 0 {
            g.push(("quality.score_count", self.score_count as f64));
            g.push(("quality.score_p50", self.p50.value()));
            g.push(("quality.score_p90", self.p90.value()));
            g.push(("quality.score_p99", self.p99.value()));
            if self.reference.is_some() {
                g.push(("quality.score_psi", self.psi));
            }
        }
        if !self.influence.is_empty() {
            g.push(("quality.influence_count", self.influence.len() as f64));
            g.push(("quality.influence_entropy", self.inf_entropy));
            g.push(("quality.influence_mass_ratio", self.inf_mass_ratio));
            g.push(("quality.influence_sparsity", self.inf_sparsity));
        }
        if self.events > 0 {
            g.push(("quality.alerts", self.alerts as f64));
        }
        g
    }

    /// Render the gauges exactly as they appear on `/metrics` (sanitized
    /// `rckt_quality_*` names, Prometheus float formatting), one per
    /// line, sorted by name. `rckt monitor --replay` prints this and CI
    /// diffs it against `grep '^rckt_quality_' /metrics | sort`.
    pub fn render_report(&self) -> String {
        let mut lines: Vec<String> = self
            .gauges()
            .iter()
            .map(|(name, v)| {
                format!(
                    "{} {}",
                    crate::prometheus::metric_name(name),
                    crate::prometheus::fmt_value(*v)
                )
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    pub fn total_events(&self) -> u64 {
        self.events
    }

    pub fn total_alerts(&self) -> u64 {
        self.alerts
    }
}

/// Mann-Whitney AUC with tie-averaged ranks over the feedback window;
/// 0.5 when only one class is present (keeps the gauge finite so CI can
/// assert on it).
fn rolling_auc(data: &VecDeque<(f64, bool)>) -> f64 {
    let mut pairs: Vec<(f64, bool)> = data.iter().copied().collect();
    let pos = pairs.iter().filter(|p| p.1).count();
    let neg = pairs.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut rank_sum = 0.0;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        // Ranks i+1 ..= j share the average (i + 1 + j) / 2.
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        for pair in &pairs[i..j] {
            if pair.1 {
                rank_sum += avg_rank;
            }
        }
        i = j;
    }
    let pos = pos as f64;
    (rank_sum - pos * (pos + 1.0) / 2.0) / (pos * neg as f64)
}

/// Expected calibration error over [`SCORE_BINS`] equal-width bins.
fn rolling_ece(data: &VecDeque<(f64, bool)>) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    let mut conf = [0.0; SCORE_BINS];
    let mut acc = [0.0; SCORE_BINS];
    let mut cnt = [0u64; SCORE_BINS];
    for &(s, l) in data {
        let b = ((s * SCORE_BINS as f64) as usize).min(SCORE_BINS - 1);
        conf[b] += s;
        acc[b] += f64::from(u8::from(l));
        cnt[b] += 1;
    }
    let n = data.len() as f64;
    let mut e = 0.0;
    for b in 0..SCORE_BINS {
        if cnt[b] > 0 {
            let c = cnt[b] as f64;
            e += (c / n) * ((conf[b] / c) - (acc[b] / c)).abs();
        }
    }
    e
}

/// PSI between the live bin counts and reference proportions, with both
/// sides floored at 1e-6 so empty bins stay finite.
fn psi(live: &[u64; SCORE_BINS], reference: &[f64; SCORE_BINS]) -> f64 {
    let total: u64 = live.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut s = 0.0;
    for (&c, &r) in live.iter().zip(reference) {
        let p = (c as f64 / total as f64).max(1e-6);
        let q = r.max(1e-6);
        s += (p - q) * (p / q).ln();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feedback(score: f64, label: bool) -> QualityEvent {
        QualityEvent::Feedback { score, label }
    }

    #[test]
    fn event_codec_roundtrips() {
        let events = vec![
            QualityEvent::Score(0.123456789),
            feedback(0.5, true),
            feedback(0.25, false),
            QualityEvent::Influence {
                correct_mass: 1.5,
                incorrect_mass: 0.5,
                entropy: 0.75,
                sparsity: 0.1,
            },
        ];
        for ev in events {
            assert_eq!(QualityEvent::decode(&ev.encode()), Some(ev.clone()));
        }
        assert_eq!(QualityEvent::decode(""), None);
        assert_eq!(QualityEvent::decode("reference,1,2"), None);
        assert_eq!(QualityEvent::decode("feedback,0.5,2"), None);
        assert_eq!(QualityEvent::decode("predict,notafloat"), None);
    }

    #[test]
    fn reference_codec_roundtrips() {
        let counts: Vec<u64> = (0..SCORE_BINS as u64).collect();
        let line = encode_reference(&counts);
        assert_eq!(decode_reference(&line), Some(counts));
        assert_eq!(decode_reference("reference,1,2"), None);
        assert_eq!(decode_reference("predict,0.5"), None);
    }

    #[test]
    fn perfect_separation_gives_auc_one() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        for i in 0..10 {
            m.ingest(&feedback(0.1 + 0.01 * i as f64, false));
            m.ingest(&feedback(0.8 + 0.01 * i as f64, true));
        }
        let g: std::collections::HashMap<_, _> = m.gauges().into_iter().collect();
        assert_eq!(g["quality.auc"], 1.0);
        assert_eq!(g["quality.feedback_count"], 20.0);
    }

    #[test]
    fn single_class_auc_is_neutral_and_ties_average() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        m.ingest(&feedback(0.7, true));
        let g: std::collections::HashMap<_, _> = m.gauges().into_iter().collect();
        assert_eq!(g["quality.auc"], 0.5);

        // All-equal scores: AUC must be exactly 0.5 by tie averaging.
        let mut m = QualityMonitor::new(MonitorConfig::default());
        for label in [true, false, true, false] {
            m.ingest(&feedback(0.5, label));
        }
        let g: std::collections::HashMap<_, _> = m.gauges().into_iter().collect();
        assert_eq!(g["quality.auc"], 0.5);
    }

    #[test]
    fn ece_zero_when_perfectly_calibrated_within_bins() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        // Bin [0.6,0.7): four samples at 0.65, three correct ≈ 0.75 acc.
        // Use exact calibration instead: p=0.5 samples, half correct.
        m.ingest(&feedback(0.55, true));
        m.ingest(&feedback(0.55, false));
        // conf mean = 0.55, acc = 0.5 → ece = |0.55-0.5| = 0.05.
        let g: std::collections::HashMap<_, _> = m.gauges().into_iter().collect();
        assert!(
            (g["quality.ece"] - 0.05).abs() < 1e-12,
            "{}",
            g["quality.ece"]
        );
    }

    #[test]
    fn feedback_window_slides() {
        let cfg = MonitorConfig {
            feedback_window: 4,
            ..Default::default()
        };
        let mut m = QualityMonitor::new(cfg);
        // Fill with inverted labels (AUC 0), then slide in perfect ones.
        for _ in 0..4 {
            m.ingest(&feedback(0.9, false));
            m.ingest(&feedback(0.1, true));
        }
        let g: std::collections::HashMap<_, _> = m.gauges().into_iter().collect();
        assert_eq!(g["quality.auc"], 0.0);
        for _ in 0..2 {
            m.ingest(&feedback(0.9, true));
            m.ingest(&feedback(0.1, false));
        }
        let g: std::collections::HashMap<_, _> = m.gauges().into_iter().collect();
        assert_eq!(g["quality.auc"], 1.0);
        assert_eq!(g["quality.feedback_count"], 4.0);
    }

    #[test]
    fn p2_tracks_exact_quantiles_on_uniform_ramp() {
        let mut p50 = P2Quantile::new(0.5);
        let mut p99 = P2Quantile::new(0.99);
        let n = 1000;
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            p50.observe(x);
            p99.observe(x);
        }
        assert!((p50.value() - 0.5).abs() < 0.05, "p50={}", p50.value());
        assert!((p99.value() - 0.99).abs() < 0.05, "p99={}", p99.value());
    }

    #[test]
    fn p2_small_samples_use_exact_quantile() {
        let mut p = P2Quantile::new(0.5);
        assert!(p.value().is_nan());
        p.observe(3.0);
        assert_eq!(p.value(), 3.0);
        p.observe(1.0);
        p.observe(2.0);
        assert_eq!(p.value(), 2.0);
    }

    #[test]
    fn psi_zero_on_matching_distribution_and_grows_on_shift() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        // Reference: all mass in bin 5 ([0.5,0.6)).
        let mut counts = [0u64; SCORE_BINS];
        counts[5] = 100;
        m.set_reference(&counts);
        assert!(m.has_reference());
        for _ in 0..50 {
            m.ingest(&QualityEvent::Score(0.55));
        }
        let g: std::collections::HashMap<_, _> = m.gauges().into_iter().collect();
        assert!(
            g["quality.score_psi"].abs() < 1e-3,
            "{}",
            g["quality.score_psi"]
        );

        // Shift every score two bins up: PSI should exceed 0.25.
        let mut m2 = QualityMonitor::new(MonitorConfig::default());
        m2.set_reference(&counts);
        for _ in 0..50 {
            m2.ingest(&QualityEvent::Score(0.75));
        }
        let g2: std::collections::HashMap<_, _> = m2.gauges().into_iter().collect();
        assert!(
            g2["quality.score_psi"] > 0.25,
            "{}",
            g2["quality.score_psi"]
        );
    }

    #[test]
    fn degenerate_references_are_ignored() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        m.set_reference(&[0; SCORE_BINS]);
        assert!(!m.has_reference());
        m.set_reference(&[1, 2, 3]);
        assert!(!m.has_reference());
        m.ingest(&QualityEvent::Score(0.5));
        assert!(m.gauges().iter().all(|(n, _)| *n != "quality.score_psi"));
    }

    #[test]
    fn influence_health_rolls_means() {
        let mut m = QualityMonitor::new(MonitorConfig::default());
        m.ingest(&QualityEvent::Influence {
            correct_mass: 3.0,
            incorrect_mass: 1.0,
            entropy: 0.5,
            sparsity: 0.0,
        });
        m.ingest(&QualityEvent::Influence {
            correct_mass: 1.0,
            incorrect_mass: 3.0,
            entropy: 1.0,
            sparsity: 0.5,
        });
        let g: std::collections::HashMap<_, _> = m.gauges().into_iter().collect();
        assert_eq!(g["quality.influence_mass_ratio"], 0.5);
        assert_eq!(g["quality.influence_entropy"], 0.75);
        assert_eq!(g["quality.influence_sparsity"], 0.25);
        assert_eq!(g["quality.influence_count"], 2.0);
        // Zero total mass is neutral, not NaN.
        let mut m = QualityMonitor::new(MonitorConfig::default());
        m.ingest(&QualityEvent::Influence {
            correct_mass: 0.0,
            incorrect_mass: 0.0,
            entropy: 0.0,
            sparsity: 0.0,
        });
        let g: std::collections::HashMap<_, _> = m.gauges().into_iter().collect();
        assert_eq!(g["quality.influence_mass_ratio"], 0.5);
    }

    #[test]
    fn alerts_fire_once_per_breach_and_rearm() {
        let cfg = MonitorConfig {
            min_samples: 4,
            auc_min: 0.55,
            ..Default::default()
        };
        let mut m = QualityMonitor::new(cfg);
        let mut fired = Vec::new();
        // Inverted model: low scores labeled true.
        for _ in 0..4 {
            fired.extend(m.ingest(&feedback(0.9, false)));
            fired.extend(m.ingest(&feedback(0.1, true)));
        }
        let auc_alerts: Vec<_> = fired.iter().filter(|a| a.name == "auc_low").collect();
        assert_eq!(auc_alerts.len(), 1, "breach fires exactly once: {fired:?}");
        assert_eq!(auc_alerts[0].threshold, 0.55);
        assert!(m.total_alerts() >= 1);
        // Recover (AUC back to 1.0 after the window slides), then breach
        // again: the alert re-arms and fires a second time.
        let mut recovered = Vec::new();
        for _ in 0..600 {
            recovered.extend(m.ingest(&feedback(0.9, true)));
            recovered.extend(m.ingest(&feedback(0.1, false)));
        }
        assert!(recovered.iter().all(|a| a.name != "auc_low"));
        let mut again = Vec::new();
        for _ in 0..600 {
            again.extend(m.ingest(&feedback(0.9, false)));
            again.extend(m.ingest(&feedback(0.1, true)));
        }
        assert_eq!(again.iter().filter(|a| a.name == "auc_low").count(), 1);
    }

    #[test]
    fn gauges_appear_only_with_data() {
        let m = QualityMonitor::new(MonitorConfig::default());
        assert!(m.gauges().is_empty());
        assert_eq!(m.render_report(), "");
        let mut m = QualityMonitor::new(MonitorConfig::default());
        m.ingest(&QualityEvent::Score(0.5));
        let names: Vec<&str> = m.gauges().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"quality.score_count"));
        assert!(names.contains(&"quality.alerts"));
        assert!(!names.contains(&"quality.auc"));
    }

    #[test]
    fn replay_reproduces_report_byte_for_byte() {
        let cfg = MonitorConfig::default();
        let mut live = QualityMonitor::new(cfg.clone());
        let mut counts = [0u64; SCORE_BINS];
        counts[3] = 10;
        counts[6] = 30;
        live.set_reference(&counts);

        // A mixed stream with awkward floats.
        let mut log = vec![encode_reference(&counts)];
        let events: Vec<QualityEvent> = (0..100)
            .map(|i| {
                let x = (i as f64 * 0.37).sin().abs();
                match i % 3 {
                    0 => QualityEvent::Score(x),
                    1 => QualityEvent::Feedback {
                        score: x,
                        label: i % 2 == 0,
                    },
                    _ => QualityEvent::Influence {
                        correct_mass: x,
                        incorrect_mass: 1.0 - x,
                        entropy: x * 0.5,
                        sparsity: 1.0 - x * 0.5,
                    },
                }
            })
            .collect();
        for ev in &events {
            log.push(ev.encode());
            live.ingest(ev);
        }

        // Replay from the encoded log only.
        let mut replay = QualityMonitor::new(cfg);
        let mut lines = log.iter();
        if let Some(counts) = lines.clone().next().and_then(|l| decode_reference(l)) {
            replay.set_reference(&counts);
            lines.next();
        }
        for line in lines {
            let ev = QualityEvent::decode(line).expect("log line decodes");
            replay.ingest(&ev);
        }
        assert_eq!(live.render_report(), replay.render_report());
        assert!(live.render_report().contains("rckt_quality_auc "));
        assert!(live.render_report().contains("rckt_quality_score_psi "));
    }
}
