//! Structured events routed to a human-readable stderr sink and an
//! optional JSON-lines file sink.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{self, Obj};
use crate::level::{enabled, Level};

/// A field value attached to an event.
#[derive(Clone, Debug)]
pub enum Value {
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl Value {
    pub(crate) fn to_json(&self) -> String {
        match self {
            Value::I64(v) => v.to_string(),
            Value::U64(v) => v.to_string(),
            Value::F64(v) => json::number(*v),
            Value::Str(s) => json::string(s),
            Value::Bool(b) => b.to_string(),
        }
    }

    fn to_human(&self) -> String {
        match self {
            Value::I64(v) => v.to_string(),
            Value::U64(v) => v.to_string(),
            Value::F64(v) => {
                let v = *v;
                if v == 0.0 || (v.abs() >= 1e-3 && v.abs() < 1e7) {
                    format!("{v:.4}")
                } else {
                    format!("{v:.3e}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

struct SinkState {
    stderr: bool,
    json: Option<BufWriter<File>>,
}

static SINKS: Mutex<SinkState> = Mutex::new(SinkState {
    stderr: true,
    json: None,
});

fn sinks() -> std::sync::MutexGuard<'static, SinkState> {
    SINKS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Route future events to a JSON-lines file at `path` (truncates any
/// existing file). Each event becomes one line:
/// `{"ts":…,"level":"…","event":"…","fields":{…}}`.
pub fn log_to_json(path: &str) -> std::io::Result<()> {
    let f = File::create(path)?;
    sinks().json = Some(BufWriter::new(f));
    Ok(())
}

/// Flush and close the JSON-lines sink, if open. Call before process exit —
/// the sink is buffered.
pub fn close_json() {
    let mut s = sinks();
    if let Some(mut w) = s.json.take() {
        let _ = w.flush();
    }
}

/// Enable/disable the human-readable stderr sink (on by default).
pub fn set_stderr_sink(on: bool) {
    sinks().stderr = on;
}

fn unix_ts() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Emit a structured event at `level` with key/value `fields`. A no-op
/// unless the global filter admits `level` (one relaxed atomic load).
pub fn event(level: Level, name: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    // The flight ring taps admitted events before the sinks so a broken
    // sink cannot hide them from a postmortem. Its own lock, not SINKS.
    crate::flight::tap_event(level, name, fields);
    let mut s = sinks();
    if s.stderr {
        let mut line = format!("[{}] {}", level.as_str(), name);
        for (k, v) in fields {
            line.push_str(&format!(" {}={}", k, v.to_human()));
        }
        eprintln!("{line}");
    }
    if let Some(w) = s.json.as_mut() {
        let mut f = Obj::new();
        for (k, v) in fields {
            f.raw(k, &v.to_json());
        }
        let mut o = Obj::new();
        o.f64("ts", unix_ts())
            .str("level", level.as_str())
            .str("event", name)
            .raw("fields", &f.finish());
        let ok = writeln!(w, "{}", o.finish()).and_then(|_| w.flush());
        if ok.is_err() {
            s.json = None; // drop a broken sink rather than failing every event
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_level, Level};
    use crate::testutil;

    fn read_lines(path: &str) -> Vec<String> {
        std::fs::read_to_string(path)
            .unwrap_or_default()
            .lines()
            .map(|l| l.to_string())
            .collect()
    }

    #[test]
    fn json_sink_writes_one_line_per_event() {
        let _g = testutil::global_lock();
        let before = crate::level::level();
        let path = std::env::temp_dir().join("rckt_obs_event_test.jsonl");
        let path = path.to_str().unwrap().to_string();
        set_level(Level::Debug);
        set_stderr_sink(false);
        log_to_json(&path).unwrap();
        event(
            Level::Info,
            "unit.test",
            &[("k", 1u64.into()), ("s", "a\"b".into())],
        );
        event(Level::Trace, "unit.filtered", &[]); // below filter — dropped
        event(
            Level::Debug,
            "unit.floats",
            &[
                ("f", 0.5f64.into()),
                ("nan", f64::NAN.into()),
                ("ok", true.into()),
            ],
        );
        close_json();
        set_stderr_sink(true);
        set_level(before);

        let lines = read_lines(&path);
        assert_eq!(lines.len(), 2, "trace event filtered out: {lines:?}");
        assert!(lines[0].contains("\"event\":\"unit.test\""));
        assert!(lines[0].contains("\"level\":\"info\""));
        assert!(lines[0].contains("\"fields\":{\"k\":1,\"s\":\"a\\\"b\"}"));
        assert!(lines[0].contains("\"ts\":"));
        assert!(lines[1].contains("\"nan\":null"));
        assert!(lines[1].contains("\"f\":0.5"));
        assert!(lines[1].contains("\"ok\":true"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn events_are_noop_when_off() {
        let _g = testutil::global_lock();
        let before = crate::level::level();
        set_level(Level::Off);
        // Must not panic or write anywhere; Off filters everything.
        event(Level::Info, "unit.off", &[("k", 1i64.into())]);
        set_level(before);
    }

    #[test]
    fn human_float_rendering() {
        assert_eq!(Value::F64(0.5).to_human(), "0.5000");
        assert_eq!(Value::F64(0.0).to_human(), "0.0000");
        assert_eq!(Value::F64(1.5e-7).to_human(), "1.500e-7");
        assert_eq!(Value::U64(3).to_human(), "3");
        assert_eq!(Value::Str("x".into()).to_human(), "x");
    }

    #[test]
    fn value_conversions() {
        assert!(matches!(Value::from(3usize), Value::U64(3)));
        assert!(matches!(Value::from(-2i32), Value::I64(-2)));
        assert!(matches!(Value::from(0.5f32), Value::F64(_)));
        assert!(matches!(Value::from("s"), Value::Str(_)));
    }
}
