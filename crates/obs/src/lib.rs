//! # rckt-obs
//!
//! Structured tracing, metrics, and profiling for the RCKT stack.
//!
//! The crate is std-only (no external dependencies) so every workspace
//! crate — down to the tensor kernels — can link it without widening the
//! dependency graph. It provides four cooperating layers:
//!
//! * **Levels** ([`Level`], [`set_level`]) — a global `off/info/debug/trace`
//!   filter. The default is [`Level::Off`]: unconfigured library use emits
//!   nothing and hot-path guards reduce to one relaxed atomic load.
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`]) — a concurrent
//!   registry of named counters, gauges, and fixed-bucket histograms with
//!   p50/p90/p99 queries.
//! * **Spans** ([`span`]) — RAII wall-clock timers with thread-local
//!   nesting; a span opened inside another records under the joined path
//!   (`fit/epoch`). Accumulated per-phase totals feed the profile report
//!   and run manifests.
//! * **Events** ([`event`]) — structured key/value records routed to a
//!   human-readable stderr sink and an optional JSON-lines file sink
//!   ([`log_to_json`]).
//!
//! [`RunManifest`] stamps experiment results with the git commit, seed,
//! configuration, and per-phase timings; [`profile_report`] renders
//! everything collected so far as a text table (the `--profile` output).
//!
//! ```
//! use rckt_obs::{counter, span, Level};
//!
//! rckt_obs::set_level(Level::Info);
//! {
//!     let _outer = span("fit");
//!     let _inner = span("epoch"); // records under "fit/epoch"
//!     counter("train.batches").add(4);
//! }
//! rckt_obs::event(Level::Info, "train.done", &[("batches", 4u64.into())]);
//! assert_eq!(counter("train.batches").get(), 4);
//! ```

pub mod event;
pub mod json;
pub mod level;
pub mod manifest;
pub mod metrics;
pub mod report;
pub mod span;
pub mod train;

pub use event::{close_json, event, log_to_json, set_stderr_sink, Value};
pub use level::{enabled, level, profiling, set_level, set_profiling, Level};
pub use manifest::{bin_name, git_commit, PhaseTiming, RunManifest};
pub use metrics::{
    counter, gauge, histogram, histogram_with, metrics_snapshot, reset_metrics, Counter, Gauge,
    Histogram, HistogramSummary, MetricsSnapshot,
};
pub use report::profile_report;
pub use span::{
    phase_timings, phases_snapshot, reset_phases, span, PhaseStat, PhasesSnapshot, SpanGuard,
};
pub use train::{report_done, report_epoch, report_start, EpochReport};

/// Observability switches shared by the CLI and the experiment binaries.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Global event-level filter.
    pub level: Level,
    /// JSON-lines sink path (`--log-json <path>`).
    pub json_path: Option<String>,
    /// Enable profiling counters and the final `--profile` summary.
    pub profile: bool,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            level: Level::Off,
            json_path: None,
            profile: false,
        }
    }
}

impl ObsOptions {
    /// Extract the shared observability flags (`--log-level <l>`,
    /// `--log-json <path>`, `--profile`) from an argument vector, removing
    /// them so downstream parsers never see them. Binaries default to
    /// [`Level::Info`] so coarse progress events stay visible on stderr;
    /// pass `--log-level off` to silence them.
    pub fn take_from_args(args: &mut Vec<String>) -> Result<ObsOptions, String> {
        let mut out = ObsOptions {
            level: Level::Info,
            ..Default::default()
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--log-level" => {
                    let v = args
                        .get(i + 1)
                        .ok_or("--log-level needs a value (off|info|debug|trace)")?
                        .clone();
                    out.level = v.parse()?;
                    args.drain(i..i + 2);
                }
                "--log-json" => {
                    let v = args
                        .get(i + 1)
                        .ok_or("--log-json needs a file path")?
                        .clone();
                    out.json_path = Some(v);
                    args.drain(i..i + 2);
                }
                "--profile" => {
                    out.profile = true;
                    args.remove(i);
                }
                _ => i += 1,
            }
        }
        Ok(out)
    }
}

/// Apply an [`ObsOptions`]: set the level and profiling flags and open the
/// JSON-lines sink if requested.
pub fn init(opts: &ObsOptions) -> std::io::Result<()> {
    set_level(opts.level);
    set_profiling(opts.profile);
    if let Some(p) = &opts.json_path {
        log_to_json(p)?;
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that mutate process-global observability state
    /// (level, sinks) so the multithreaded test harness stays deterministic.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn global_lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_args_extracts_and_removes_flags() {
        let _g = testutil::global_lock();
        let mut args: Vec<String> = [
            "--scale",
            "0.5",
            "--log-level",
            "debug",
            "--profile",
            "--log-json",
            "/tmp/x.jsonl",
            "--folds",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = ObsOptions::take_from_args(&mut args).unwrap();
        assert_eq!(o.level, Level::Debug);
        assert!(o.profile);
        assert_eq!(o.json_path.as_deref(), Some("/tmp/x.jsonl"));
        assert_eq!(args, vec!["--scale", "0.5", "--folds", "2"]);
    }

    #[test]
    fn take_from_args_defaults_to_info() {
        let mut args: Vec<String> = vec![];
        let o = ObsOptions::take_from_args(&mut args).unwrap();
        assert_eq!(o.level, Level::Info);
        assert!(!o.profile);
        assert!(o.json_path.is_none());
    }

    #[test]
    fn take_from_args_rejects_bad_level_and_missing_values() {
        let mut args: Vec<String> = vec!["--log-level".into(), "loud".into()];
        assert!(ObsOptions::take_from_args(&mut args).is_err());
        let mut args: Vec<String> = vec!["--log-json".into()];
        assert!(ObsOptions::take_from_args(&mut args).is_err());
    }
}
