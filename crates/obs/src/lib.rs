//! # rckt-obs
//!
//! Structured tracing, metrics, and profiling for the RCKT stack.
//!
//! The crate is std-only (no external dependencies) so every workspace
//! crate — down to the tensor kernels — can link it without widening the
//! dependency graph. It provides four cooperating layers:
//!
//! * **Levels** ([`Level`], [`set_level`]) — a global `off/info/debug/trace`
//!   filter. The default is [`Level::Off`]: unconfigured library use emits
//!   nothing and hot-path guards reduce to one relaxed atomic load.
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`]) — a concurrent
//!   registry of named counters, gauges, and fixed-bucket histograms with
//!   p50/p90/p99 queries.
//! * **Spans** ([`span`]) — RAII wall-clock timers with thread-local
//!   nesting; a span opened inside another records under the joined path
//!   (`fit/epoch`). Accumulated per-phase totals feed the profile report
//!   and run manifests.
//! * **Events** ([`event`]) — structured key/value records routed to a
//!   human-readable stderr sink and an optional JSON-lines file sink
//!   ([`log_to_json`]).
//! * **Quality monitors** ([`QualityMonitor`]) — streaming sliding-window
//!   model-quality estimates (rolling AUC/ECE over labeled feedback, P²
//!   score quantiles, PSI drift vs a training reference, influence
//!   health) with threshold-crossing alerts, exported as
//!   `rckt_quality_*` gauges.
//! * **Flight recorder** ([`FlightRecorder`]) — fixed-byte-budget
//!   in-memory rings of the most recent events and served requests,
//!   serialized into postmortem bundles when something breaks.
//! * **SLO engine** ([`SloEngine`]) — declarative availability/latency
//!   objectives evaluated with multi-window multi-burn-rate alerting,
//!   exported as `rckt_slo_*` gauges.
//!
//! [`RunManifest`] stamps experiment results with the git commit, seed,
//! configuration, and per-phase timings; [`profile_report`] renders
//! everything collected so far as a text table (the `--profile` output).
//!
//! ```
//! use rckt_obs::{counter, span, Level};
//!
//! rckt_obs::set_level(Level::Info);
//! {
//!     let _outer = span("fit");
//!     let _inner = span("epoch"); // records under "fit/epoch"
//!     counter("train.batches").add(4);
//! }
//! rckt_obs::event(Level::Info, "train.done", &[("batches", 4u64.into())]);
//! assert_eq!(counter("train.batches").get(), 4);
//! ```

pub mod event;
pub mod flight;
pub mod json;
pub mod level;
pub mod manifest;
pub mod metrics;
pub mod monitor;
pub mod prometheus;
pub mod report;
pub mod serve;
pub mod slo;
pub mod span;
pub mod trace;
pub mod train;

pub use event::{close_json, event, log_to_json, set_stderr_sink, Value};
pub use flight::{FlightConfig, FlightRecorder, RequestRecord};
pub use level::{enabled, level, profiling, set_level, set_profiling, Level};
pub use manifest::{bin_name, git_commit, PhaseTiming, RunManifest};
pub use metrics::{
    counter, gauge, histogram, histogram_with, metrics_snapshot, reset_metrics, Counter, Gauge,
    Histogram, HistogramSummary, MetricsSnapshot,
};
pub use monitor::{Alert, MonitorConfig, P2Quantile, QualityEvent, QualityMonitor, SCORE_BINS};
pub use prometheus::{build_info, run_labels, set_build_info, set_run_label};
pub use report::profile_report;
pub use serve::TelemetryServer;
pub use slo::{SloAlert, SloEngine, SloObjective, SloSpec};
pub use span::{
    phase_timings, phases_snapshot, reset_phases, span, PhaseStat, PhasesSnapshot, SpanGuard,
};
pub use trace::{finish_trace, record_event, start_trace, trace_enabled};
pub use train::{report_done, report_epoch, report_start, EpochReport};

/// Observability switches shared by the CLI and the experiment binaries.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Global event-level filter.
    pub level: Level,
    /// JSON-lines sink path (`--log-json <path>`).
    pub json_path: Option<String>,
    /// Enable profiling counters and the final `--profile` summary.
    pub profile: bool,
    /// Where the `--profile` report goes (`--profile-out <path>`); the
    /// default is stdout, so stderr JSON-lines streams stay parseable.
    pub profile_out: Option<String>,
    /// Chrome trace-event output path (`--trace-out <path>`).
    pub trace_path: Option<String>,
    /// Live telemetry HTTP port (`--serve-metrics <port>`; 0 = OS picks).
    pub serve_port: Option<u16>,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            level: Level::Off,
            json_path: None,
            profile: false,
            profile_out: None,
            trace_path: None,
            serve_port: None,
        }
    }
}

impl ObsOptions {
    /// Extract the shared observability flags (`--log-level <l>`,
    /// `--log-json <path>`, `--profile`, `--profile-out <path>`,
    /// `--trace-out <path>`, `--serve-metrics <port>`) from an argument
    /// vector, removing them so downstream parsers never see them.
    /// Binaries default to [`Level::Info`] so coarse progress events stay
    /// visible on stderr; pass `--log-level off` to silence them.
    pub fn take_from_args(args: &mut Vec<String>) -> Result<ObsOptions, String> {
        let mut out = ObsOptions {
            level: Level::Info,
            ..Default::default()
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--log-level" => {
                    let v = args
                        .get(i + 1)
                        .ok_or("--log-level needs a value (off|info|debug|trace)")?
                        .clone();
                    out.level = v.parse()?;
                    args.drain(i..i + 2);
                }
                "--log-json" => {
                    let v = args
                        .get(i + 1)
                        .ok_or("--log-json needs a file path")?
                        .clone();
                    out.json_path = Some(v);
                    args.drain(i..i + 2);
                }
                "--profile" => {
                    out.profile = true;
                    args.remove(i);
                }
                "--profile-out" => {
                    let v = args
                        .get(i + 1)
                        .ok_or("--profile-out needs a file path")?
                        .clone();
                    out.profile = true;
                    out.profile_out = Some(v);
                    args.drain(i..i + 2);
                }
                "--trace-out" => {
                    let v = args
                        .get(i + 1)
                        .ok_or("--trace-out needs a file path")?
                        .clone();
                    out.trace_path = Some(v);
                    args.drain(i..i + 2);
                }
                "--serve-metrics" => {
                    let v = args
                        .get(i + 1)
                        .ok_or("--serve-metrics needs a port (0 lets the OS pick)")?
                        .clone();
                    let port: u16 = v
                        .parse()
                        .map_err(|_| format!("--serve-metrics: invalid port {v:?}"))?;
                    out.serve_port = Some(port);
                    args.drain(i..i + 2);
                }
                _ => i += 1,
            }
        }
        Ok(out)
    }

    /// End-of-run hook: write the `--profile` report (stdout, or the
    /// `--profile-out` file), flush the trace file, stop the telemetry
    /// server, and close the JSON-lines sink. Errors on the optional
    /// sinks are reported to stderr rather than propagated — the run's
    /// results matter more than its telemetry.
    pub fn finish(&self) {
        if self.profile {
            let report = profile_report();
            match &self.profile_out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &report) {
                        eprintln!("rckt-obs: cannot write profile report to {path}: {e}");
                        eprint!("{report}");
                    }
                }
                None => print!("{report}"),
            }
        }
        match trace::finish_trace() {
            Ok(Some(path)) => {
                event(
                    Level::Info,
                    "trace.written",
                    &[("path", path.as_str().into())],
                );
            }
            Ok(None) => {}
            Err(e) => eprintln!("rckt-obs: cannot write trace file: {e}"),
        }
        serve::shutdown_global();
        close_json();
    }
}

/// Apply an [`ObsOptions`]: set the level and profiling flags, open the
/// JSON-lines sink, arm trace collection, and start the telemetry server
/// if requested.
pub fn init(opts: &ObsOptions) -> std::io::Result<()> {
    set_level(opts.level);
    set_profiling(opts.profile);
    if let Some(p) = &opts.json_path {
        log_to_json(p)?;
    }
    if let Some(p) = &opts.trace_path {
        trace::start_trace(p);
    }
    if let Some(port) = opts.serve_port {
        let server = serve::start(port)?;
        event(
            Level::Info,
            "serve.listening",
            &[("port", u64::from(server.port()).into())],
        );
        serve::install(server);
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that mutate process-global observability state
    /// (level, sinks) so the multithreaded test harness stays deterministic.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn global_lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_args_extracts_and_removes_flags() {
        let _g = testutil::global_lock();
        let mut args: Vec<String> = [
            "--scale",
            "0.5",
            "--log-level",
            "debug",
            "--profile",
            "--log-json",
            "/tmp/x.jsonl",
            "--folds",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = ObsOptions::take_from_args(&mut args).unwrap();
        assert_eq!(o.level, Level::Debug);
        assert!(o.profile);
        assert_eq!(o.json_path.as_deref(), Some("/tmp/x.jsonl"));
        assert_eq!(args, vec!["--scale", "0.5", "--folds", "2"]);
    }

    #[test]
    fn take_from_args_defaults_to_info() {
        let mut args: Vec<String> = vec![];
        let o = ObsOptions::take_from_args(&mut args).unwrap();
        assert_eq!(o.level, Level::Info);
        assert!(!o.profile);
        assert!(o.json_path.is_none());
    }

    #[test]
    fn take_from_args_rejects_bad_level_and_missing_values() {
        let mut args: Vec<String> = vec!["--log-level".into(), "loud".into()];
        assert!(ObsOptions::take_from_args(&mut args).is_err());
        let mut args: Vec<String> = vec!["--log-json".into()];
        assert!(ObsOptions::take_from_args(&mut args).is_err());
        let mut args: Vec<String> = vec!["--serve-metrics".into(), "notaport".into()];
        assert!(ObsOptions::take_from_args(&mut args).is_err());
        let mut args: Vec<String> = vec!["--trace-out".into()];
        assert!(ObsOptions::take_from_args(&mut args).is_err());
    }

    #[test]
    fn take_from_args_extracts_v2_flags() {
        let mut args: Vec<String> = [
            "--serve-metrics",
            "9920",
            "--trace-out",
            "/tmp/t.json",
            "--profile-out",
            "/tmp/p.txt",
            "--epochs",
            "3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = ObsOptions::take_from_args(&mut args).unwrap();
        assert_eq!(o.serve_port, Some(9920));
        assert_eq!(o.trace_path.as_deref(), Some("/tmp/t.json"));
        assert_eq!(o.profile_out.as_deref(), Some("/tmp/p.txt"));
        assert!(o.profile, "--profile-out implies --profile");
        assert_eq!(args, vec!["--epochs", "3"]);
    }

    #[test]
    fn init_with_serve_answers_while_running() {
        use std::io::{Read as _, Write as _};
        let _g = testutil::global_lock();
        let opts = ObsOptions {
            serve_port: Some(0),
            ..Default::default()
        };
        init(&opts).unwrap();
        // Fetch the bound port from the installed server via a fresh
        // ephemeral instance check: init logged it, but for the test we
        // reach through the serve module's start() path instead.
        serve::shutdown_global();
        let server = serve::start(0).unwrap();
        let port = server.port();
        let mut s = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
        write!(s, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.contains("\"status\":\"ok\""));
        server.stop();
    }
}
