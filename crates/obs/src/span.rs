//! RAII wall-clock spans with thread-local nesting.
//!
//! `span("fit")` starts a timer; dropping the guard stops it and folds the
//! elapsed time into a process-wide per-phase table keyed by the span
//! *path*: a span opened while another is live on the same thread records
//! under the joined name (`fit/epoch`). The table feeds
//! [`crate::profile_report`] and [`crate::RunManifest`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::event;
use crate::level::Level;

/// Accumulated totals for one span path.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStat {
    /// Total wall-clock seconds across completed spans.
    pub secs: f64,
    /// Number of completed spans.
    pub count: u64,
}

static PHASES: Mutex<BTreeMap<String, PhaseStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Live timer for one span; created by [`span`], records on drop.
pub struct SpanGuard {
    path: String,
    depth: usize,
    start: Instant,
}

/// Open a span named `name`. Nested calls on the same thread join paths
/// with `/`. Keep the returned guard alive for the duration being timed.
pub fn span(name: &str) -> SpanGuard {
    let (path, depth) = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let path = match s.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        s.push(path.clone());
        (path, s.len())
    });
    SpanGuard {
        path,
        depth,
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Out-of-order drops (guards held across each other) still
            // unwind to this span's depth so the stack cannot grow.
            s.truncate(self.depth.saturating_sub(1));
        });
        {
            let mut phases = PHASES.lock().unwrap_or_else(|e| e.into_inner());
            let stat = phases.entry(self.path.clone()).or_default();
            stat.secs += secs;
            stat.count += 1;
        }
        if crate::trace::trace_enabled() {
            crate::trace::record_event(&self.path, "span", self.start, secs);
        }
        if crate::level::enabled(Level::Trace) {
            event(
                Level::Trace,
                "span.end",
                &[("span", self.path.as_str().into()), ("secs", secs.into())],
            );
        }
    }
}

/// Totals for every span path completed so far, sorted by path.
pub fn phase_timings() -> Vec<(String, PhaseStat)> {
    PHASES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Clear the per-phase table (tests, or between independent runs).
pub fn reset_phases() {
    PHASES.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// A point-in-time copy of the phase table, used to compute deltas for a
/// single run via [`PhasesSnapshot::delta`].
#[derive(Clone, Debug, Default)]
pub struct PhasesSnapshot {
    at: BTreeMap<String, PhaseStat>,
}

/// Capture the current phase totals.
pub fn phases_snapshot() -> PhasesSnapshot {
    PhasesSnapshot {
        at: PHASES.lock().unwrap_or_else(|e| e.into_inner()).clone(),
    }
}

impl PhasesSnapshot {
    /// Per-path growth since this snapshot was taken; paths with no new
    /// completions are omitted.
    pub fn delta(&self) -> Vec<(String, PhaseStat)> {
        phase_timings()
            .into_iter()
            .filter_map(|(path, now)| {
                let before = self.at.get(&path).copied().unwrap_or_default();
                let count = now.count.saturating_sub(before.count);
                if count == 0 {
                    return None;
                }
                Some((
                    path,
                    PhaseStat {
                        secs: now.secs - before.secs,
                        count,
                    },
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stat(path: &str) -> Option<PhaseStat> {
        phase_timings()
            .into_iter()
            .find(|(p, _)| p == path)
            .map(|(_, s)| s)
    }

    #[test]
    fn nested_spans_record_joined_paths() {
        let _g = crate::testutil::global_lock();
        {
            let _outer = span("test_span_outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let outer = stat("test_span_outer").expect("outer recorded");
        let inner = stat("test_span_outer/inner").expect("inner recorded under joined path");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.secs >= inner.secs, "outer includes inner time");
        assert!(inner.secs > 0.0);
    }

    #[test]
    fn sibling_spans_accumulate() {
        let _g = crate::testutil::global_lock();
        for _ in 0..3 {
            let _s = span("test_span_sibling");
        }
        assert_eq!(stat("test_span_sibling").unwrap().count, 3);
    }

    #[test]
    fn stack_unwinds_after_drop() {
        let _g = crate::testutil::global_lock();
        {
            let _a = span("test_span_unwind_a");
        }
        // After a top-level span drops, a new span is again top-level.
        {
            let _b = span("test_span_unwind_b");
        }
        assert!(stat("test_span_unwind_b").is_some());
        assert!(stat("test_span_unwind_a/test_span_unwind_b").is_none());
    }

    #[test]
    fn snapshot_delta_reports_only_growth() {
        let _g = crate::testutil::global_lock();
        {
            let _s = span("test_span_delta_before");
        }
        let snap = phases_snapshot();
        {
            let _s = span("test_span_delta_after");
        }
        {
            let _s = span("test_span_delta_after");
        }
        let delta = snap.delta();
        assert!(delta.iter().all(|(p, _)| p != "test_span_delta_before"));
        let after = delta
            .iter()
            .find(|(p, _)| p == "test_span_delta_after")
            .unwrap();
        assert_eq!(after.1.count, 2);
    }

    #[test]
    fn threads_have_independent_stacks() {
        let _g = crate::testutil::global_lock();
        let _outer = span("test_span_thread_outer");
        std::thread::scope(|s| {
            s.spawn(|| {
                // Not nested under the main thread's live span.
                let _t = span("test_span_thread_child");
            });
        });
        assert!(stat("test_span_thread_child").is_some());
        assert!(stat("test_span_thread_outer/test_span_thread_child").is_none());
    }
}
