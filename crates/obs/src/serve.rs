//! Std-only live telemetry endpoint (`--serve-metrics <port>`).
//!
//! A background thread accepts plain HTTP/1.1 connections on
//! `127.0.0.1:<port>` and answers:
//!
//! * `GET /metrics` — the registry in Prometheus text format
//!   ([`crate::prometheus::render`]);
//! * `GET /healthz` — `{"status":"ok","uptime_secs":...}`;
//! * `GET /runs`    — a JSON array of the manifests published so far via
//!   [`publish_manifest`] (newest last), so a scraper can watch the
//!   active run's config and results while it trains.
//!
//! The server is deliberately minimal: one request per connection,
//! `Connection: close`, no TLS, bound to loopback. Pass port `0` to let
//! the OS pick (tests); [`TelemetryServer::port`] reports the real one.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Most recent manifests, as pre-encoded JSON objects (newest last).
static RUNS: Mutex<Vec<String>> = Mutex::new(Vec::new());
/// Keep the `/runs` snapshot bounded for long multi-run processes.
const MAX_RUNS: usize = 64;

static STARTED_AT: OnceLock<Instant> = OnceLock::new();
/// The process-wide server installed by [`crate::init`].
static GLOBAL: Mutex<Option<TelemetryServer>> = Mutex::new(None);

/// Record a run manifest (already encoded as a JSON object) for the
/// `/runs` endpoint. Called by [`crate::RunManifest::publish`]; cheap and
/// harmless when no server is running.
pub fn publish_manifest(json: &str) {
    let mut runs = RUNS.lock().unwrap_or_else(|e| e.into_inner());
    if runs.len() >= MAX_RUNS {
        runs.remove(0);
    }
    runs.push(json.to_string());
}

/// Clear the published-run buffer (tests).
pub fn reset_runs() {
    RUNS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Handle to a running telemetry server; stops (and joins) on [`stop`]
/// (`TelemetryServer::stop`) or drop.
pub struct TelemetryServer {
    port: u16,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// The port actually bound (useful with a requested port of 0).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Signal the accept loop to exit and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

/// Bind `127.0.0.1:<port>` and serve telemetry until stopped.
pub fn start(port: u16) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let port = listener.local_addr()?.port();
    let _ = STARTED_AT.set(Instant::now());
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("rckt-obs-serve".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    handle_connection(stream);
                }
            }
        })?;
    Ok(TelemetryServer {
        port,
        stop,
        handle: Some(handle),
    })
}

/// Install `server` as the process-wide instance (stopping any previous
/// one). Used by [`crate::init`] for `--serve-metrics`.
pub(crate) fn install(server: TelemetryServer) {
    let prev = GLOBAL
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .replace(server);
    if let Some(p) = prev {
        p.stop();
    }
}

/// Stop the process-wide server installed by [`crate::init`], if any.
pub fn shutdown_global() {
    let prev = GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(p) = prev {
        p.stop();
    }
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until end-of-headers; bodies are ignored (GET only).
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::prometheus::render(),
            ),
            "/healthz" => {
                let uptime = STARTED_AT
                    .get()
                    .map(|t| t.elapsed().as_secs_f64())
                    .unwrap_or(0.0);
                let mut o = crate::json::Obj::new();
                o.str("status", "ok")
                    .f64("uptime_secs", uptime)
                    .str("bin", &crate::manifest::bin_name());
                ("200 OK", "application/json", o.finish() + "\n")
            }
            "/runs" => {
                let runs = RUNS.lock().unwrap_or_else(|e| e.into_inner());
                let body = crate::json::array(runs.iter().cloned()) + "\n";
                ("200 OK", "application/json", body)
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found; try /metrics /healthz /runs\n".to_string(),
            ),
        }
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(port: u16, path: &str) -> String {
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_metrics_healthz_and_runs() {
        let _g = crate::testutil::global_lock();
        crate::metrics::counter("test.serve.hits").add(3);
        publish_manifest("{\"bin\":\"test_serve\"}");
        let server = start(0).unwrap();
        let port = server.port();
        assert_ne!(port, 0);

        let metrics = get(port, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("rckt_test_serve_hits_total"));

        let health = get(port, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert!(health.contains("\"status\":\"ok\""));
        assert!(health.contains("\"uptime_secs\""));

        let runs = get(port, "/runs");
        assert!(runs.starts_with("HTTP/1.1 200 OK"));
        assert!(runs.contains("\"bin\":\"test_serve\""));

        let missing = get(port, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.stop();
        reset_runs();
    }

    #[test]
    fn runs_buffer_is_bounded() {
        let _g = crate::testutil::global_lock();
        reset_runs();
        for i in 0..(MAX_RUNS + 10) {
            publish_manifest(&format!("{{\"i\":{i}}}"));
        }
        let runs = RUNS.lock().unwrap();
        assert_eq!(runs.len(), MAX_RUNS);
        assert_eq!(runs.last().unwrap(), &format!("{{\"i\":{}}}", MAX_RUNS + 9));
        drop(runs);
        reset_runs();
    }

    #[test]
    fn stop_joins_cleanly_and_frees_port() {
        let _g = crate::testutil::global_lock();
        let server = start(0).unwrap();
        let port = server.port();
        server.stop();
        // The listener is gone: either refused, or at minimum a fresh bind
        // on the same port succeeds.
        let rebind = TcpListener::bind(("127.0.0.1", port));
        assert!(rebind.is_ok());
    }
}
