//! Prometheus text exposition (format 0.0.4) of the metrics registry and
//! the span phase table, served by [`crate::serve`] at `/metrics`.
//!
//! Internal metric names use dots (`kernel.matmul.flops`); here they are
//! sanitized to `rckt_kernel_matmul_flops` plus the conventional suffixes
//! (`_total` on counters, `_bucket`/`_sum`/`_count` on histograms). A
//! process-wide label set ([`set_run_label`]) is exported as a
//! `rckt_run_info` info-gauge so dashboards can slice runs by kernel
//! variant, pool width, or gradient shards without per-sample labels.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::metrics::metrics_snapshot;
use crate::span::phase_timings;

static RUN_LABELS: Mutex<BTreeMap<String, String>> = Mutex::new(BTreeMap::new());

static BUILD_INFO: Mutex<Option<(String, String)>> = Mutex::new(None);

/// Install the `rckt_build_info{version,commit} 1` info-gauge, so
/// dashboards can correlate a regression with the deploy that shipped
/// it. Serving binaries call this once at startup with their
/// `CARGO_PKG_VERSION` and [`crate::manifest::git_commit`].
pub fn set_build_info(version: &str, commit: &str) {
    *BUILD_INFO.lock().unwrap_or_else(|e| e.into_inner()) =
        Some((version.to_string(), commit.to_string()));
}

/// The installed `(version, commit)` pair, if any.
pub fn build_info() -> Option<(String, String)> {
    BUILD_INFO.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Set (or overwrite) one key of the process-wide run-info label set,
/// exported as `rckt_run_info{key="value",...} 1`.
pub fn set_run_label(key: &str, value: impl ToString) {
    RUN_LABELS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key.to_string(), value.to_string());
}

/// The current run-info labels, sorted by key.
pub fn run_labels() -> Vec<(String, String)> {
    RUN_LABELS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// Clear the run-info label set (tests).
pub fn reset_run_labels() {
    RUN_LABELS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Sanitize an internal metric name into a valid Prometheus metric name:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and names are
/// prefixed with `rckt_` unless they already carry it.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    if !name.starts_with("rckt_") && !name.starts_with("rckt.") {
        out.push_str("rckt_");
    }
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        // A metric name cannot start with a digit even when prefixed later.
        if ok && !(i == 0 && out.is_empty() && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline must be escaped; everything else passes through.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a float the way Prometheus expects (`+Inf`, `-Inf`, `NaN`).
/// Shared with [`crate::monitor`] so the replay report and the live
/// exposition format floats identically.
pub(crate) fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render the whole registry (counters, gauges, histograms), the span
/// phase table, and the run-info gauge as one exposition document.
///
/// Distinct internal names can sanitize to the same Prometheus family
/// (`a.b` and `a-b` both become `rckt_a_b`, and counter `x` collides
/// with gauge `x_total`); only the first family under a name is emitted
/// (registries iterate sorted, so the winner is deterministic) and the
/// rest are skipped rather than producing an invalid document with a
/// duplicated `# TYPE` line.
pub fn render() -> String {
    let mut out = String::new();
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();

    if let Some((version, commit)) = build_info() {
        out.push_str("# TYPE rckt_build_info gauge\n");
        let _ = writeln!(
            out,
            "rckt_build_info{{version=\"{}\",commit=\"{}\"}} 1",
            escape_label_value(&version),
            escape_label_value(&commit)
        );
    }

    let labels = run_labels();
    if !labels.is_empty() {
        out.push_str("# TYPE rckt_run_info gauge\n");
        out.push_str("rckt_run_info{");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}=\"{}\"", metric_name(k), escape_label_value(v));
        }
        out.push_str("} 1\n");
    }

    for (path, stat) in phase_timings() {
        let esc = escape_label_value(&path);
        let _ = writeln!(
            out,
            "rckt_phase_seconds_total{{phase=\"{esc}\"}} {}",
            fmt_value(stat.secs)
        );
        let _ = writeln!(
            out,
            "rckt_phase_runs_total{{phase=\"{esc}\"}} {}",
            stat.count
        );
    }

    let snap = metrics_snapshot();
    for (name, v) in &snap.counters {
        let n = format!("{}_total", metric_name(name));
        if !seen.insert(n.clone()) {
            continue;
        }
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = metric_name(name);
        if !seen.insert(n.clone()) {
            continue;
        }
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}", fmt_value(*v));
    }
    for h in &snap.histograms {
        let n = metric_name(&h.name);
        if !seen.insert(n.clone()) {
            continue;
        }
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for &(bound, count) in &h.buckets {
            cum += count;
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", fmt_value(bound));
        }
        let _ = writeln!(out, "{n}_sum {}", fmt_value(h.sum));
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter, gauge, histogram_with};

    #[test]
    fn metric_name_sanitizes_and_prefixes() {
        assert_eq!(
            metric_name("kernel.matmul.flops"),
            "rckt_kernel_matmul_flops"
        );
        assert_eq!(metric_name("pool.worker-3/busy"), "rckt_pool_worker_3_busy");
        assert_eq!(metric_name("rckt_already_ok"), "rckt_already_ok");
        assert_eq!(metric_name("héllo"), "rckt_h_llo");
    }

    #[test]
    fn label_value_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("q=\"x\\y\"\nz"), "q=\\\"x\\\\y\\\"\\nz");
    }

    #[test]
    fn fmt_value_special_floats() {
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(0.25), "0.25");
    }

    #[test]
    fn render_covers_all_metric_kinds() {
        let _g = crate::testutil::global_lock();
        counter("test.prom.counter").add(7);
        gauge("test.prom.gauge").set(1.5);
        let h = histogram_with("test.prom.hist", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(9.0);
        {
            let _s = crate::span::span("test_prom_phase");
        }
        set_run_label("kernel", "blocked");
        set_run_label("quoted", "a\"b");

        let text = render();
        assert!(text.contains("# TYPE rckt_test_prom_counter_total counter"));
        assert!(text.contains("rckt_test_prom_counter_total 7"));
        assert!(text.contains("rckt_test_prom_gauge 1.5"));
        // Cumulative buckets: 1 at le=1, still 1 at le=2, 2 at +Inf.
        assert!(text.contains("rckt_test_prom_hist_bucket{le=\"1\"} 1"));
        assert!(text.contains("rckt_test_prom_hist_bucket{le=\"2\"} 1"));
        assert!(text.contains("rckt_test_prom_hist_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("rckt_test_prom_hist_sum 9.5"));
        assert!(text.contains("rckt_test_prom_hist_count 2"));
        assert!(text.contains("rckt_phase_seconds_total{phase=\"test_prom_phase\"}"));
        assert!(text.contains("kernel=\"blocked\""));
        assert!(text.contains("quoted=\"a\\\"b\""));
        assert!(text.contains("rckt_run_info{"));
    }

    #[test]
    fn render_escapes_label_values_in_run_info_and_phases() {
        let _g = crate::testutil::global_lock();
        reset_run_labels();
        set_run_label("esc_quote", "say \"hi\"");
        set_run_label("esc_slash", "C:\\temp");
        set_run_label("esc_newline", "line1\nline2");
        let text = render();
        assert!(text.contains("esc_quote=\"say \\\"hi\\\"\""), "{text}");
        assert!(text.contains("esc_slash=\"C:\\\\temp\""), "{text}");
        assert!(text.contains("esc_newline=\"line1\\nline2\""), "{text}");
        // No raw newline may survive inside a label value: every line of
        // the document must be a comment, a sample, or blank.
        for line in text.lines() {
            assert!(
                line.is_empty() || line.starts_with('#') || line.contains(' '),
                "broken exposition line: {line:?}"
            );
        }
        reset_run_labels();
    }

    #[test]
    fn colliding_sanitized_gauge_names_emit_one_family() {
        let _g = crate::testutil::global_lock();
        // Distinct internal names, same sanitized family.
        gauge("test.collide-g").set(1.0);
        gauge("test.collide.g").set(2.0);
        let text = render();
        let type_lines = text
            .lines()
            .filter(|l| *l == "# TYPE rckt_test_collide_g gauge")
            .count();
        assert_eq!(type_lines, 1, "one TYPE line per family: {text}");
        let samples = text
            .lines()
            .filter(|l| l.starts_with("rckt_test_collide_g "))
            .count();
        assert_eq!(samples, 1, "one sample per family: {text}");
        // Registries iterate sorted ('-' < '.'), so the winner is stable.
        assert!(text.contains("rckt_test_collide_g 1"), "{text}");
    }

    #[test]
    fn counter_total_suffix_collision_with_gauge_is_deduped() {
        let _g = crate::testutil::global_lock();
        // The counter family gets a `_total` suffix that lands exactly on
        // this gauge's sanitized name.
        counter("test.collide2.x").add(3);
        gauge("test.collide2.x_total").set(9.0);
        let text = render();
        let family = "rckt_test_collide2_x_total";
        let samples = text
            .lines()
            .filter(|l| l.starts_with(&format!("{family} ")))
            .count();
        assert_eq!(samples, 1, "{text}");
        // Counters render first, so the counter value wins.
        assert!(text.contains(&format!("# TYPE {family} counter")), "{text}");
        assert!(text.contains(&format!("{family} 3")), "{text}");
        assert!(!text.contains(&format!("# TYPE {family} gauge")), "{text}");
    }

    #[test]
    fn build_info_gauge_carries_version_and_commit() {
        let _g = crate::testutil::global_lock();
        set_build_info("9.9.9-test", "abc123");
        let text = render();
        assert!(
            text.contains("rckt_build_info{version=\"9.9.9-test\",commit=\"abc123\"} 1"),
            "{text}"
        );
        assert!(text.contains("# TYPE rckt_build_info gauge"), "{text}");
    }

    #[test]
    fn run_labels_overwrite_and_reset() {
        let _g = crate::testutil::global_lock();
        set_run_label("test_prom_k", "1");
        set_run_label("test_prom_k", "2");
        assert!(run_labels().contains(&("test_prom_k".to_string(), "2".to_string())));
        reset_run_labels();
        assert!(run_labels().is_empty());
    }
}
