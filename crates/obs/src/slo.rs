//! SLO error budgets and multi-window multi-burn-rate alerting for the
//! serving layer, after the Google SRE workbook's recipe: an objective
//! ("99.9% of `/predict` requests succeed", "99% answer within 250 ms")
//! defines an error-budget rate, and the *burn rate* is how many times
//! faster than that rate the budget is currently being spent. Alerts
//! fire on a burn rate sustained across two windows at once:
//!
//! * **fast**: burn ≥ 14.4 over both the last 5 minutes and the last
//!   hour — a severe, ongoing incident (a 99.9% budget gone in ~2 days);
//! * **slow**: burn ≥ 6 over the last 6 hours — a persistent leak that
//!   will exhaust the budget within the error-budget period.
//!
//! Counts are kept in 10-second buckets covering the 6-hour horizon, so
//! window sums are exact to bucket granularity and memory is bounded
//! (≤ 2160 buckets per objective). The clock is injectable: tests drive
//! a simulated clock through hours of traffic in microseconds, and the
//! offline postmortem twin re-renders burn rates from the serialized
//! bucket series without ever consulting the real time.
//!
//! Gauges are published under `slo.<objective>.*`, which the Prometheus
//! layer exposes as `rckt_slo_*`. Alerts latch: one [`SloAlert`] per
//! breach, re-armed only after the condition clears.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{self, Obj};

/// Fast-pair short window (seconds).
pub const FAST_SHORT_SECS: u64 = 5 * 60;
/// Fast-pair long window (seconds).
pub const FAST_LONG_SECS: u64 = 60 * 60;
/// Slow window (seconds) — also the retention horizon.
pub const SLOW_SECS: u64 = 6 * 60 * 60;
/// Burn-rate threshold for the fast pair.
pub const FAST_BURN: f64 = 14.4;
/// Burn-rate threshold for the slow window.
pub const SLOW_BURN: f64 = 6.0;

const BUCKET_SECS: u64 = 10;

/// One declarative objective over an endpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct SloObjective {
    /// Gauge-friendly name, e.g. `predict_availability`.
    pub name: String,
    /// Endpoint path the objective covers (`/predict`).
    pub endpoint: String,
    /// Target fraction of good requests, e.g. 0.999.
    pub target: f64,
    /// `Some(ms)` makes this a latency objective: a 2xx answered slower
    /// than `ms` is bad, and 5xx responses are left to the availability
    /// objective. `None` makes it an availability objective: 5xx is bad,
    /// 4xx is the client's fault and counts as good.
    pub latency_ms: Option<f64>,
}

/// A parsed `--slo` specification: objectives plus the minimum number
/// of in-window requests before any alert may fire (tiny samples at
/// startup would otherwise page on the first stray error).
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    pub objectives: Vec<SloObjective>,
    pub min_events: u64,
}

impl SloSpec {
    /// The serving defaults: 99.9% availability and 99% ≤ 250 ms on
    /// `/predict`; 99.9% availability and 99% ≤ 1000 ms on `/explain`
    /// (the counterfactual fan-out is an order of magnitude heavier).
    pub fn default_serving() -> SloSpec {
        SloSpec {
            objectives: vec![
                objective("/predict", 0.999, None),
                objective("/predict", 0.99, Some(250.0)),
                objective("/explain", 0.999, None),
                objective("/explain", 0.99, Some(1000.0)),
            ],
            min_events: 10,
        }
    }

    /// Parse a `--slo` flag value: comma-separated objectives, each
    /// `<path>:avail:<pct>` or `<path>:lat<ms>ms:<pct>`, e.g.
    /// `/predict:avail:99.9,/predict:lat250ms:99`. An optional leading
    /// `min=<n>` entry overrides the alert floor.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let mut spec = SloSpec {
            objectives: Vec::new(),
            min_events: 10,
        };
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(n) = part.strip_prefix("min=") {
                spec.min_events = n
                    .parse()
                    .map_err(|_| format!("--slo: invalid min entry {part:?}"))?;
                continue;
            }
            let fields: Vec<&str> = part.split(':').collect();
            if fields.len() != 3 || !fields[0].starts_with('/') {
                return Err(format!(
                    "--slo: objective {part:?} is not <path>:avail:<pct> or <path>:lat<ms>ms:<pct>"
                ));
            }
            let pct: f64 = fields[2]
                .parse()
                .map_err(|_| format!("--slo: invalid percentage in {part:?}"))?;
            if !(0.0..100.0).contains(&pct) {
                return Err(format!(
                    "--slo: target {pct} must be in [0, 100) ({part:?})"
                ));
            }
            let target = pct / 100.0;
            let latency_ms = if fields[1] == "avail" {
                None
            } else if let Some(ms) = fields[1]
                .strip_prefix("lat")
                .and_then(|s| s.strip_suffix("ms"))
            {
                let ms: f64 = ms
                    .parse()
                    .map_err(|_| format!("--slo: invalid latency in {part:?}"))?;
                if !(ms > 0.0) {
                    return Err(format!("--slo: latency must be positive ({part:?})"));
                }
                Some(ms)
            } else {
                return Err(format!(
                    "--slo: kind {:?} is not `avail` or `lat<ms>ms` ({part:?})",
                    fields[1]
                ));
            };
            spec.objectives
                .push(objective(fields[0], target, latency_ms));
        }
        if spec.objectives.is_empty() {
            return Err("--slo: no objectives given".to_string());
        }
        Ok(spec)
    }
}

fn objective(endpoint: &str, target: f64, latency_ms: Option<f64>) -> SloObjective {
    let base = endpoint.trim_matches('/').replace('/', "_");
    let kind = if latency_ms.is_some() {
        "latency"
    } else {
        "availability"
    };
    SloObjective {
        name: format!("{base}_{kind}"),
        endpoint: endpoint.to_string(),
        target,
        latency_ms,
    }
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    /// Bucket index: unix seconds / `BUCKET_SECS`.
    idx: u64,
    good: u64,
    bad: u64,
}

/// Bucketed good/bad counts over the retention horizon.
#[derive(Clone, Debug, Default)]
struct Series {
    buckets: VecDeque<Bucket>,
}

impl Series {
    fn record(&mut self, now_secs: u64, good: bool) {
        let idx = now_secs / BUCKET_SECS;
        match self.buckets.back_mut() {
            Some(b) if b.idx == idx => {
                if good {
                    b.good += 1;
                } else {
                    b.bad += 1;
                }
            }
            _ => self.buckets.push_back(Bucket {
                idx,
                good: u64::from(good),
                bad: u64::from(!good),
            }),
        }
        let horizon = idx.saturating_sub(SLOW_SECS / BUCKET_SECS);
        while self.buckets.front().is_some_and(|b| b.idx < horizon) {
            self.buckets.pop_front();
        }
    }

    /// `(good, bad)` inside the trailing `window_secs` ending at `now`.
    fn sums(&self, now_secs: u64, window_secs: u64) -> (u64, u64) {
        let from = (now_secs / BUCKET_SECS).saturating_sub(window_secs / BUCKET_SECS);
        let mut good = 0;
        let mut bad = 0;
        for b in self.buckets.iter().rev() {
            if b.idx <= from {
                break;
            }
            good += b.good;
            bad += b.bad;
        }
        (good, bad)
    }
}

/// One latched burn-rate breach, fired exactly once per transition into
/// the bad region.
#[derive(Clone, Debug, PartialEq)]
pub struct SloAlert {
    pub objective: String,
    /// `fast` (5m/1h pair) or `slow` (6h).
    pub window: &'static str,
    /// The burn rate that tripped the alert (the smaller of the pair for
    /// fast alerts — both windows exceeded the threshold).
    pub burn_rate: f64,
    pub threshold: f64,
}

struct ObjState {
    spec: SloObjective,
    series: Series,
    good_total: u64,
    bad_total: u64,
    burn_fast_short: f64,
    burn_fast_long: f64,
    burn_slow: f64,
    fast_active: bool,
    slow_active: bool,
}

/// Clock injected into the engine: unix seconds.
pub type SloClock = Arc<dyn Fn() -> u64 + Send + Sync>;

fn system_clock() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The evaluation engine: feed it one `(path, status, latency)` per
/// served request, collect latched [`SloAlert`]s, publish gauges, and
/// serialize the whole state into a postmortem bundle.
pub struct SloEngine {
    objectives: Vec<ObjState>,
    min_events: u64,
    clock: SloClock,
    last_eval_idx: u64,
}

impl SloEngine {
    pub fn new(spec: SloSpec) -> SloEngine {
        SloEngine::with_clock(spec, Arc::new(system_clock))
    }

    pub fn with_clock(spec: SloSpec, clock: SloClock) -> SloEngine {
        let min_events = spec.min_events;
        SloEngine {
            objectives: spec
                .objectives
                .into_iter()
                .map(|spec| ObjState {
                    spec,
                    series: Series::default(),
                    good_total: 0,
                    bad_total: 0,
                    burn_fast_short: 0.0,
                    burn_fast_long: 0.0,
                    burn_slow: 0.0,
                    fast_active: false,
                    slow_active: false,
                })
                .collect(),
            min_events,
            clock,
            last_eval_idx: u64::MAX,
        }
    }

    /// Account one request against every objective covering its path.
    /// The caller filters out self-scraping paths (`/debug/*`,
    /// `/healthz`, `/metrics`) before calling.
    pub fn record(&mut self, path: &str, status: u64, latency_secs: f64) {
        let now = (self.clock)();
        for o in self
            .objectives
            .iter_mut()
            .filter(|o| o.spec.endpoint == path)
        {
            let good = match o.spec.latency_ms {
                // Availability: 5xx burns budget, 4xx is the client's.
                None => status < 500,
                // Latency: only successful answers are measured.
                Some(ms) => {
                    if !(200..300).contains(&status) {
                        continue;
                    }
                    latency_secs * 1e3 <= ms
                }
            };
            o.series.record(now, good);
            if good {
                o.good_total += 1;
            } else {
                o.bad_total += 1;
            }
        }
    }

    /// Recompute burn rates and return alerts for fresh breaches. Cheap
    /// to call per request: sums are recomputed at most once per clock
    /// second (window edges cannot move faster than the clock).
    pub fn evaluate(&mut self) -> Vec<SloAlert> {
        let now = (self.clock)();
        if self.last_eval_idx == now {
            return Vec::new();
        }
        self.last_eval_idx = now;
        let min_events = self.min_events;
        let mut fired = Vec::new();
        for o in &mut self.objectives {
            let budget = 1.0 - o.spec.target;
            let burn = |series: &Series, window: u64| -> (f64, u64) {
                let (good, bad) = series.sums(now, window);
                let total = good + bad;
                if total == 0 || budget <= 0.0 {
                    return (0.0, total);
                }
                ((bad as f64 / total as f64) / budget, total)
            };
            let (b_short, n_short) = burn(&o.series, FAST_SHORT_SECS);
            let (b_long, n_long) = burn(&o.series, FAST_LONG_SECS);
            let (b_slow, n_slow) = burn(&o.series, SLOW_SECS);
            o.burn_fast_short = b_short;
            o.burn_fast_long = b_long;
            o.burn_slow = b_slow;

            let fast_now =
                b_short >= FAST_BURN && b_long >= FAST_BURN && n_short.min(n_long) >= min_events;
            if fast_now && !o.fast_active {
                fired.push(SloAlert {
                    objective: o.spec.name.clone(),
                    window: "fast",
                    burn_rate: b_short.min(b_long),
                    threshold: FAST_BURN,
                });
            }
            o.fast_active = fast_now;

            let slow_now = b_slow >= SLOW_BURN && n_slow >= min_events;
            if slow_now && !o.slow_active {
                fired.push(SloAlert {
                    objective: o.spec.name.clone(),
                    window: "slow",
                    burn_rate: b_slow,
                    threshold: SLOW_BURN,
                });
            }
            o.slow_active = slow_now;
        }
        fired
    }

    /// Every gauge the engine exports, as `(dotted name, value)` — the
    /// Prometheus layer renders them as `rckt_slo_*`.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        let mut g = Vec::with_capacity(self.objectives.len() * 7);
        for o in &self.objectives {
            let n = &o.spec.name;
            g.push((format!("slo.{n}.target"), o.spec.target));
            g.push((format!("slo.{n}.burn_rate_5m"), o.burn_fast_short));
            g.push((format!("slo.{n}.burn_rate_1h"), o.burn_fast_long));
            g.push((format!("slo.{n}.burn_rate_6h"), o.burn_slow));
            g.push((format!("slo.{n}.good"), o.good_total as f64));
            g.push((format!("slo.{n}.bad"), o.bad_total as f64));
            let breached = f64::from(u8::from(o.fast_active || o.slow_active));
            g.push((format!("slo.{n}.breached"), breached));
        }
        g
    }

    /// Publish [`SloEngine::gauges`] into the global metrics registry.
    pub fn publish_gauges(&self) {
        for (name, v) in self.gauges() {
            crate::metrics::gauge(&name).set(v);
        }
    }

    /// The whole engine as one JSON object — the `slo` section of a
    /// postmortem bundle and the body of `GET /debug/slo`. Bucket series
    /// are included so the offline twin can re-render burn-rate history.
    pub fn snapshot_json(&self) -> String {
        let now = (self.clock)();
        let objs = self.objectives.iter().map(|o| {
            let buckets = o
                .series
                .buckets
                .iter()
                .map(|b| format!("[{},{},{}]", b.idx * BUCKET_SECS, b.good, b.bad));
            let mut j = Obj::new();
            j.str("name", &o.spec.name)
                .str("endpoint", &o.spec.endpoint)
                .f64("target", o.spec.target);
            match o.spec.latency_ms {
                Some(ms) => j.f64("latency_ms", ms),
                None => j.raw("latency_ms", "null"),
            };
            j.f64("burn_rate_5m", o.burn_fast_short)
                .f64("burn_rate_1h", o.burn_fast_long)
                .f64("burn_rate_6h", o.burn_slow)
                .bool("fast_active", o.fast_active)
                .bool("slow_active", o.slow_active)
                .u64("good_total", o.good_total)
                .u64("bad_total", o.bad_total)
                .raw("buckets", &json::array(buckets));
            j.finish()
        });
        let mut out = Obj::new();
        out.u64("now", now)
            .u64("min_events", self.min_events)
            .u64("bucket_secs", BUCKET_SECS)
            .f64("fast_burn_threshold", FAST_BURN)
            .f64("slow_burn_threshold", SLOW_BURN)
            .raw("objectives", &json::array(objs));
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sim_engine(spec: SloSpec) -> (SloEngine, Arc<AtomicU64>) {
        let t = Arc::new(AtomicU64::new(1_000_000));
        let tc = Arc::clone(&t);
        let engine = SloEngine::with_clock(spec, Arc::new(move || tc.load(Ordering::SeqCst)));
        (engine, t)
    }

    fn avail_spec() -> SloSpec {
        SloSpec {
            objectives: vec![objective("/predict", 0.999, None)],
            min_events: 10,
        }
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let s = SloSpec::parse("/predict:avail:99.9,/predict:lat250ms:99,min=5").unwrap();
        assert_eq!(s.min_events, 5);
        assert_eq!(s.objectives.len(), 2);
        assert_eq!(s.objectives[0].name, "predict_availability");
        assert!((s.objectives[0].target - 0.999).abs() < 1e-12);
        assert_eq!(s.objectives[1].name, "predict_latency");
        assert_eq!(s.objectives[1].latency_ms, Some(250.0));

        for bad in [
            "",
            "predict:avail:99.9",
            "/predict:avail:150",
            "/predict:lat:99",
            "/predict:latms:99",
            "/predict:lat-5ms:99",
            "/predict:avail:99.9:extra",
            "min=abc",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn burst_of_errors_fires_fast_alert_once_and_rearms() {
        let (mut e, t) = sim_engine(avail_spec());
        // Healthy traffic for 10 minutes.
        for s in 0..600 {
            t.store(1_000_000 + s, Ordering::SeqCst);
            e.record("/predict", 200, 0.01);
            assert!(e.evaluate().is_empty(), "healthy traffic must not alert");
        }
        // A shed burst: 30 consecutive 503s. Error ratio in the 5m
        // window ≈ 30/330 ≈ 9% → burn ≈ 91 ≫ 14.4; the 1h window is
        // diluted but still over.
        let mut alerts = Vec::new();
        for s in 600..630 {
            t.store(1_000_000 + s, Ordering::SeqCst);
            e.record("/predict", 503, 0.0);
            alerts.extend(e.evaluate());
        }
        let fast: Vec<_> = alerts.iter().filter(|a| a.window == "fast").collect();
        assert_eq!(fast.len(), 1, "one latched fast alert: {alerts:?}");
        assert_eq!(fast[0].objective, "predict_availability");
        assert!(fast[0].burn_rate >= FAST_BURN);

        // Recovery: the 5m window drains below threshold → latch re-arms,
        // then a second burst fires a second alert.
        for s in 630..1300 {
            t.store(1_000_000 + s, Ordering::SeqCst);
            e.record("/predict", 200, 0.01);
            let a = e.evaluate();
            assert!(a.iter().all(|a| a.window != "fast"), "{a:?}");
        }
        let mut second = Vec::new();
        for s in 1300..1400 {
            t.store(1_000_000 + s, Ordering::SeqCst);
            e.record("/predict", 503, 0.0);
            second.extend(e.evaluate());
        }
        assert_eq!(
            second.iter().filter(|a| a.window == "fast").count(),
            1,
            "re-armed latch fires exactly once more: {second:?}"
        );
    }

    #[test]
    fn slow_leak_fires_slow_window_only() {
        let (mut e, t) = sim_engine(avail_spec());
        // Healthy warmup, then a persistent 1% error leak: burn 10 in
        // the 5m window but only ~10 in the diluted 1h window too —
        // both below the fast threshold of 14.4 once the warmup has
        // filled the long window — while the 6h window climbs past 6.
        let mut alerts = Vec::new();
        for s in 0..1_000u64 {
            t.store(1_000_000 + s, Ordering::SeqCst);
            e.record("/predict", 200, 0.01);
            alerts.extend(e.evaluate());
        }
        for s in 1_000..18_000u64 {
            t.store(1_000_000 + s, Ordering::SeqCst);
            let status = if s % 100 == 0 { 503 } else { 200 };
            e.record("/predict", status, 0.01);
            alerts.extend(e.evaluate());
        }
        assert!(
            alerts.iter().any(|a| a.window == "slow"),
            "1% sustained errors at 0.1% budget must trip the slow window: {alerts:?}"
        );
        assert!(
            alerts.iter().all(|a| a.window != "fast"),
            "burn 10 is below the fast threshold: {alerts:?}"
        );
    }

    #[test]
    fn min_events_suppresses_cold_start_pages() {
        let (mut e, t) = sim_engine(avail_spec());
        // The very first request is a 503 — 100% error ratio, but only
        // one sample; must stay quiet below min_events.
        for s in 0..5 {
            t.store(1_000_000 + s, Ordering::SeqCst);
            e.record("/predict", 503, 0.0);
            assert!(e.evaluate().is_empty(), "below min_events");
        }
        for s in 5..15 {
            t.store(1_000_000 + s, Ordering::SeqCst);
            e.record("/predict", 503, 0.0);
        }
        assert!(!e.evaluate().is_empty(), "past min_events the page fires");
    }

    #[test]
    fn latency_objective_counts_slow_successes_only() {
        let spec = SloSpec {
            objectives: vec![objective("/predict", 0.99, Some(100.0))],
            min_events: 1,
        };
        let (mut e, t) = sim_engine(spec);
        t.store(1_000_000, Ordering::SeqCst);
        e.record("/predict", 200, 0.050); // good
        e.record("/predict", 200, 0.500); // bad: over 100ms
        e.record("/predict", 503, 9.0); // ignored: availability's problem
        e.record("/explain", 200, 9.0); // ignored: other endpoint
        let g = e.gauges();
        let get = |k: &str| {
            g.iter()
                .find(|(n, _)| n == &format!("slo.predict_latency.{k}"))
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("good"), 1.0);
        assert_eq!(get("bad"), 1.0);
    }

    #[test]
    fn windows_forget_old_traffic() {
        let (mut e, t) = sim_engine(avail_spec());
        for s in 0..100 {
            t.store(1_000_000 + s, Ordering::SeqCst);
            e.record("/predict", 503, 0.0);
        }
        // 7 hours later everything has aged out of even the slow window.
        t.store(1_000_000 + 7 * 3600, Ordering::SeqCst);
        e.record("/predict", 200, 0.01);
        e.evaluate();
        let g = e.gauges();
        for k in ["burn_rate_5m", "burn_rate_1h", "burn_rate_6h"] {
            let v = g
                .iter()
                .find(|(n, _)| n == &format!("slo.predict_availability.{k}"))
                .map(|(_, v)| *v)
                .unwrap();
            assert_eq!(v, 0.0, "{k} must have forgotten the old burst");
        }
    }

    #[test]
    fn snapshot_round_trips_and_carries_bucket_series() {
        let (mut e, t) = sim_engine(avail_spec());
        t.store(1_000_000, Ordering::SeqCst);
        for _ in 0..20 {
            e.record("/predict", 200, 0.01);
        }
        e.record("/predict", 503, 0.0);
        e.evaluate();
        let snap = crate::json::parse(&e.snapshot_json()).unwrap();
        let objs = snap.get("objectives").unwrap().as_array().unwrap();
        assert_eq!(objs.len(), 1);
        let o = &objs[0];
        assert_eq!(
            o.get("name").unwrap().as_str(),
            Some("predict_availability")
        );
        assert_eq!(o.get("good_total").unwrap().as_f64(), Some(20.0));
        assert_eq!(o.get("bad_total").unwrap().as_f64(), Some(1.0));
        let buckets = o.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 1, "one 10s bucket for one instant");
        let row = buckets[0].as_array().unwrap();
        assert_eq!(row[1].as_f64(), Some(20.0));
        assert_eq!(row[2].as_f64(), Some(1.0));
    }

    #[test]
    fn default_spec_covers_predict_and_explain() {
        let s = SloSpec::default_serving();
        let names: Vec<&str> = s.objectives.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "predict_availability",
                "predict_latency",
                "explain_availability",
                "explain_latency"
            ]
        );
    }
}
