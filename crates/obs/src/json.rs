//! Minimal JSON encoding (objects, arrays, scalars) for the event and
//! manifest sinks. Encoding only — parsing stays with `serde_json` in the
//! crates that already depend on it. Keeping the encoder here lets
//! `rckt-obs` stay dependency-free so every crate can link it.

use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A JSON number; non-finite floats become `null` (JSON has no NaN/inf).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON array from already-encoded element strings.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, it) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&it);
    }
    out.push(']');
    out
}

/// Incremental JSON object builder.
#[derive(Default)]
pub struct Obj {
    body: String,
}

impl Obj {
    pub fn new() -> Self {
        Obj::default()
    }

    /// Add a field whose value is already valid JSON.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "{}:{}", string(key), value);
        self
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let v = string(value);
        self.raw(key, &v)
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        let v = value.to_string();
        self.raw(key, &v)
    }

    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        let v = value.to_string();
        self.raw(key, &v)
    }

    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let v = number(value);
        self.raw(key, &v)
    }

    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        let v = if value { "true" } else { "false" };
        self.raw(key, v)
    }

    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hé✓"), "\"hé✓\"");
    }

    #[test]
    fn numbers_and_nonfinite() {
        assert_eq!(number(1.0), "1");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builder_produces_valid_json() {
        let mut o = Obj::new();
        o.str("name", "x\"y")
            .u64("n", 3)
            .f64("v", 0.5)
            .bool("ok", true)
            .raw("arr", "[1,2]");
        assert_eq!(
            o.finish(),
            "{\"name\":\"x\\\"y\",\"n\":3,\"v\":0.5,\"ok\":true,\"arr\":[1,2]}"
        );
        assert_eq!(Obj::new().finish(), "{}");
    }

    #[test]
    fn array_joins_encoded_items() {
        assert_eq!(
            array(vec!["1".to_string(), "\"a\"".to_string()]),
            "[1,\"a\"]"
        );
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
