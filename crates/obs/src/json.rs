//! Minimal JSON encoding (objects, arrays, scalars) for the event and
//! manifest sinks, plus a small strict parser ([`parse`]) so the bench
//! regression gate can read manifest histories back. Keeping both here
//! lets `rckt-obs` stay dependency-free so every crate can link it;
//! crates that already depend on `serde_json` keep using it for their
//! own formats.

use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// [`escape`], appended to an existing buffer — the allocation-free form
/// the hot encoders (flight ring, event sink) use.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A quoted, escaped JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A JSON number; non-finite floats become `null` (JSON has no NaN/inf).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON array from already-encoded element strings.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, it) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&it);
    }
    out.push(']');
    out
}

/// Incremental JSON object builder.
#[derive(Default)]
pub struct Obj {
    body: String,
}

impl Obj {
    pub fn new() -> Self {
        Obj::default()
    }

    /// An empty builder whose buffer can hold `bytes` of body without
    /// reallocating — for fixed-shape records on hot paths.
    pub fn with_capacity(bytes: usize) -> Self {
        Obj {
            body: String::with_capacity(bytes),
        }
    }

    /// Append `,"key":` (escaping the key) directly into the body.
    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push('"');
        escape_into(&mut self.body, key);
        self.body.push_str("\":");
    }

    /// Add a field whose value is already valid JSON.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.body.push_str(value);
        self
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.body.push('"');
        escape_into(&mut self.body, value);
        self.body.push('"');
        self
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.body, "{value}");
        } else {
            self.body.push_str("null");
        }
        self
    }

    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// A parsed JSON document. Object keys keep insertion order (manifest
/// configs are ordered); duplicate keys keep the last value on lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|_| JsonValue::Null),
        Some(b't') => expect(b, pos, "true").map(|_| JsonValue::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| JsonValue::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {}", *pos));
                }
                *pos += 1;
                let value = parse_value(b, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(JsonValue::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let cp = parse_hex4(b, pos)?;
                        // Combine surrogate pairs; a lone surrogate
                        // becomes the replacement character.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined).unwrap_or('\u{FFFD}')
                            } else {
                                '\u{FFFD}'
                            }
                        } else {
                            char::from_u32(cp).unwrap_or('\u{FFFD}')
                        };
                        out.push(c);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            Some(&c) if c < 0x20 => return Err("control character in string".to_string()),
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let hex = b
        .get(*pos..*pos + 4)
        .ok_or("truncated \\u escape")
        .and_then(|s| std::str::from_utf8(s).map_err(|_| "bad \\u escape"))
        .map_err(|e| e.to_string())?;
    let v = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
    *pos += 4;
    Ok(v)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hé✓"), "\"hé✓\"");
    }

    #[test]
    fn numbers_and_nonfinite() {
        assert_eq!(number(1.0), "1");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_builder_produces_valid_json() {
        let mut o = Obj::new();
        o.str("name", "x\"y")
            .u64("n", 3)
            .f64("v", 0.5)
            .bool("ok", true)
            .raw("arr", "[1,2]");
        assert_eq!(
            o.finish(),
            "{\"name\":\"x\\\"y\",\"n\":3,\"v\":0.5,\"ok\":true,\"arr\":[1,2]}"
        );
        assert_eq!(Obj::new().finish(), "{}");
    }

    #[test]
    fn array_joins_encoded_items() {
        assert_eq!(
            array(vec!["1".to_string(), "\"a\"".to_string()]),
            "[1,\"a\"]"
        );
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn parse_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), JsonValue::Num(-250.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
        assert_eq!(
            parse("[1, 2, []]").unwrap(),
            JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0),
                JsonValue::Arr(vec![])
            ])
        );
        let v = parse("{\"a\": {\"b\": [1, \"x\"]}, \"c\": false}").unwrap();
        assert_eq!(
            v.get("a")
                .and_then(|a| a.get("b"))
                .and_then(|b| b.as_array()),
            Some(&[JsonValue::Num(1.0), JsonValue::Str("x".into())][..])
        );
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(false)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_string_escapes_and_unicode() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\\n\\t\\u0041\"").unwrap(),
            JsonValue::Str("a\"b\\c\n\tA".into())
        );
        // Surrogate pair → one astral scalar.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".into())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(
            parse("\"héllo✓\"").unwrap(),
            JsonValue::Str("héllo✓".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_round_trips_encoder_output() {
        let mut o = Obj::new();
        o.str("name", "x\"y\nz")
            .u64("n", 42)
            .f64("v", 0.125)
            .bool("ok", true)
            .raw("arr", &array(vec![number(1.0), string("s")]));
        let v = parse(&o.finish()).unwrap();
        assert_eq!(v.get("name").and_then(|s| s.as_str()), Some("x\"y\nz"));
        assert_eq!(v.get("n").and_then(|n| n.as_f64()), Some(42.0));
        assert_eq!(v.get("v").and_then(|n| n.as_f64()), Some(0.125));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        // A manifest line round-trips too.
        let m = crate::manifest::RunManifest {
            bin: "b".into(),
            config: vec![("kernel".into(), "blocked".into())],
            results: vec![("gflops".into(), 3.5)],
            ..Default::default()
        };
        let v = parse(&m.to_json()).unwrap();
        assert_eq!(
            v.get("config")
                .and_then(|c| c.get("kernel"))
                .and_then(|k| k.as_str()),
            Some("blocked")
        );
        assert_eq!(
            v.get("results")
                .and_then(|r| r.get("gflops"))
                .and_then(|g| g.as_f64()),
            Some(3.5)
        );
    }
}
