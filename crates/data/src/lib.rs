//! # rckt-data
//!
//! Datasets for the RCKT knowledge-tracing reproduction:
//!
//! * [`types`] — interactions, response sequences, Q-matrix, datasets.
//! * [`synthetic`] — an IRT-style student simulator with presets mirroring
//!   the paper's four datasets (ASSIST09/12, Slepemapy, Eedi) at CPU scale;
//!   it satisfies the monotonicity assumption by construction.
//! * [`preprocess`] — the paper's length-50 windowing plus model batches.
//! * [`split`] — five-fold cross-validation with a 10% validation carve-out.
//! * [`stats`] — Table II statistics.
//! * [`csv`] — loader for real response logs.
//!
//! ```
//! use rckt_data::synthetic::SyntheticSpec;
//! use rckt_data::preprocess::{windows, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN};
//! use rckt_data::split::KFold;
//!
//! let ds = SyntheticSpec::assist09().scaled(0.05).generate();
//! let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
//! let folds = KFold::paper(42).split(ws.len());
//! assert_eq!(folds.len(), 5);
//! ```

pub mod csv;
pub mod preprocess;
pub mod split;
pub mod stats;
pub mod synthetic;
pub mod types;

pub use preprocess::{make_batches, windows, Batch, Window};
pub use split::{Fold, KFold};
pub use stats::DatasetStats;
pub use synthetic::{QuestionPolicy, SyntheticSpec};
pub use types::{ConceptId, Dataset, Interaction, QMatrix, QuestionId, ResponseSeq};
