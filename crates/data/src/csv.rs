//! Loader for real response-log CSVs (for users who have the original
//! ASSISTments/Slepemapy/Eedi downloads).
//!
//! Expected header and row format (comma-separated):
//!
//! ```text
//! student,question,concepts,correct,timestamp
//! 17,403,"12;37",1,1284
//! ```
//!
//! `concepts` is a `;`-separated list. Raw ids are arbitrary strings and are
//! densified in first-seen order. Rows are grouped by student and sorted by
//! timestamp.

use crate::types::{ConceptId, Dataset, Interaction, QMatrix, ResponseSeq};
use std::collections::HashMap;
use std::fmt;

#[derive(Debug)]
pub enum CsvError {
    /// Line number (1-based) and description.
    Parse(usize, String),
    Io(std::io::Error),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            CsvError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse CSV text into a [`Dataset`].
pub fn parse_csv(name: &str, text: &str) -> Result<Dataset, CsvError> {
    let mut students: HashMap<String, u32> = HashMap::new();
    let mut questions: HashMap<String, u32> = HashMap::new();
    let mut concepts: HashMap<String, ConceptId> = HashMap::new();
    let mut q_concepts: Vec<Vec<ConceptId>> = Vec::new();
    let mut rows: Vec<(u32, Interaction)> = Vec::new();

    for (ln, line) in text.lines().enumerate() {
        let lineno = ln + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if ln == 0 && line.to_lowercase().starts_with("student") {
            continue; // header
        }
        let fields = split_csv_line(line);
        if fields.len() != 5 {
            return Err(CsvError::Parse(
                lineno,
                format!("expected 5 fields, got {}", fields.len()),
            ));
        }
        let n_students = students.len() as u32;
        let student = *students.entry(fields[0].clone()).or_insert(n_students);
        let n_questions = questions.len() as u32;
        let question = *questions.entry(fields[1].clone()).or_insert_with(|| {
            q_concepts.push(Vec::new());
            n_questions
        });
        let tags: Vec<ConceptId> = fields[2]
            .split(';')
            .filter(|s| !s.trim().is_empty())
            .map(|raw| {
                let n = concepts.len() as ConceptId;
                *concepts.entry(raw.trim().to_string()).or_insert(n)
            })
            .collect();
        if tags.is_empty() {
            return Err(CsvError::Parse(lineno, "question has no concepts".into()));
        }
        let qc = &mut q_concepts[question as usize];
        if qc.is_empty() {
            *qc = tags;
        }
        let correct = match fields[3].trim() {
            "0" => false,
            "1" => true,
            other => {
                return Err(CsvError::Parse(
                    lineno,
                    format!("correct must be 0/1, got {other:?}"),
                ))
            }
        };
        let timestamp: u64 = fields[4]
            .trim()
            .parse()
            .map_err(|_| CsvError::Parse(lineno, format!("bad timestamp {:?}", fields[4])))?;
        rows.push((
            student,
            Interaction {
                question,
                correct,
                timestamp,
            },
        ));
    }

    let mut by_student: HashMap<u32, Vec<Interaction>> = HashMap::new();
    for (s, it) in rows {
        by_student.entry(s).or_default().push(it);
    }
    let mut sequences: Vec<ResponseSeq> = by_student
        .into_iter()
        .map(|(student, mut interactions)| {
            interactions.sort_by_key(|i| i.timestamp);
            ResponseSeq {
                student,
                interactions,
            }
        })
        .collect();
    sequences.sort_by_key(|s| s.student);

    Ok(Dataset {
        name: name.to_string(),
        sequences,
        q_matrix: QMatrix::new(q_concepts, concepts.len().max(1)),
    })
}

/// Load a dataset from a CSV file on disk.
pub fn load_csv(name: &str, path: &std::path::Path) -> Result<Dataset, CsvError> {
    let text = std::fs::read_to_string(path)?;
    parse_csv(name, &text)
}

/// Minimal CSV field splitter with double-quote support (enough for the
/// `"12;37"` concept lists the format uses).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
student,question,concepts,correct,timestamp
a,q1,\"k1;k2\",1,3
a,q2,k1,0,1
b,q1,\"k1;k2\",0,5
";

    #[test]
    fn parses_and_densifies() {
        let ds = parse_csv("t", SAMPLE).unwrap();
        assert_eq!(ds.sequences.len(), 2);
        assert_eq!(ds.num_questions(), 2);
        assert_eq!(ds.num_concepts(), 2);
        // student a's responses sorted by timestamp: q2 then q1
        assert_eq!(ds.sequences[0].interactions[0].question, 1);
        assert_eq!(ds.sequences[0].interactions[1].question, 0);
        assert_eq!(ds.q_matrix.concepts_of(0).len(), 2);
    }

    #[test]
    fn rejects_bad_correct_flag() {
        let bad = "student,question,concepts,correct,timestamp\na,q,k,yes,1\n";
        let err = parse_csv("t", bad).unwrap_err();
        assert!(matches!(err, CsvError::Parse(2, _)));
    }

    #[test]
    fn rejects_wrong_arity() {
        let bad = "a,q,k,1\n";
        assert!(parse_csv("t", bad).is_err());
    }

    #[test]
    fn roundtrip_through_windows() {
        let ds = parse_csv("t", SAMPLE).unwrap();
        let ws = crate::preprocess::windows(&ds, 10, 1);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].len, 2);
    }
}
