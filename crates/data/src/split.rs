//! Cross-validation splits (Sec. V-A2: five-fold CV, 10% of training
//! sequences held out for validation / early stopping).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One train/validation/test split over item indices.
#[derive(Clone, Debug)]
pub struct Fold {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
    pub test: Vec<usize>,
}

/// Deterministic k-fold splitter.
#[derive(Clone, Copy, Debug)]
pub struct KFold {
    pub folds: usize,
    /// Fraction of the non-test items carved out for validation.
    pub val_frac: f64,
    pub seed: u64,
}

impl KFold {
    /// The paper's setting: 5 folds, 10% validation.
    pub fn paper(seed: u64) -> Self {
        KFold {
            folds: 5,
            val_frac: 0.10,
            seed,
        }
    }

    /// Split `n` items into `self.folds` folds.
    pub fn split(&self, n: usize) -> Vec<Fold> {
        assert!(self.folds >= 2, "need at least 2 folds");
        assert!(n >= self.folds, "fewer items than folds");
        assert!((0.0..1.0).contains(&self.val_frac));
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        idx.shuffle(&mut rng);

        let mut folds = Vec::with_capacity(self.folds);
        for f in 0..self.folds {
            let lo = n * f / self.folds;
            let hi = n * (f + 1) / self.folds;
            let test: Vec<usize> = idx[lo..hi].to_vec();
            let rest: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
            let n_val = ((rest.len() as f64) * self.val_frac).round() as usize;
            let n_val = n_val.min(rest.len().saturating_sub(1)).max(1);
            let val = rest[..n_val].to_vec();
            let train = rest[n_val..].to_vec();
            folds.push(Fold { train, val, test });
        }
        folds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn folds_partition_test_sets() {
        let kf = KFold::paper(42);
        let folds = kf.split(103);
        assert_eq!(folds.len(), 5);
        let mut all_test = HashSet::new();
        for f in &folds {
            for &i in &f.test {
                assert!(all_test.insert(i), "index {i} in two test folds");
            }
        }
        assert_eq!(all_test.len(), 103);
    }

    #[test]
    fn train_val_test_disjoint_and_complete() {
        let folds = KFold::paper(7).split(50);
        for f in &folds {
            let mut seen = HashSet::new();
            for &i in f.train.iter().chain(&f.val).chain(&f.test) {
                assert!(seen.insert(i));
            }
            assert_eq!(seen.len(), 50);
            assert!(!f.val.is_empty());
            assert!(!f.train.is_empty());
        }
    }

    #[test]
    fn val_fraction_respected() {
        let folds = KFold {
            folds: 5,
            val_frac: 0.10,
            seed: 1,
        }
        .split(1000);
        for f in &folds {
            let non_test = f.train.len() + f.val.len();
            let frac = f.val.len() as f64 / non_test as f64;
            assert!((frac - 0.10).abs() < 0.01, "val frac {frac}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = KFold::paper(9).split(40);
        let b = KFold::paper(9).split(40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.test, y.test);
            assert_eq!(x.train, y.train);
        }
    }
}
