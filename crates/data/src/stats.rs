//! Dataset statistics in the shape of the paper's Table II.

use crate::preprocess::Window;
use crate::types::Dataset;
use std::fmt;

/// The Table II row set for one dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    pub name: String,
    pub num_responses: usize,
    /// Number of preprocessed windows ("#sequence" in the paper).
    pub num_sequences: usize,
    pub num_questions: usize,
    pub num_concepts: usize,
    pub concepts_per_question: f64,
    pub correct_rate: f64,
}

impl DatasetStats {
    pub fn compute(ds: &Dataset, windows: &[Window]) -> Self {
        DatasetStats {
            name: ds.name.clone(),
            num_responses: windows.iter().map(|w| w.len).sum(),
            num_sequences: windows.len(),
            num_questions: ds.num_questions(),
            num_concepts: ds.num_concepts(),
            concepts_per_question: ds.q_matrix.concepts_per_question(),
            correct_rate: {
                let total: usize = windows.iter().map(|w| w.len).sum();
                let correct: usize = windows
                    .iter()
                    .map(|w| {
                        w.correct[..w.len]
                            .iter()
                            .map(|&c| c as usize)
                            .sum::<usize>()
                    })
                    .sum();
                if total == 0 {
                    0.0
                } else {
                    correct as f64 / total as f64
                }
            },
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dataset            {}", self.name)?;
        writeln!(f, "#response          {}", self.num_responses)?;
        writeln!(f, "#sequence          {}", self.num_sequences)?;
        writeln!(f, "#question          {}", self.num_questions)?;
        writeln!(f, "#concept           {}", self.num_concepts)?;
        writeln!(f, "#concept/question  {:.2}", self.concepts_per_question)?;
        write!(f, "%correct responses {:.2}", self.correct_rate)
    }
}

/// Render several datasets as one Table II-style text table.
pub fn table2(stats: &[DatasetStats]) -> String {
    let mut s = String::new();
    let w = 12;
    s.push_str(&format!("{:<20}", "Dataset"));
    for st in stats {
        s.push_str(&format!("{:>w$}", st.name, w = w));
    }
    s.push('\n');
    type RowGetter = Box<dyn Fn(&DatasetStats) -> String>;
    let rows: Vec<(&str, RowGetter)> = vec![
        (
            "#response",
            Box::new(|st: &DatasetStats| st.num_responses.to_string()),
        ),
        ("#sequence", Box::new(|st| st.num_sequences.to_string())),
        ("#question", Box::new(|st| st.num_questions.to_string())),
        ("#concept", Box::new(|st| st.num_concepts.to_string())),
        (
            "#concept/question",
            Box::new(|st| format!("{:.2}", st.concepts_per_question)),
        ),
        ("%correct", Box::new(|st| format!("{:.2}", st.correct_rate))),
    ];
    for (label, get) in rows {
        s.push_str(&format!("{label:<20}"));
        for st in stats {
            s.push_str(&format!("{:>w$}", get(st), w = w));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::windows;
    use crate::synthetic::SyntheticSpec;

    #[test]
    fn stats_consistent_with_dataset() {
        let ds = SyntheticSpec::assist09().scaled(0.1).generate();
        let ws = windows(&ds, 50, 5);
        let st = DatasetStats::compute(&ds, &ws);
        assert_eq!(st.num_questions, ds.num_questions());
        assert_eq!(st.num_concepts, ds.num_concepts());
        assert!(st.num_responses <= ds.num_responses());
        assert!(st.num_sequences >= ds.sequences.len()); // windows split long sequences
        assert!(st.correct_rate > 0.4 && st.correct_rate < 0.9);
    }

    #[test]
    fn table_renders_all_columns() {
        let ds = SyntheticSpec::assist12().scaled(0.05).generate();
        let ws = windows(&ds, 50, 5);
        let st = DatasetStats::compute(&ds, &ws);
        let t = table2(&[st.clone(), st]);
        assert!(t.contains("#response"));
        assert!(t.contains("assist12"));
        assert_eq!(t.lines().count(), 7);
    }
}
