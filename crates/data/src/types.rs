//! Core knowledge-tracing data types.

use serde::{Deserialize, Serialize};

/// Identifier types. Questions and concepts are dense indices starting at 0.
pub type QuestionId = u32;
pub type ConceptId = u16;

/// One student–question interaction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interaction {
    pub question: QuestionId,
    /// Whether the student answered correctly.
    pub correct: bool,
    /// Logical timestamp (monotone within a student); used by forgetting
    /// analyses, not by the models themselves.
    pub timestamp: u64,
}

/// A single student's chronological response sequence.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ResponseSeq {
    pub student: u32,
    pub interactions: Vec<Interaction>,
}

impl ResponseSeq {
    pub fn len(&self) -> usize {
        self.interactions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.interactions.is_empty()
    }
}

/// Question → knowledge-concept mapping (the Q-matrix of cognitive
/// diagnosis). Every question maps to at least one concept. Optionally
/// carries a concept hierarchy (Eedi tags questions with *leaf nodes of a
/// concept tree*; the parents are useful for roll-up reporting).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QMatrix {
    concepts: Vec<Vec<ConceptId>>,
    num_concepts: usize,
    #[serde(default)]
    parents: Option<Vec<Option<ConceptId>>>,
}

impl QMatrix {
    pub fn new(concepts: Vec<Vec<ConceptId>>, num_concepts: usize) -> Self {
        assert!(
            concepts.iter().all(|c| !c.is_empty()),
            "every question needs at least one concept"
        );
        assert!(
            concepts
                .iter()
                .flatten()
                .all(|&c| (c as usize) < num_concepts),
            "concept id out of range"
        );
        QMatrix {
            concepts,
            num_concepts,
            parents: None,
        }
    }

    /// Attach a concept hierarchy: `parents[k]` is concept `k`'s parent
    /// (`None` for roots). Parent ids live in the same id space.
    pub fn with_hierarchy(mut self, parents: Vec<Option<ConceptId>>) -> Self {
        assert_eq!(
            parents.len(),
            self.num_concepts,
            "one parent slot per concept"
        );
        assert!(
            parents
                .iter()
                .flatten()
                .all(|&p| (p as usize) < self.num_concepts),
            "parent id out of range"
        );
        self.parents = Some(parents);
        self
    }

    /// Concept `k`'s parent, if a hierarchy is attached and `k` isn't a root.
    pub fn parent_of(&self, k: ConceptId) -> Option<ConceptId> {
        self.parents.as_ref().and_then(|p| p[k as usize])
    }

    /// Walk to the root of `k`'s subtree (identity without a hierarchy).
    pub fn root_of(&self, mut k: ConceptId) -> ConceptId {
        let mut hops = 0;
        while let Some(p) = self.parent_of(k) {
            k = p;
            hops += 1;
            assert!(hops <= self.num_concepts, "cycle in concept hierarchy");
        }
        k
    }

    pub fn num_questions(&self) -> usize {
        self.concepts.len()
    }

    pub fn num_concepts(&self) -> usize {
        self.num_concepts
    }

    pub fn concepts_of(&self, q: QuestionId) -> &[ConceptId] {
        &self.concepts[q as usize]
    }

    /// Questions tagged with concept `k`.
    pub fn questions_of(&self, k: ConceptId) -> Vec<QuestionId> {
        self.concepts
            .iter()
            .enumerate()
            .filter(|(_, cs)| cs.contains(&k))
            .map(|(q, _)| q as QuestionId)
            .collect()
    }

    /// Mean number of concepts per question (Table II row).
    pub fn concepts_per_question(&self) -> f64 {
        if self.concepts.is_empty() {
            return 0.0;
        }
        self.concepts.iter().map(|c| c.len()).sum::<usize>() as f64 / self.concepts.len() as f64
    }
}

/// A complete knowledge-tracing dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    pub name: String,
    pub sequences: Vec<ResponseSeq>,
    pub q_matrix: QMatrix,
}

impl Dataset {
    pub fn num_questions(&self) -> usize {
        self.q_matrix.num_questions()
    }

    pub fn num_concepts(&self) -> usize {
        self.q_matrix.num_concepts()
    }

    pub fn num_responses(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).sum()
    }

    /// Serialize the dataset to JSON (round-trips with
    /// [`Dataset::from_json`]; for CSV interchange see [`crate::csv`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serialization")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Fraction of correct responses across the dataset.
    pub fn correct_rate(&self) -> f64 {
        let total = self.num_responses();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = self
            .sequences
            .iter()
            .flat_map(|s| &s.interactions)
            .filter(|i| i.correct)
            .count();
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_qm() -> QMatrix {
        QMatrix::new(vec![vec![0], vec![0, 1], vec![1]], 2)
    }

    #[test]
    fn qmatrix_lookups() {
        let qm = tiny_qm();
        assert_eq!(qm.num_questions(), 3);
        assert_eq!(qm.num_concepts(), 2);
        assert_eq!(qm.concepts_of(1), &[0, 1]);
        assert_eq!(qm.questions_of(1), vec![1, 2]);
        assert!((qm.concepts_per_question() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one concept")]
    fn qmatrix_rejects_conceptless_question() {
        QMatrix::new(vec![vec![]], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qmatrix_rejects_bad_concept() {
        QMatrix::new(vec![vec![5]], 2);
    }

    #[test]
    fn hierarchy_roll_up() {
        let qm = QMatrix::new(vec![vec![0], vec![1]], 4).with_hierarchy(vec![
            Some(2),
            Some(3),
            None,
            Some(2),
        ]);
        assert_eq!(qm.parent_of(0), Some(2));
        assert_eq!(qm.parent_of(2), None);
        assert_eq!(qm.root_of(0), 2);
        assert_eq!(qm.root_of(3), 2);
        assert_eq!(qm.root_of(1), 2); // 1 -> 3 -> 2
    }

    #[test]
    #[should_panic(expected = "one parent slot per concept")]
    fn hierarchy_length_checked() {
        QMatrix::new(vec![vec![0]], 2).with_hierarchy(vec![None]);
    }

    #[test]
    fn dataset_json_roundtrip() {
        let qm = tiny_qm();
        let seq = ResponseSeq {
            student: 3,
            interactions: vec![Interaction {
                question: 1,
                correct: true,
                timestamp: 9,
            }],
        };
        let ds = Dataset {
            name: "rt".into(),
            sequences: vec![seq],
            q_matrix: qm,
        };
        let back = Dataset::from_json(&ds.to_json()).unwrap();
        assert_eq!(back.name, "rt");
        assert_eq!(back.sequences[0].interactions, ds.sequences[0].interactions);
        assert_eq!(back.q_matrix.concepts_of(1), ds.q_matrix.concepts_of(1));
    }

    #[test]
    fn dataset_correct_rate() {
        let qm = tiny_qm();
        let seq = ResponseSeq {
            student: 0,
            interactions: vec![
                Interaction {
                    question: 0,
                    correct: true,
                    timestamp: 0,
                },
                Interaction {
                    question: 1,
                    correct: false,
                    timestamp: 1,
                },
                Interaction {
                    question: 2,
                    correct: true,
                    timestamp: 2,
                },
                Interaction {
                    question: 0,
                    correct: true,
                    timestamp: 3,
                },
            ],
        };
        let ds = Dataset {
            name: "t".into(),
            sequences: vec![seq],
            q_matrix: qm,
        };
        assert_eq!(ds.num_responses(), 4);
        assert!((ds.correct_rate() - 0.75).abs() < 1e-12);
    }
}
