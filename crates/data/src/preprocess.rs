//! Paper-faithful preprocessing: length-50 windows and model batches.
//!
//! Sec. V-A1: "we split every student's response sequence into subsequences
//! of 50 responses each. Subsequences with fewer than 5 responses are
//! removed, and those with fewer than 50 responses are padded."

use crate::types::{Dataset, QMatrix};

pub const DEFAULT_WINDOW_LEN: usize = 50;
pub const DEFAULT_MIN_LEN: usize = 5;

/// A fixed-length training window (padded past `len`).
#[derive(Clone, Debug)]
pub struct Window {
    pub student: u32,
    /// Question ids; entries at `len..` are padding (question 0).
    pub questions: Vec<u32>,
    /// Correctness 0/1; entries at `len..` are padding (0).
    pub correct: Vec<u8>,
    /// Number of real (non-padding) responses.
    pub len: usize,
}

/// Split a dataset into padded windows.
pub fn windows(ds: &Dataset, window_len: usize, min_len: usize) -> Vec<Window> {
    assert!(min_len >= 1 && min_len <= window_len);
    let mut out = Vec::new();
    for seq in &ds.sequences {
        for chunk in seq.interactions.chunks(window_len) {
            if chunk.len() < min_len {
                continue;
            }
            let mut questions = vec![0u32; window_len];
            let mut correct = vec![0u8; window_len];
            for (i, it) in chunk.iter().enumerate() {
                questions[i] = it.question;
                correct[i] = it.correct as u8;
            }
            out.push(Window {
                student: seq.student,
                questions,
                correct,
                len: chunk.len(),
            });
        }
    }
    out
}

/// A batch of windows flattened to b-major `[B*T]` vectors, with the concept
/// tags pre-resolved so models can embed questions per Eq. 23.
#[derive(Clone, Debug)]
pub struct Batch {
    pub batch: usize,
    pub t_len: usize,
    /// Student id per sequence, `[B]` (windows of one student share it).
    pub students: Vec<u32>,
    /// Question id per position, `[B*T]`.
    pub questions: Vec<usize>,
    /// Concept ids of all positions, flattened position-major.
    pub concept_flat: Vec<usize>,
    /// Number of concepts per position, `[B*T]` (≥ 1 even for padding —
    /// padding uses question 0's tags and is masked by `valid`).
    pub concept_lens: Vec<usize>,
    /// Ground-truth correctness per position (0.0 / 1.0), `[B*T]`.
    pub correct: Vec<f32>,
    /// Whether the position is a real response (not padding), `[B*T]`.
    pub valid: Vec<bool>,
}

impl Batch {
    pub fn from_windows(ws: &[&Window], qm: &QMatrix) -> Batch {
        assert!(!ws.is_empty());
        let t_len = ws[0].questions.len();
        assert!(ws.iter().all(|w| w.questions.len() == t_len));
        let batch = ws.len();
        let students: Vec<u32> = ws.iter().map(|w| w.student).collect();
        let n = batch * t_len;
        let mut questions = Vec::with_capacity(n);
        let mut concept_flat = Vec::new();
        let mut concept_lens = Vec::with_capacity(n);
        let mut correct = Vec::with_capacity(n);
        let mut valid = Vec::with_capacity(n);
        for w in ws {
            for t in 0..t_len {
                let q = w.questions[t] as usize;
                questions.push(q);
                let ks = qm.concepts_of(q as u32);
                concept_lens.push(ks.len());
                concept_flat.extend(ks.iter().map(|&k| k as usize));
                correct.push(w.correct[t] as f32);
                valid.push(t < w.len);
            }
        }
        Batch {
            batch,
            t_len,
            students,
            questions,
            concept_flat,
            concept_lens,
            correct,
            valid,
        }
    }

    /// Number of real responses in the batch.
    pub fn num_valid(&self) -> usize {
        self.valid.iter().filter(|v| **v).count()
    }

    /// Valid length of sequence `b`.
    pub fn seq_len(&self, b: usize) -> usize {
        (0..self.t_len)
            .take_while(|&t| self.valid[b * self.t_len + t])
            .count()
    }

    /// The sub-batch holding sequences `lo..hi`, with every per-position
    /// vector (including the ragged concept tags) re-sliced to match.
    /// Used to shard a batch across data-parallel gradient workers.
    pub fn sub_batch(&self, lo: usize, hi: usize) -> Batch {
        assert!(
            lo < hi && hi <= self.batch,
            "sub-batch {lo}..{hi} of {}",
            self.batch
        );
        let t = self.t_len;
        let (plo, phi) = (lo * t, hi * t);
        let flat_lo: usize = self.concept_lens[..plo].iter().sum();
        let flat_len: usize = self.concept_lens[plo..phi].iter().sum();
        Batch {
            batch: hi - lo,
            t_len: t,
            students: self.students[lo..hi].to_vec(),
            questions: self.questions[plo..phi].to_vec(),
            concept_flat: self.concept_flat[flat_lo..flat_lo + flat_len].to_vec(),
            concept_lens: self.concept_lens[plo..phi].to_vec(),
            correct: self.correct[plo..phi].to_vec(),
            valid: self.valid[plo..phi].to_vec(),
        }
    }
}

/// Chunk `indices` into batches of (at most) `batch_size` windows.
pub fn make_batches<'a>(
    ws: &'a [Window],
    indices: &[usize],
    qm: &QMatrix,
    batch_size: usize,
) -> Vec<Batch> {
    assert!(batch_size >= 1);
    indices
        .chunks(batch_size)
        .map(|chunk| {
            let refs: Vec<&'a Window> = chunk.iter().map(|&i| &ws[i]).collect();
            Batch::from_windows(&refs, qm)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Interaction, ResponseSeq};

    fn ds(lens: &[usize]) -> Dataset {
        let qm = QMatrix::new(vec![vec![0], vec![1], vec![0, 1]], 2);
        let sequences = lens
            .iter()
            .enumerate()
            .map(|(u, &l)| ResponseSeq {
                student: u as u32,
                interactions: (0..l)
                    .map(|t| Interaction {
                        question: (t % 3) as u32,
                        correct: t % 2 == 0,
                        timestamp: t as u64,
                    })
                    .collect(),
            })
            .collect();
        Dataset {
            name: "t".into(),
            sequences,
            q_matrix: qm,
        }
    }

    #[test]
    fn windows_split_pad_and_filter() {
        // 120 -> windows of 50, 50, 20; 3 -> dropped; 7 -> kept padded.
        let d = ds(&[120, 3, 7]);
        let ws = windows(&d, 50, 5);
        assert_eq!(ws.len(), 4);
        let lens: Vec<usize> = ws.iter().map(|w| w.len).collect();
        assert_eq!(lens, vec![50, 50, 20, 7]);
        for w in &ws {
            assert_eq!(w.questions.len(), 50);
            // padding is zeroed
            for t in w.len..50 {
                assert_eq!(w.questions[t], 0);
                assert_eq!(w.correct[t], 0);
            }
        }
    }

    #[test]
    fn batch_layout_is_b_major() {
        let d = ds(&[10, 8]);
        let ws = windows(&d, 10, 5);
        let refs: Vec<&Window> = ws.iter().collect();
        let b = Batch::from_windows(&refs, &d.q_matrix);
        assert_eq!(b.batch, 2);
        assert_eq!(b.t_len, 10);
        // position (b=1, t=2) is row 1*10+2
        assert_eq!(b.questions[12], 2);
        assert_eq!(b.concept_lens[12], 2); // question 2 has two concepts
        assert_eq!(b.seq_len(0), 10);
        assert_eq!(b.seq_len(1), 8);
        assert_eq!(b.num_valid(), 18);
        assert_eq!(b.concept_flat.len(), b.concept_lens.iter().sum::<usize>());
    }

    #[test]
    fn sub_batch_matches_direct_construction() {
        let d = ds(&[10, 8, 6]);
        let ws = windows(&d, 10, 5);
        let refs: Vec<&Window> = ws.iter().collect();
        let full = Batch::from_windows(&refs, &d.q_matrix);
        let sub = full.sub_batch(1, 3);
        let expect = Batch::from_windows(&refs[1..3], &d.q_matrix);
        assert_eq!(sub.batch, 2);
        assert_eq!(sub.t_len, full.t_len);
        assert_eq!(sub.students, expect.students);
        assert_eq!(sub.questions, expect.questions);
        assert_eq!(sub.concept_flat, expect.concept_flat);
        assert_eq!(sub.concept_lens, expect.concept_lens);
        assert_eq!(sub.correct, expect.correct);
        assert_eq!(sub.valid, expect.valid);
        assert_eq!(sub.seq_len(0), 8);
        assert_eq!(sub.seq_len(1), 6);
    }

    #[test]
    fn make_batches_chunks() {
        let d = ds(&[10, 10, 10]);
        let ws = windows(&d, 10, 5);
        let idx: Vec<usize> = (0..ws.len()).collect();
        let batches = make_batches(&ws, &idx, &d.q_matrix, 2);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].batch, 2);
        assert_eq!(batches[1].batch, 1);
    }
}
