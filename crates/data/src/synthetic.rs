//! Synthetic student simulator.
//!
//! The paper evaluates on four proprietary-download datasets (ASSIST09,
//! ASSIST12, Slepemapy, Eedi). This module substitutes an IRT-style
//! generative model of student learning whose presets mirror each dataset's
//! Table II statistics (correct rate, concepts-per-question multiplicity,
//! question/concept counts) at CPU-trainable scale.
//!
//! The simulator satisfies the paper's **monotonicity assumption by
//! construction**: the probability of a correct response is strictly
//! increasing in the student's (latent) proficiency on the question's
//! concepts — which is exactly the structural property RCKT's counterfactual
//! sequence construction relies on (Sec. III-C of the paper).
//!
//! Generative model per student `u` and question `q` with concepts `K(q)`:
//!
//! ```text
//! ability_u            ~ N(0, 1)
//! group effect γ_{u,g} ~ N(0, 0.4)          (concepts are clustered in groups)
//! proficiency s_{u,k}  = ability_u + γ + N(0, 0.4)     (initial)
//! difficulty  b_q      ~ N(δ, 1)            (δ calibrated to the target rate)
//! p(correct)           = guess + (1 − guess − slip) · σ(a · (mean_k s − b_q))
//! ```
//!
//! after each practice of concept `k`: `s ← s + gain · (cap − s)` plus a
//! bonus when the answer was correct; unpracticed concepts decay
//! exponentially back toward their baseline (forgetting curve).

use crate::types::{ConceptId, Dataset, Interaction, QMatrix, ResponseSeq};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How the simulated tutoring system picks the next question.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QuestionPolicy {
    /// Uniformly random over the bank (with concept locality applied on
    /// top, per `SyntheticSpec::locality`).
    Random,
    /// Adaptive practice: among a random candidate set, pick the question
    /// whose success probability is closest to the given target — the
    /// scheduling rule of adaptive systems like slepemapy.cz, which keeps
    /// learners near a fixed challenge level.
    Adaptive {
        /// Desired success probability ×100 (e.g. 75 for 75%).
        target_pct: u8,
    },
}

/// Full specification of a synthetic dataset.
#[derive(Clone, Debug)]
pub struct SyntheticSpec {
    pub name: String,
    pub students: usize,
    pub questions: usize,
    pub concepts: usize,
    /// Number of related-concept clusters (shared group ability; drives the
    /// "different but relevant concept" influence effect of the paper's
    /// Fig. 1 example).
    pub concept_groups: usize,
    /// Probability that a question is tagged with a second concept.
    pub multi_concept_rate: f64,
    pub seq_len_min: usize,
    pub seq_len_max: usize,
    pub guess: f64,
    pub slip: f64,
    /// IRT discrimination `a`.
    pub discrimination: f64,
    /// Learning-gain rate toward the proficiency cap per practice.
    pub learn_gain: f64,
    /// Extra gain on a correct response.
    pub correct_bonus: f64,
    /// Exponential forgetting rate per timestep of non-practice.
    pub forget_rate: f64,
    /// Probability the next question shares a concept with the current one
    /// (curriculum locality).
    pub locality: f64,
    /// How the tutoring system schedules questions.
    pub policy: QuestionPolicy,
    /// Attach a concept hierarchy to the Q-matrix (Eedi-style concept tree,
    /// with concept groups as subtrees).
    pub hierarchical: bool,
    /// Desired overall correct rate (Table II `%correct`); difficulty offset
    /// δ is calibrated against this.
    pub target_correct_rate: f64,
    pub seed: u64,
}

impl SyntheticSpec {
    /// ASSIST09-like: multi-concept questions (≈1.2 concepts/question), 63%
    /// correct.
    pub fn assist09() -> Self {
        SyntheticSpec {
            name: "assist09".into(),
            students: 240,
            questions: 600,
            concepts: 40,
            concept_groups: 8,
            multi_concept_rate: 0.22,
            seq_len_min: 10,
            seq_len_max: 120,
            guess: 0.20,
            slip: 0.10,
            discrimination: 1.8,
            learn_gain: 0.08,
            correct_bonus: 0.05,
            forget_rate: 0.015,
            locality: 0.6,
            policy: QuestionPolicy::Random,
            hierarchical: false,
            target_correct_rate: 0.63,
            seed: 0x0907,
        }
    }

    /// ASSIST12-like: single-concept questions, 70% correct.
    pub fn assist12() -> Self {
        SyntheticSpec {
            name: "assist12".into(),
            students: 300,
            questions: 800,
            concepts: 50,
            concept_groups: 10,
            multi_concept_rate: 0.0,
            seq_len_min: 10,
            seq_len_max: 120,
            guess: 0.22,
            slip: 0.08,
            discrimination: 1.7,
            learn_gain: 0.07,
            correct_bonus: 0.05,
            forget_rate: 0.015,
            locality: 0.55,
            policy: QuestionPolicy::Random,
            hierarchical: false,
            target_correct_rate: 0.70,
            seed: 0x1213,
        }
    }

    /// Slepemapy-like: geography facts, few question types over many places
    /// (more concepts relative to questions), 78% correct.
    pub fn slepemapy() -> Self {
        SyntheticSpec {
            name: "slepemapy".into(),
            students: 300,
            questions: 320,
            concepts: 150,
            concept_groups: 15,
            multi_concept_rate: 0.0,
            seq_len_min: 15,
            seq_len_max: 150,
            guess: 0.25,
            slip: 0.05,
            discrimination: 1.5,
            learn_gain: 0.10,
            correct_bonus: 0.06,
            forget_rate: 0.02,
            locality: 0.7,
            // slepemapy.cz is an *adaptive* practice system; schedule
            // questions near a 78% success level
            policy: QuestionPolicy::Adaptive { target_pct: 78 },
            hierarchical: false,
            target_correct_rate: 0.78,
            seed: 0x51e9,
        }
    }

    /// Eedi-like: diagnostic math questions tagged with leaf nodes of a
    /// concept tree (groups model the tree's internal nodes), 64% correct.
    pub fn eedi() -> Self {
        SyntheticSpec {
            name: "eedi".into(),
            students: 260,
            questions: 700,
            concepts: 60,
            concept_groups: 12,
            multi_concept_rate: 0.15,
            seq_len_min: 10,
            seq_len_max: 120,
            guess: 0.25, // 4-option multiple choice
            slip: 0.08,
            discrimination: 1.8,
            learn_gain: 0.08,
            correct_bonus: 0.05,
            forget_rate: 0.015,
            locality: 0.6,
            policy: QuestionPolicy::Random,
            hierarchical: true,
            target_correct_rate: 0.64,
            seed: 0xeed1,
        }
    }

    /// All four paper presets.
    pub fn paper_presets() -> Vec<SyntheticSpec> {
        vec![
            Self::assist09(),
            Self::assist12(),
            Self::slepemapy(),
            Self::eedi(),
        ]
    }

    /// Scale the number of students (and nothing else) by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        self.students = ((self.students as f64 * f).round() as usize).max(4);
        self
    }

    /// Generate the dataset, calibrating difficulty so the realized correct
    /// rate is close to `target_correct_rate`.
    pub fn generate(&self) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let q_matrix = self.gen_q_matrix(&mut rng);

        // Calibrate difficulty offset δ with pilot runs on a student subset.
        let mut delta = 0.0f64;
        for _ in 0..4 {
            let pilot = self.simulate(&q_matrix, delta, self.students.min(40), &mut rng);
            let rate = observed_rate(&pilot);
            let adj_target =
                clamp01((self.target_correct_rate - self.guess) / (1.0 - self.guess - self.slip));
            let adj_obs = clamp01((rate - self.guess) / (1.0 - self.guess - self.slip));
            let shift = (logit(adj_target) - logit(adj_obs)) / self.discrimination;
            delta -= shift;
            if shift.abs() < 0.02 {
                break;
            }
        }

        let sequences = self.simulate(&q_matrix, delta, self.students, &mut rng);
        Dataset {
            name: self.name.clone(),
            sequences,
            q_matrix,
        }
    }

    fn gen_q_matrix(&self, rng: &mut SmallRng) -> QMatrix {
        assert!(self.concepts >= 2 && self.concepts <= u16::MAX as usize);
        assert!(self.concept_groups >= 1 && self.concept_groups <= self.concepts);
        let mut concepts = Vec::with_capacity(self.questions);
        for q in 0..self.questions {
            // Round-robin base concept guarantees every concept is used.
            let k1 = (q % self.concepts) as ConceptId;
            let mut tags = vec![k1];
            if rng.gen_bool(self.multi_concept_rate) {
                // Second concept from the same group (tree sibling).
                let group = self.group_of(k1 as usize);
                let group_size = self.concepts / self.concept_groups;
                let lo = group * group_size;
                let hi = if group + 1 == self.concept_groups {
                    self.concepts
                } else {
                    lo + group_size
                };
                let k2 = rng.gen_range(lo..hi) as ConceptId;
                if k2 != k1 {
                    tags.push(k2);
                }
            }
            concepts.push(tags);
        }
        let qm = QMatrix::new(concepts, self.concepts);
        if self.hierarchical {
            // model the concept tree: the first concept of each group acts
            // as that group's root; the rest are its leaves
            let parents: Vec<Option<ConceptId>> = (0..self.concepts)
                .map(|k| {
                    let group_size = (self.concepts / self.concept_groups).max(1);
                    let root = self.group_of(k) * group_size;
                    if k == root {
                        None
                    } else {
                        Some(root as ConceptId)
                    }
                })
                .collect();
            qm.with_hierarchy(parents)
        } else {
            qm
        }
    }

    fn group_of(&self, concept: usize) -> usize {
        let group_size = (self.concepts / self.concept_groups).max(1);
        (concept / group_size).min(self.concept_groups - 1)
    }

    fn simulate(
        &self,
        q_matrix: &QMatrix,
        delta: f64,
        students: usize,
        rng: &mut SmallRng,
    ) -> Vec<ResponseSeq> {
        let difficulties: Vec<f64> = (0..self.questions).map(|_| delta + normal(rng)).collect();
        // Questions per concept, for curriculum locality.
        let mut by_concept: Vec<Vec<u32>> = vec![Vec::new(); self.concepts];
        for q in 0..self.questions {
            for &k in q_matrix.concepts_of(q as u32) {
                by_concept[k as usize].push(q as u32);
            }
        }

        let cap = 3.0f64;
        let mut sequences = Vec::with_capacity(students);
        for u in 0..students {
            let ability = normal(rng);
            let group_fx: Vec<f64> = (0..self.concept_groups)
                .map(|_| 0.4 * normal(rng))
                .collect();
            let baseline: Vec<f64> = (0..self.concepts)
                .map(|k| ability + group_fx[self.group_of(k)] + 0.4 * normal(rng))
                .collect();
            let mut prof = baseline.clone();
            let mut last_practice = vec![0u64; self.concepts];

            let len = rng.gen_range(self.seq_len_min..=self.seq_len_max);
            let mut interactions = Vec::with_capacity(len);
            let mut prev_q: Option<u32> = None;
            for t in 0..len as u64 {
                // Curriculum: often stay near the previous question's concept.
                let candidate = |rng: &mut SmallRng, prev_q: Option<u32>| -> u32 {
                    match prev_q {
                        Some(pq) if rng.gen_bool(self.locality) => {
                            let ks = q_matrix.concepts_of(pq);
                            let k = ks[rng.gen_range(0..ks.len())] as usize;
                            by_concept[k][rng.gen_range(0..by_concept[k].len())]
                        }
                        _ => rng.gen_range(0..self.questions) as u32,
                    }
                };
                let q = match self.policy {
                    QuestionPolicy::Random => candidate(rng, prev_q),
                    QuestionPolicy::Adaptive { target_pct } => {
                        // among a handful of candidates, pick the one whose
                        // expected success rate is closest to the target
                        let target = target_pct as f64 / 100.0;
                        let mut best = candidate(rng, prev_q);
                        let mut best_gap = f64::INFINITY;
                        for _ in 0..5 {
                            let c = candidate(rng, prev_q);
                            let ks = q_matrix.concepts_of(c);
                            let mp: f64 =
                                ks.iter().map(|&k| prof[k as usize]).sum::<f64>() / ks.len() as f64;
                            let p = self.response_probability(mp, difficulties[c as usize]);
                            let gap = (p - target).abs();
                            if gap < best_gap {
                                best_gap = gap;
                                best = c;
                            }
                        }
                        best
                    }
                };
                prev_q = Some(q);

                // Lazy forgetting: decay each involved concept since its
                // last practice, toward its baseline.
                let ks = q_matrix.concepts_of(q);
                for &k in ks {
                    let k = k as usize;
                    let dt = (t - last_practice[k]) as f64;
                    if dt > 0.0 {
                        let decay = (-self.forget_rate * dt).exp();
                        prof[k] = baseline[k] + (prof[k] - baseline[k]) * decay;
                    }
                }

                let mean_prof: f64 =
                    ks.iter().map(|&k| prof[k as usize]).sum::<f64>() / ks.len() as f64;
                let p = self.guess
                    + (1.0 - self.guess - self.slip)
                        * sigmoid(self.discrimination * (mean_prof - difficulties[q as usize]));
                let correct = rng.gen_bool(clamp01(p));

                // Learning update.
                for &k in ks {
                    let k = k as usize;
                    let gain = self.learn_gain + if correct { self.correct_bonus } else { 0.0 };
                    prof[k] += gain * (cap - prof[k]).max(0.0);
                    last_practice[k] = t;
                }

                interactions.push(Interaction {
                    question: q,
                    correct,
                    timestamp: t,
                });
            }
            sequences.push(ResponseSeq {
                student: u as u32,
                interactions,
            });
        }
        sequences
    }

    /// The response probability as a function of mean proficiency — exposed
    /// so tests can verify monotonicity directly.
    pub fn response_probability(&self, mean_prof: f64, difficulty: f64) -> f64 {
        self.guess
            + (1.0 - self.guess - self.slip)
                * sigmoid(self.discrimination * (mean_prof - difficulty))
    }
}

fn observed_rate(seqs: &[ResponseSeq]) -> f64 {
    let total: usize = seqs.iter().map(|s| s.len()).sum();
    if total == 0 {
        return 0.5;
    }
    let correct: usize = seqs
        .iter()
        .flat_map(|s| &s.interactions)
        .filter(|i| i.correct)
        .count();
    correct as f64 / total as f64
}

fn clamp01(p: f64) -> f64 {
    p.clamp(1e-6, 1.0 - 1e-6)
}

fn logit(p: f64) -> f64 {
    let p = clamp01(p);
    (p / (1.0 - p)).ln()
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Standard normal sample via Box–Muller (keeps us off extra crates).
fn normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_spec_sizes() {
        let spec = SyntheticSpec::assist09().scaled(0.2);
        let ds = spec.generate();
        assert_eq!(ds.sequences.len(), spec.students);
        assert_eq!(ds.num_questions(), spec.questions);
        assert_eq!(ds.num_concepts(), spec.concepts);
        for s in &ds.sequences {
            assert!(s.len() >= spec.seq_len_min && s.len() <= spec.seq_len_max);
        }
    }

    #[test]
    fn correct_rate_is_calibrated() {
        for spec in [SyntheticSpec::assist09(), SyntheticSpec::slepemapy()] {
            let ds = spec.generate();
            let rate = ds.correct_rate();
            assert!(
                (rate - spec.target_correct_rate).abs() < 0.06,
                "{}: calibrated rate {rate} vs target {}",
                spec.name,
                spec.target_correct_rate
            );
        }
    }

    #[test]
    fn multi_concept_rate_reflected_in_q_matrix() {
        let ds = SyntheticSpec::assist09().scaled(0.1).generate();
        let cpq = ds.q_matrix.concepts_per_question();
        assert!(cpq > 1.05 && cpq < 1.35, "concepts/question {cpq}");
        let ds12 = SyntheticSpec::assist12().scaled(0.1).generate();
        assert!((ds12.q_matrix.concepts_per_question() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn response_probability_is_monotone_in_proficiency() {
        let spec = SyntheticSpec::eedi();
        let mut prev = 0.0;
        for i in 0..100 {
            let prof = -5.0 + i as f64 * 0.1;
            let p = spec.response_probability(prof, 0.0);
            assert!(p >= prev, "monotonicity violated at {prof}");
            prev = p;
        }
        // bounded by guess and 1 - slip
        assert!(spec.response_probability(-100.0, 0.0) >= spec.guess - 1e-9);
        assert!(spec.response_probability(100.0, 0.0) <= 1.0 - spec.slip + 1e-9);
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let a = SyntheticSpec::assist12().scaled(0.05).generate();
        let b = SyntheticSpec::assist12().scaled(0.05).generate();
        assert_eq!(a.sequences.len(), b.sequences.len());
        for (x, y) in a.sequences.iter().zip(&b.sequences) {
            assert_eq!(x.interactions, y.interactions);
        }
    }

    #[test]
    fn eedi_preset_carries_a_concept_tree() {
        let ds = SyntheticSpec::eedi().scaled(0.05).generate();
        // at least one concept has a parent, roots have none
        let with_parent = (0..ds.num_concepts())
            .filter(|&k| ds.q_matrix.parent_of(k as u16).is_some())
            .count();
        assert!(with_parent > 0, "eedi should attach a hierarchy");
        for k in 0..ds.num_concepts() as u16 {
            let root = ds.q_matrix.root_of(k);
            assert_eq!(ds.q_matrix.parent_of(root), None);
        }
        // other presets stay flat
        let flat = SyntheticSpec::assist12().scaled(0.05).generate();
        assert!((0..flat.num_concepts() as u16).all(|k| flat.q_matrix.parent_of(k).is_none()));
    }

    #[test]
    fn adaptive_policy_concentrates_success_rate() {
        // Adaptive scheduling holds per-response success probability near
        // the target, so its realized variance of per-student correct rates
        // is lower than random scheduling's.
        let mut random = SyntheticSpec::slepemapy().scaled(0.2);
        random.policy = QuestionPolicy::Random;
        let adaptive = SyntheticSpec::slepemapy().scaled(0.2);
        assert!(matches!(adaptive.policy, QuestionPolicy::Adaptive { .. }));
        let per_student_var = |ds: &crate::types::Dataset| {
            let rates: Vec<f64> = ds
                .sequences
                .iter()
                .map(|s| {
                    s.interactions.iter().filter(|i| i.correct).count() as f64
                        / s.len().max(1) as f64
                })
                .collect();
            let m = rates.iter().sum::<f64>() / rates.len() as f64;
            rates.iter().map(|r| (r - m) * (r - m)).sum::<f64>() / rates.len() as f64
        };
        let v_adaptive = per_student_var(&adaptive.generate());
        let v_random = per_student_var(&random.generate());
        assert!(
            v_adaptive < v_random,
            "adaptive should reduce spread: {v_adaptive:.4} vs {v_random:.4}"
        );
    }

    #[test]
    fn every_concept_is_used_by_some_question() {
        let ds = SyntheticSpec::slepemapy().scaled(0.05).generate();
        for k in 0..ds.num_concepts() {
            assert!(
                !ds.q_matrix.questions_of(k as u16).is_empty(),
                "concept {k} unused"
            );
        }
    }
}
