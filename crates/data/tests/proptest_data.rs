//! Property-based tests for the data substrate: the simulator produces
//! structurally valid datasets for arbitrary (sane) specifications, and the
//! preprocessing/splitting pipeline preserves its invariants.

use proptest::prelude::*;
use rckt_data::preprocess::windows;
use rckt_data::split::KFold;
use rckt_data::synthetic::SyntheticSpec;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (
        4usize..20,   // students
        10usize..60,  // questions
        3usize..20,   // concepts
        1usize..5,    // groups
        0.0f64..0.5,  // multi-concept rate
        0.0f64..0.35, // guess
        0.0f64..0.25, // slip
        0.35f64..0.9, // target correct rate
        any::<u64>(), // seed
    )
        .prop_map(
            |(students, questions, concepts, groups, multi, guess, slip, target, seed)| {
                let mut s = SyntheticSpec::assist09();
                s.students = students;
                s.questions = questions;
                s.concepts = concepts;
                s.concept_groups = groups.min(concepts);
                s.multi_concept_rate = multi;
                s.guess = guess;
                s.slip = slip;
                // keep the target reachable given guess/slip bounds
                s.target_correct_rate = target.clamp(guess + 0.05, 1.0 - slip - 0.05);
                s.seq_len_min = 3;
                s.seq_len_max = 30;
                s.seed = seed;
                s
            },
        )
        .prop_filter("target must be representable", |s| {
            s.target_correct_rate > s.guess && s.target_correct_rate < 1.0 - s.slip
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated dataset is structurally valid.
    #[test]
    fn simulator_output_is_valid(spec in spec_strategy()) {
        let ds = spec.generate();
        prop_assert_eq!(ds.sequences.len(), spec.students);
        prop_assert_eq!(ds.num_questions(), spec.questions);
        prop_assert_eq!(ds.num_concepts(), spec.concepts);
        for seq in &ds.sequences {
            prop_assert!(seq.len() >= spec.seq_len_min && seq.len() <= spec.seq_len_max);
            let mut prev_ts = None;
            for it in &seq.interactions {
                prop_assert!((it.question as usize) < spec.questions);
                prop_assert!(!ds.q_matrix.concepts_of(it.question).is_empty());
                if let Some(p) = prev_ts {
                    prop_assert!(it.timestamp > p, "timestamps strictly increase");
                }
                prev_ts = Some(it.timestamp);
            }
        }
        // correct rate bounded by guess/slip envelope (with slack for
        // sampling noise on tiny populations)
        let rate = ds.correct_rate();
        prop_assert!(rate >= spec.guess - 0.25 && rate <= 1.0 - spec.slip + 0.25,
            "rate {} outside envelope [{}, {}]", rate, spec.guess, 1.0 - spec.slip);
    }

    /// Windowing never fabricates or loses responses when min_len = 1.
    #[test]
    fn windowing_conserves_responses(spec in spec_strategy()) {
        let ds = spec.generate();
        let ws = windows(&ds, 10, 1);
        let total: usize = ws.iter().map(|w| w.len).sum();
        prop_assert_eq!(total, ds.num_responses());
    }

    /// The CSV parser never panics — arbitrary input yields Ok or Err.
    #[test]
    fn csv_parser_total(input in "\\PC{0,300}") {
        let _ = rckt_data::csv::parse_csv("fuzz", &input);
    }

    /// Valid CSV rows with random ids always parse and preserve counts.
    #[test]
    fn csv_valid_rows_roundtrip(
        rows in proptest::collection::vec(
            (0u32..5, 0u32..8, 0u16..4, any::<bool>(), 0u64..100),
            1..40,
        )
    ) {
        let mut text = String::from("student,question,concepts,correct,timestamp\n");
        for (s, q, k, c, ts) in &rows {
            text.push_str(&format!("{s},{q},\"k{k}\",{},{ts}\n", *c as u8));
        }
        let ds = rckt_data::csv::parse_csv("t", &text).expect("valid rows parse");
        prop_assert_eq!(ds.num_responses(), rows.len());
        let students: std::collections::HashSet<u32> = rows.iter().map(|r| r.0).collect();
        prop_assert_eq!(ds.sequences.len(), students.len());
    }

    /// KFold splits always partition regardless of n and seed.
    #[test]
    fn kfold_partitions(n in 10usize..300, seed in any::<u64>()) {
        let folds = KFold::paper(seed).split(n);
        let mut seen = vec![false; n];
        for f in &folds {
            for &i in &f.test {
                prop_assert!(!seen[i], "duplicate test index {i}");
                seen[i] = true;
            }
            // per-fold disjointness
            let mut in_fold = vec![0u8; n];
            for &i in f.train.iter().chain(&f.val).chain(&f.test) {
                in_fold[i] += 1;
            }
            prop_assert!(in_fold.iter().all(|&c| c == 1));
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
