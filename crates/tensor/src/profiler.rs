//! Per-op profiling and tensor allocation tracking for the graph.
//!
//! Everything here is gated on [`rckt_obs::profiling`] — one relaxed
//! atomic load per op when disabled — and publishes into the `rckt-obs`
//! metrics registry under a naming contract the profile report renders
//! as the `-- tensor ops --` table:
//!
//! * histogram `op.<kind>.secs`      — forward wall time (count = calls)
//! * histogram `op.<kind>.bwd_secs`  — backward wall time per op kind
//! * counter   `op.<kind>.flops`     — forward FLOPs where meaningful
//! * counter   `op.<kind>.alloc_bytes` — bytes allocated for outputs
//! * gauge     `tensor.mem.live_bytes` / `tensor.mem.peak_bytes`
//!
//! The allocation tracker counts graph node storage (`data` + `grad`,
//! 4 bytes/element) attributed to the op kind that produced the node;
//! [`Graph::reset`](crate::Graph::reset) and drop release it, so
//! `live_bytes` returns to its pre-run level after every step while
//! `peak_bytes` keeps the high-water mark.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use rckt_obs::{Counter, Gauge, Histogram};

/// Finer-than-default bucket ladder for per-op timings: a 1–2.5–5
/// progression from 10 ns to 10 s.
fn secs_bounds() -> Vec<f64> {
    let mut out = Vec::new();
    let mut decade = 1e-8;
    while decade < 1e1 {
        for m in [1.0, 2.5, 5.0] {
            out.push(decade * m);
        }
        decade *= 10.0;
    }
    out
}

#[derive(Clone)]
struct OpHandles {
    fwd: Histogram,
    bwd: Histogram,
    flops: Counter,
    alloc: Counter,
}

fn handles(kind: &'static str) -> OpHandles {
    static CACHE: OnceLock<Mutex<HashMap<&'static str, OpHandles>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
    cache
        .entry(kind)
        .or_insert_with(|| {
            let bounds = secs_bounds();
            OpHandles {
                fwd: rckt_obs::histogram_with(&format!("op.{kind}.secs"), &bounds),
                bwd: rckt_obs::histogram_with(&format!("op.{kind}.bwd_secs"), &bounds),
                flops: rckt_obs::counter(&format!("op.{kind}.flops")),
                alloc: rckt_obs::counter(&format!("op.{kind}.alloc_bytes")),
            }
        })
        .clone()
}

/// RAII timer for one graph op. Inert (no clock read) unless profiling
/// is enabled when it is created.
pub struct OpTimer {
    armed: Option<(&'static str, Instant, bool)>,
}

/// Time the forward pass of op `kind` until the guard drops.
pub fn op_timer(kind: &'static str) -> OpTimer {
    OpTimer {
        armed: rckt_obs::profiling().then(|| (kind, Instant::now(), false)),
    }
}

/// Time one op's share of the backward sweep (recorded separately under
/// `op.<kind>.bwd_secs`).
pub fn op_timer_bwd(kind: &'static str) -> OpTimer {
    OpTimer {
        armed: rckt_obs::profiling().then(|| (kind, Instant::now(), true)),
    }
}

impl OpTimer {
    /// Attribute `n` FLOPs to this op (forward). No-op when inert.
    pub fn flops(&self, n: u64) {
        if let Some((kind, _, _)) = self.armed {
            handles(kind).flops.add(n);
        }
    }
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        if let Some((kind, start, backward)) = self.armed {
            let secs = start.elapsed().as_secs_f64();
            let h = handles(kind);
            if backward {
                h.bwd.observe(secs);
            } else {
                h.fwd.observe(secs);
            }
        }
    }
}

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn mem_gauges() -> &'static (Gauge, Gauge) {
    static GAUGES: OnceLock<(Gauge, Gauge)> = OnceLock::new();
    GAUGES.get_or_init(|| {
        (
            rckt_obs::gauge("tensor.mem.live_bytes"),
            rckt_obs::gauge("tensor.mem.peak_bytes"),
        )
    })
}

/// Record `bytes` of tensor storage allocated by op `kind`.
pub fn on_alloc(kind: &'static str, bytes: u64) {
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    let (live_g, peak_g) = mem_gauges();
    live_g.set(live as f64);
    peak_g.set(PEAK_BYTES.load(Ordering::Relaxed) as f64);
    handles(kind).alloc.add(bytes);
}

/// Release `bytes` of tracked tensor storage (graph reset/drop).
pub fn on_free(bytes: u64) {
    let live = LIVE_BYTES
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(bytes))
        })
        .unwrap_or(0)
        .saturating_sub(bytes);
    mem_gauges().0.set(live as f64);
}

/// Currently tracked tensor bytes.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of tracked tensor bytes.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Reset the peak to the current live level (between independent runs).
pub fn reset_peak() {
    let live = live_bytes();
    PEAK_BYTES.store(live, Ordering::Relaxed);
    mem_gauges().1.set(live as f64);
}

/// Serializes tests (across this crate) that toggle the global profiling
/// flag, so profiling-sensitive assertions don't race.
#[cfg(test)]
pub(crate) static TEST_PROFILING_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn profiling_lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_PROFILING_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn timers_are_inert_when_profiling_off() {
        let _g = profiling_lock();
        rckt_obs::set_profiling(false);
        {
            let t = op_timer("test_prof_inert");
            t.flops(1_000_000);
        }
        assert_eq!(rckt_obs::counter("op.test_prof_inert.flops").get(), 0);
        assert_eq!(
            rckt_obs::histogram("op.test_prof_inert.secs").count(),
            0,
            "no observation recorded while disabled"
        );
    }

    #[test]
    fn timers_record_when_profiling_on() {
        let _g = profiling_lock();
        rckt_obs::set_profiling(true);
        {
            let t = op_timer("test_prof_live");
            t.flops(128);
        }
        {
            let _t = op_timer_bwd("test_prof_live");
        }
        rckt_obs::set_profiling(false);
        assert_eq!(rckt_obs::counter("op.test_prof_live.flops").get(), 128);
        assert_eq!(handles("test_prof_live").fwd.count(), 1);
        assert_eq!(handles("test_prof_live").bwd.count(), 1);
    }

    #[test]
    fn alloc_tracking_balances_and_keeps_peak() {
        let _g = profiling_lock();
        let peak0 = peak_bytes();
        let live0 = live_bytes();
        on_alloc("test_prof_alloc", 4096);
        on_alloc("test_prof_alloc", 1024);
        assert!(live_bytes() >= live0 + 5120);
        assert!(peak_bytes() >= peak0.max(live0 + 5120));
        on_free(5120);
        assert!(live_bytes() >= live0 && live_bytes() < live0 + 5120);
        assert!(
            rckt_obs::counter("op.test_prof_alloc.alloc_bytes").get() >= 5120,
            "per-kind attribution recorded"
        );
        // Over-free saturates instead of wrapping.
        on_free(u64::MAX);
        assert_eq!(live_bytes(), 0);
    }

    #[test]
    fn graph_ops_feed_profiler_and_release_memory() {
        let _g = profiling_lock();
        rckt_obs::set_profiling(true);
        let live0 = live_bytes();
        {
            let mut g = crate::Graph::new();
            let a = g.input(vec![1.0; 16], crate::Shape::matrix(4, 4));
            let b = g.leaf_grad(vec![0.5; 16], crate::Shape::matrix(4, 4));
            let c = g.matmul(a, b);
            let d = g.sigmoid(c);
            let loss = g.sum_all(d);
            g.backward(loss);
            assert!(
                live_bytes() > live0,
                "graph node storage is tracked while profiling"
            );
        }
        rckt_obs::set_profiling(false);
        // The graph dropped: its tracked bytes are released again.
        assert_eq!(live_bytes(), live0);
        assert!(
            rckt_obs::counter("op.matmul.flops").get() >= 128,
            "4x4x4 matmul attributes 2mkn flops"
        );
        assert!(handles("matmul").fwd.count() >= 1);
        assert!(
            handles("matmul").bwd.count() >= 1,
            "backward sweep timed per op kind"
        );
        assert!(rckt_obs::counter("op.matmul.alloc_bytes").get() > 0);
        assert!(peak_bytes() >= live0);
    }
}
