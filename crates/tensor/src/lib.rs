//! # rckt-tensor
//!
//! A small, dependency-light, pure-Rust tensor library with reverse-mode
//! automatic differentiation, written as the training substrate for the
//! RCKT knowledge-tracing reproduction.
//!
//! Design (see `DESIGN.md` at the workspace root):
//!
//! * [`Graph`] is a dynamic tape rebuilt every step. Ops are an enum with
//!   hand-written backward rules, so the whole engine is testable against
//!   finite differences (see `tests/gradcheck.rs` in this crate).
//! * [`ParamStore`] holds named persistent weights plus Adam moments;
//!   parameters are injected into a graph as leaves and gradients harvested
//!   back after `backward`.
//! * [`layers`] provides the building blocks the knowledge-tracing models
//!   need: linear/MLP heads, embeddings, LSTM, layer-norm, multi-head
//!   attention with optional AKT-style monotonic distance decay.
//!
//! ## Example
//!
//! ```
//! use rckt_tensor::{Graph, ParamStore, Init, Shape, Adam};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let w = store.register("w", Shape::matrix(2, 1), Init::Xavier, &mut rng);
//! let mut adam = Adam::new(0.05);
//!
//! // Fit y = x0 + x1 on a tiny batch.
//! for _ in 0..200 {
//!     store.zero_grads();
//!     let mut g = Graph::new();
//!     let x = g.input(vec![0.0, 1.0, 1.0, 0.0, 1.0, 1.0], Shape::matrix(3, 2));
//!     let wt = store.leaf(&mut g, w);
//!     let pred = g.matmul(x, wt);
//!     let target = g.input(vec![1.0, 1.0, 2.0], Shape::matrix(3, 1));
//!     let diff = g.sub(pred, target);
//!     let sq = g.mul(diff, diff);
//!     let loss = g.mean_all(sq);
//!     g.backward(loss);
//!     store.accumulate_grads(&g);
//!     adam.step(&mut store);
//! }
//! let w_data = store.data(w);
//! assert!((w_data[0] - 1.0).abs() < 0.1 && (w_data[1] - 1.0).abs() < 0.1);
//! ```

pub mod graph;
pub mod kernels;
pub mod layers;
pub mod optim;
pub mod param;
pub mod pool;
pub mod profiler;
pub mod shape;

pub use graph::{sigmoid, Graph, Tx};
pub use optim::{Adam, Sgd};
pub use param::{Init, ParamId, ParamStore};
pub use shape::Shape;
