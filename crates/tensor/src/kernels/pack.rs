//! Panel packing shared by the blocked and SIMD matmul kernels and the
//! blocked transpose.
//!
//! Every dense kernel in this crate that tiles its operands goes through
//! the routines here, so remainder handling (dimensions that are not
//! multiples of a register tile) is implemented — and tested — in exactly
//! one place:
//!
//! * [`pack_b`] — the right-hand operand, packed into `⌈n/nr⌉` contiguous
//!   `nr`-wide column panels of `kk·nr` floats, zero-padded past column
//!   `n` so microkernels never branch on column edges;
//! * [`pack_a`] — the left-hand operand, packed into `⌈m/mr⌉` contiguous
//!   row panels of `kk·mr` floats with the `mr` rows interleaved
//!   (`panel[p·mr + r] = A[i0 + r][p]`), zero-padded past row `m`;
//! * [`transpose_into`] — the cache-tiled strided transpose that backs both
//!   the [`BSource::Cols`] packing layout and [`super::transpose`].
//!
//! Packing is pure data movement: values are copied bit-for-bit, so none
//! of these routines can affect numeric results — only memory layout. That
//! is also why the large-input parallel paths below are trivially safe to
//! take: a copy sharded across the pool produces the same bytes as a
//! serial one.

use crate::pool;

/// How [`pack_b`] reads its source operand.
pub enum BSource<'a> {
    /// The `kk×n` right operand itself, row-major.
    Rows(&'a [f32]),
    /// An `n×kk` row-major matrix used transposed (`bᵀ`).
    Cols(&'a [f32]),
}

/// Cache tile edge for [`transpose_into`]: a 32×32 f32 tile is 4 KiB per
/// side, so the read and write working sets both stay in L1.
pub const TILE: usize = 32;

/// Source elements below which packing stays on the calling thread — the
/// fork/join overhead beats the memory-bound win for small operands.
const PAR_MIN_PACK: usize = 64 * 1024;

/// Strided transpose: `dst[c·dst_stride + r] = src[r·src_stride + c]` for
/// `r < rows`, `c < cols`, walked in [`TILE`]-square tiles so both sides
/// stream through L1. Requires `src_stride ≥ cols` is *not* enforced —
/// `src` only needs to cover index `(rows−1)·src_stride + cols − 1`, which
/// lets callers pass an offset view of a wider matrix (a column band).
pub fn transpose_into(
    src: &[f32],
    dst: &mut [f32],
    rows: usize,
    cols: usize,
    src_stride: usize,
    dst_stride: usize,
) {
    for r0 in (0..rows).step_by(TILE) {
        let rh = TILE.min(rows - r0);
        for c0 in (0..cols).step_by(TILE) {
            let cw = TILE.min(cols - c0);
            for c in c0..c0 + cw {
                let d = &mut dst[c * dst_stride + r0..c * dst_stride + r0 + rh];
                for (i, slot) in d.iter_mut().enumerate() {
                    *slot = src[(r0 + i) * src_stride + c];
                }
            }
        }
    }
}

/// Pack `B` into `⌈n/nr⌉` contiguous `nr`-wide column panels of `kk·nr`
/// floats: `panel_jp[p·nr + jj] = B[p][jp·nr + jj]` (or `bᵀ` for
/// [`BSource::Cols`]), zero-padded past column `n`. Large packs are split
/// panel-wise across the pool.
pub fn pack_b(src: &BSource, kk: usize, n: usize, nr: usize) -> Vec<f32> {
    let n_panels = n.div_ceil(nr);
    let panel_len = kk * nr;
    let mut packed = vec![0.0f32; n_panels * panel_len];
    let fill = |jp: usize, dst: &mut [f32]| pack_b_panel(src, dst, kk, n, nr, jp);
    if n_panels >= 4 && kk * n >= PAR_MIN_PACK && pool::threads() > 1 {
        pool::parallel_chunks_mut(&mut packed, panel_len, &fill);
    } else {
        for (jp, dst) in packed.chunks_mut(panel_len).enumerate() {
            fill(jp, dst);
        }
    }
    packed
}

/// Fill column panel `jp` of a [`pack_b`] layout. `dst` is `kk·nr` long
/// and must arrive zeroed (the pad columns are never written).
pub fn pack_b_panel(src: &BSource, dst: &mut [f32], kk: usize, n: usize, nr: usize, jp: usize) {
    let j0 = jp * nr;
    let jw = nr.min(n - j0);
    match src {
        BSource::Rows(b) => {
            for p in 0..kk {
                dst[p * nr..p * nr + jw].copy_from_slice(&b[p * n + j0..p * n + j0 + jw]);
            }
        }
        BSource::Cols(b) => {
            // Source rows are columns of bᵀ: the panel is a strided
            // transpose of the `jw×kk` strip starting at source row `j0`.
            transpose_into(&b[j0 * kk..], dst, jw, kk, kk, nr);
        }
    }
}

/// Pack `A` into `⌈m/mr⌉` contiguous row panels of `kk·mr` floats with the
/// `mr` rows interleaved: `panel_ip[p·mr + r] = af(ip·mr + r, p)`,
/// zero-padded past row `m`. `af(i, p)` supplies element `(i, p)` so
/// callers can absorb a transpose into the read (see
/// [`super::simd_matmul_at_acc`]). Large packs are split panel-wise across
/// the pool.
pub fn pack_a(
    af: &(dyn Fn(usize, usize) -> f32 + Sync),
    m: usize,
    kk: usize,
    mr: usize,
) -> Vec<f32> {
    let m_panels = m.div_ceil(mr);
    let panel_len = kk * mr;
    let mut packed = vec![0.0f32; m_panels * panel_len];
    let fill = |ip: usize, dst: &mut [f32]| {
        let i0 = ip * mr;
        let ih = mr.min(m - i0);
        for p in 0..kk {
            let col = &mut dst[p * mr..p * mr + ih];
            for (r, slot) in col.iter_mut().enumerate() {
                *slot = af(i0 + r, p);
            }
        }
    };
    if m_panels >= 4 && m * kk >= PAR_MIN_PACK && pool::threads() > 1 {
        pool::parallel_chunks_mut(&mut packed, panel_len, &fill);
    } else {
        for (ip, dst) in packed.chunks_mut(panel_len).enumerate() {
            fill(ip, dst);
        }
    }
    packed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 + 0.25).collect()
    }

    #[test]
    fn transpose_into_exact_on_remainder_shapes() {
        // Shapes straddling the 32-tile boundary in both dimensions.
        for &(rows, cols) in &[(1usize, 1usize), (3, 129), (33, 65), (32, 32), (31, 257)] {
            let src = seq(rows * cols);
            let mut dst = vec![0.0f32; rows * cols];
            transpose_into(&src, &mut dst, rows, cols, cols, rows);
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(dst[c * rows + r].to_bits(), src[r * cols + c].to_bits());
                }
            }
        }
    }

    #[test]
    fn transpose_into_offset_band_of_wider_matrix() {
        // Transpose columns 5..12 of a 9×20 matrix: src is an offset view
        // with stride 20, dst a 7×9 block.
        let (m, n, j0, jw) = (9usize, 20usize, 5usize, 7usize);
        let src = seq(m * n);
        let mut dst = vec![0.0f32; jw * m];
        transpose_into(&src[j0..], &mut dst, m, jw, n, m);
        for i in 0..m {
            for j in 0..jw {
                assert_eq!(dst[j * m + i], src[i * n + j0 + j]);
            }
        }
    }

    #[test]
    fn pack_b_rows_pads_the_last_panel_with_zeros() {
        let (kk, n, nr) = (5usize, 19usize, 8usize);
        let b = seq(kk * n);
        let packed = pack_b(&BSource::Rows(&b), kk, n, nr);
        assert_eq!(packed.len(), n.div_ceil(nr) * kk * nr);
        for jp in 0..n.div_ceil(nr) {
            let panel = &packed[jp * kk * nr..(jp + 1) * kk * nr];
            for p in 0..kk {
                for jj in 0..nr {
                    let j = jp * nr + jj;
                    let want = if j < n { b[p * n + j] } else { 0.0 };
                    assert_eq!(panel[p * nr + jj], want, "panel {jp} p={p} jj={jj}");
                }
            }
        }
    }

    #[test]
    fn pack_b_cols_matches_rows_of_explicit_transpose() {
        // Cols(b) with b n×kk must produce the same panels as Rows(bᵀ).
        let (kk, n, nr) = (13usize, 21usize, 16usize);
        let b = seq(n * kk); // n×kk, used transposed
        let mut bt = vec![0.0f32; kk * n];
        transpose_into(&b, &mut bt, n, kk, kk, n);
        let via_cols = pack_b(&BSource::Cols(&b), kk, n, nr);
        let via_rows = pack_b(&BSource::Rows(&bt), kk, n, nr);
        assert_eq!(via_cols, via_rows);
    }

    #[test]
    fn pack_a_interleaves_and_pads_rows() {
        let (m, kk, mr) = (7usize, 4usize, 6usize);
        let a = seq(m * kk);
        let packed = pack_a(&|i, p| a[i * kk + p], m, kk, mr);
        assert_eq!(packed.len(), m.div_ceil(mr) * kk * mr);
        for ip in 0..m.div_ceil(mr) {
            let panel = &packed[ip * kk * mr..(ip + 1) * kk * mr];
            for p in 0..kk {
                for r in 0..mr {
                    let i = ip * mr + r;
                    let want = if i < m { a[i * kk + p] } else { 0.0 };
                    assert_eq!(panel[p * mr + r], want, "panel {ip} p={p} r={r}");
                }
            }
        }
    }
}
