//! Runtime-dispatched explicit-SIMD matmul driver.
//!
//! Layering (BLIS-style, flattened to two levels because RCKT's reduction
//! depths are small enough for a full-depth A panel to stay cache-resident):
//! A is packed into `mr`-interleaved row panels and B into `nr`-wide column
//! panels ([`super::pack`]), then every `mr×nr` output tile is produced by
//! **one** microkernel invocation that keeps the whole accumulator in SIMD
//! registers while streaming both panels linearly over the full reduction
//! depth.
//!
//! Parallelism is over **column panels**: each pool task owns a contiguous
//! group of `nr`-wide output column bands and walks every row panel within
//! it, reusing the shared read-only packed A across row panels. Tasks write
//! column-disjoint regions of `C` (via [`pool::SharedMut`] — the bands are
//! not contiguous in a row-major output), each element is produced by
//! exactly one microkernel call with `p` ascending, so results are
//! bit-identical at any pool width.
//!
//! Three microkernels, chosen once per process by runtime CPU feature
//! detection ([`simd_backend`]):
//!
//! * **AVX2+FMA 6×16** (x86-64) — 12 `ymm` accumulators + 2 B vectors +
//!   1 broadcast = 15 of 16 registers, packed FMAs;
//! * **NEON 8×8** (aarch64) — 16 `v`-register accumulators out of 32;
//! * **portable 4×16** — scalar loops shaped for the autovectorizer, used
//!   when neither feature set is present.
//!
//! The backends reduce in the same `p`-ascending order but differ from the
//! naive reference by FMA contraction and tile-local summation, so they
//! agree with naive only to ~1e-6 relative (tests enforce 1e-4).

use super::pack::{self, BSource};
use crate::pool;
use std::sync::OnceLock;

/// Microkernel family resolved at runtime from CPU features.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdBackend {
    /// x86-64 with AVX2 and FMA: 6×16 register tile.
    Avx2Fma,
    /// aarch64 NEON: 8×8 register tile.
    Neon,
    /// Everything else: scalar 4×16 tile the autovectorizer can widen.
    Portable,
}

/// The backend the `simd` kernel variant dispatches to on this machine.
/// Detected once per process and cached.
pub fn simd_backend() -> SimdBackend {
    static BACKEND: OnceLock<SimdBackend> = OnceLock::new();
    *BACKEND.get_or_init(detect)
}

fn detect() -> SimdBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdBackend::Avx2Fma;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return SimdBackend::Neon;
        }
    }
    SimdBackend::Portable
}

/// Short CPU-feature string (`"avx2+fma"`, `"neon"`, `"portable"`) for
/// bench manifests, `rckt_run_info`, and the dispatch log line.
pub fn cpu_features() -> &'static str {
    match simd_backend() {
        SimdBackend::Avx2Fma => "avx2+fma",
        SimdBackend::Neon => "neon",
        SimdBackend::Portable => "portable",
    }
}

/// Upper bounds over every backend's tile, sizing the writeback scratch.
const MAX_MR: usize = 8;
const MAX_NR: usize = 16;

/// One resolved microkernel: tile shape plus the accumulate entry point.
///
/// `run(apanel, bpanel, kk, acc)` computes `acc[r·nr + jj] =
/// Σ_p apanel[p·mr + r] · bpanel[p·nr + jj]` (overwrite, not accumulate).
///
/// Safety contract for `run`: `apanel` holds `kk·mr` floats, `bpanel`
/// `kk·nr`, `acc` at least `mr·nr`.
struct Micro {
    mr: usize,
    nr: usize,
    run: unsafe fn(*const f32, *const f32, usize, *mut f32),
}

fn micro() -> Micro {
    match simd_backend() {
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2Fma => Micro {
            mr: 6,
            nr: 16,
            run: run_avx2,
        },
        #[cfg(target_arch = "aarch64")]
        SimdBackend::Neon => Micro {
            mr: 8,
            nr: 8,
            run: run_neon,
        },
        _ => Micro {
            mr: 4,
            nr: 16,
            run: run_portable,
        },
    }
}

// ---------------------------------------------------------------- drivers

/// SIMD variant of [`super::matmul_acc`]; callable directly (bypassing
/// size/variant dispatch) by tests and benches.
pub fn simd_matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_simd(&|i, p| a[i * k + p], &BSource::Rows(b), c, m, k, n);
}

/// SIMD variant of [`super::matmul_bt_acc`] (`b` is `n×k`); the transposed
/// `B` is absorbed into panel packing rather than materialized.
pub fn simd_matmul_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_simd(&|i, p| a[i * k + p], &BSource::Cols(b), c, m, k, n);
}

/// SIMD variant of [`super::matmul_at_acc`] (`a` is `m×k`, output `k×n`):
/// a GEMM with `M = k` and reduction depth `m`, reading `a` column-wise
/// during A-panel packing.
pub fn simd_matmul_at_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_simd(&|i, p| a[p * k + i], &BSource::Rows(b), c, k, m, n);
}

/// Shared SIMD-GEMM driver: `c (m×n) += A (m×kk) · B`, with `A` elements
/// supplied by `af(i, p)` and `B` read per `b_src`'s layout.
fn gemm_simd(
    af: &(dyn Fn(usize, usize) -> f32 + Sync),
    b_src: &BSource,
    c: &mut [f32],
    m: usize,
    kk: usize,
    n: usize,
) {
    if m == 0 || n == 0 || kk == 0 {
        return;
    }
    let mk = micro();
    let packed_b = pack::pack_b(b_src, kk, n, mk.nr);
    let packed_a = pack::pack_a(af, m, kk, mk.mr);
    let col_panels = n.div_ceil(mk.nr);
    let flops = 2 * (m as u64) * (kk as u64) * (n as u64);
    if flops < super::PAR_MIN_FLOPS || pool::threads() == 1 || col_panels == 1 {
        compute_panels(&mk, &packed_a, &packed_b, c, m, kk, n, 0, col_panels);
        return;
    }
    // Column-panel parallelism: task `t` owns panels `[t·per, (t+1)·per)`,
    // i.e. a disjoint set of output *columns* across all rows. Packed A is
    // shared read-only; the panel→task mapping depends only on the problem
    // size, so accumulation order is width-independent.
    let per_task = pool::chunk_len_for(col_panels, 1);
    let n_tasks = col_panels.div_ceil(per_task);
    let out = pool::SharedMut::new(c);
    pool::parallel_for(n_tasks, &|t| {
        // SAFETY: task `t` writes only columns of its own panel range —
        // ranges are disjoint across tasks and nothing reads them until
        // the region completes.
        let c = unsafe { out.as_mut_slice() };
        let jp0 = t * per_task;
        let jp1 = col_panels.min(jp0 + per_task);
        compute_panels(&mk, &packed_a, &packed_b, c, m, kk, n, jp0, jp1);
    });
}

/// Compute column panels `jp0..jp1`: every row panel against each B panel,
/// one microkernel call per output tile over the full depth `kk`.
#[allow(clippy::too_many_arguments)]
fn compute_panels(
    mk: &Micro,
    packed_a: &[f32],
    packed_b: &[f32],
    c: &mut [f32],
    m: usize,
    kk: usize,
    n: usize,
    jp0: usize,
    jp1: usize,
) {
    let (mr, nr) = (mk.mr, mk.nr);
    let row_panels = m.div_ceil(mr);
    let mut acc = [0.0f32; MAX_MR * MAX_NR];
    for jp in jp0..jp1 {
        let j0 = jp * nr;
        let jw = nr.min(n - j0);
        let bpanel = &packed_b[jp * kk * nr..(jp + 1) * kk * nr];
        for ip in 0..row_panels {
            let i0 = ip * mr;
            let ih = mr.min(m - i0);
            let apanel = &packed_a[ip * kk * mr..(ip + 1) * kk * mr];
            // SAFETY: panel slices hold exactly kk·mr / kk·nr floats and
            // `acc` holds MAX_MR·MAX_NR ≥ mr·nr (see `Micro`'s contract).
            unsafe { (mk.run)(apanel.as_ptr(), bpanel.as_ptr(), kk, acc.as_mut_ptr()) };
            for r in 0..ih {
                let base = (i0 + r) * n + j0;
                for (cv, &av) in c[base..base + jw].iter_mut().zip(&acc[r * nr..r * nr + jw]) {
                    *cv += av;
                }
            }
        }
    }
}

// ----------------------------------------------------------- microkernels

/// Thin non-feature wrapper so the AVX2 kernel fits the plain-`fn` slot in
/// [`Micro`] (a `#[target_feature]` fn cannot coerce to a fn pointer).
#[cfg(target_arch = "x86_64")]
unsafe fn run_avx2(ap: *const f32, bp: *const f32, kk: usize, acc: *mut f32) {
    // SAFETY: only installed in `Micro` after `is_x86_feature_detected!`
    // confirmed avx2+fma; pointer contracts forwarded unchanged.
    unsafe { kernel_6x16_avx2(ap, bp, kk, acc) }
}

/// 6×16 AVX2+FMA microkernel: 12 `ymm` accumulators held in registers for
/// the whole depth, A broadcast one element at a time, B streamed as two
/// 8-lane vectors per step.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kernel_6x16_avx2(mut ap: *const f32, mut bp: *const f32, kk: usize, acc: *mut f32) {
    use std::arch::x86_64::*;
    let mut c00 = _mm256_setzero_ps();
    let mut c01 = _mm256_setzero_ps();
    let mut c10 = _mm256_setzero_ps();
    let mut c11 = _mm256_setzero_ps();
    let mut c20 = _mm256_setzero_ps();
    let mut c21 = _mm256_setzero_ps();
    let mut c30 = _mm256_setzero_ps();
    let mut c31 = _mm256_setzero_ps();
    let mut c40 = _mm256_setzero_ps();
    let mut c41 = _mm256_setzero_ps();
    let mut c50 = _mm256_setzero_ps();
    let mut c51 = _mm256_setzero_ps();
    for _ in 0..kk {
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        let a = _mm256_broadcast_ss(&*ap);
        c00 = _mm256_fmadd_ps(a, b0, c00);
        c01 = _mm256_fmadd_ps(a, b1, c01);
        let a = _mm256_broadcast_ss(&*ap.add(1));
        c10 = _mm256_fmadd_ps(a, b0, c10);
        c11 = _mm256_fmadd_ps(a, b1, c11);
        let a = _mm256_broadcast_ss(&*ap.add(2));
        c20 = _mm256_fmadd_ps(a, b0, c20);
        c21 = _mm256_fmadd_ps(a, b1, c21);
        let a = _mm256_broadcast_ss(&*ap.add(3));
        c30 = _mm256_fmadd_ps(a, b0, c30);
        c31 = _mm256_fmadd_ps(a, b1, c31);
        let a = _mm256_broadcast_ss(&*ap.add(4));
        c40 = _mm256_fmadd_ps(a, b0, c40);
        c41 = _mm256_fmadd_ps(a, b1, c41);
        let a = _mm256_broadcast_ss(&*ap.add(5));
        c50 = _mm256_fmadd_ps(a, b0, c50);
        c51 = _mm256_fmadd_ps(a, b1, c51);
        ap = ap.add(6);
        bp = bp.add(16);
    }
    _mm256_storeu_ps(acc, c00);
    _mm256_storeu_ps(acc.add(8), c01);
    _mm256_storeu_ps(acc.add(16), c10);
    _mm256_storeu_ps(acc.add(24), c11);
    _mm256_storeu_ps(acc.add(32), c20);
    _mm256_storeu_ps(acc.add(40), c21);
    _mm256_storeu_ps(acc.add(48), c30);
    _mm256_storeu_ps(acc.add(56), c31);
    _mm256_storeu_ps(acc.add(64), c40);
    _mm256_storeu_ps(acc.add(72), c41);
    _mm256_storeu_ps(acc.add(80), c50);
    _mm256_storeu_ps(acc.add(88), c51);
}

/// Thin non-feature wrapper (see [`run_avx2`]).
#[cfg(target_arch = "aarch64")]
unsafe fn run_neon(ap: *const f32, bp: *const f32, kk: usize, acc: *mut f32) {
    // SAFETY: NEON is mandatory on aarch64 (and re-checked in `detect`);
    // pointer contracts forwarded unchanged.
    unsafe { kernel_8x8_neon(ap, bp, kk, acc) }
}

/// 8×8 NEON microkernel: 16 `v`-register accumulators (two 4-lane vectors
/// per row) out of the 32 available.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn kernel_8x8_neon(mut ap: *const f32, mut bp: *const f32, kk: usize, acc: *mut f32) {
    use std::arch::aarch64::*;
    let mut lo = [vdupq_n_f32(0.0); 8];
    let mut hi = [vdupq_n_f32(0.0); 8];
    for _ in 0..kk {
        let b0 = vld1q_f32(bp);
        let b1 = vld1q_f32(bp.add(4));
        for r in 0..8 {
            let a = vdupq_n_f32(*ap.add(r));
            lo[r] = vfmaq_f32(lo[r], a, b0);
            hi[r] = vfmaq_f32(hi[r], a, b1);
        }
        ap = ap.add(8);
        bp = bp.add(8);
    }
    for r in 0..8 {
        vst1q_f32(acc.add(r * 8), lo[r]);
        vst1q_f32(acc.add(r * 8 + 4), hi[r]);
    }
}

/// Portable fallback entry point: slices rebuilt from the raw contract,
/// then the same autovectorizer-shaped loops as the blocked microkernel.
unsafe fn run_portable(ap: *const f32, bp: *const f32, kk: usize, acc: *mut f32) {
    // SAFETY: `Micro`'s contract guarantees these lengths.
    let apanel = unsafe { std::slice::from_raw_parts(ap, kk * 4) };
    let bpanel = unsafe { std::slice::from_raw_parts(bp, kk * 16) };
    let mut tile = [[0.0f32; 16]; 4];
    kernel_4x16_portable(apanel, bpanel, &mut tile);
    for (r, row) in tile.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            // SAFETY: acc holds at least 4·16 floats per the contract.
            unsafe { *acc.add(r * 16 + j) = v };
        }
    }
}

/// `inline(never)` for the same register-allocation reason as the blocked
/// microkernel (see [`super`] module docs): compiled standalone, LLVM keeps
/// the tile in SIMD registers; inlined, it spills.
#[inline(never)]
fn kernel_4x16_portable(apanel: &[f32], bpanel: &[f32], tile: &mut [[f32; 16]; 4]) {
    for (a_col, b_row) in apanel.chunks_exact(4).zip(bpanel.chunks_exact(16)) {
        for r in 0..4 {
            let av = a_col[r];
            for (x, &bv) in tile[r].iter_mut().zip(b_row) {
                *x += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_and_features_are_consistent() {
        let b = simd_backend();
        let f = cpu_features();
        match b {
            SimdBackend::Avx2Fma => assert_eq!(f, "avx2+fma"),
            SimdBackend::Neon => assert_eq!(f, "neon"),
            SimdBackend::Portable => assert_eq!(f, "portable"),
        }
        // Detection is cached: a second call returns the same answer.
        assert_eq!(b, simd_backend());
    }

    #[test]
    fn micro_tile_fits_the_scratch_bounds() {
        let mk = micro();
        assert!(mk.mr <= MAX_MR && mk.nr <= MAX_NR);
    }

    #[test]
    fn simd_matches_reference_on_tiny_exact_inputs() {
        // Integer-valued inputs: FMA cannot round, results must be exact.
        let (m, k, n) = (3usize, 5usize, 7usize);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 5) as f32 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 - 3.0).collect();
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    want[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        let mut got = vec![0.0f32; m * n];
        simd_matmul_acc(&a, &b, &mut got, m, k, n);
        assert_eq!(want, got);
    }
}
