//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a dynamic tape: every operation appends a node holding
//! the forward value and an op record naming its inputs. Because inputs
//! always precede outputs on the tape, a single reverse sweep over the node
//! vector is a valid reverse-topological traversal.
//!
//! Graphs are cheap and rebuilt for every training step; persistent state
//! (weights, Adam moments) lives in a [`crate::ParamStore`].

use crate::kernels;
use crate::pool;
use crate::profiler;
use crate::shape::Shape;

/// Handle to a node in a [`Graph`]. Only valid for the graph that created it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Tx(pub(crate) usize);

/// Operation record: which op produced a node and from which inputs.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    Leaf,
    /// Rank-2 matrix product.
    Matmul(Tx, Tx),
    /// Rank-3 batched matrix product `[b,m,k]·[b,k,n]`.
    Bmm(Tx, Tx),
    /// Swap the two trailing dims (rank 2 or 3).
    Transpose(Tx),
    /// Elementwise sum of identically shaped tensors.
    Add(Tx, Tx),
    /// Broadcast-add a row vector `[n]` to every row of `[..., n]`.
    AddRow(Tx, Tx),
    /// `x + c`; the constant is folded into the forward value and has no
    /// gradient, so it is not recorded.
    AddScalar(Tx),
    Sub(Tx, Tx),
    Mul(Tx, Tx),
    MulScalar(Tx, f32),
    Sigmoid(Tx),
    Tanh(Tx),
    Relu(Tx),
    Exp(Tx),
    /// `ln(max(x, eps))`; gradient is 0 where the clamp is active.
    LnClamped(Tx, f32),
    /// Softmax over the last dimension.
    SoftmaxLast(Tx),
    /// Per-row (last dim) layer normalization with affine transform.
    LayerNorm {
        x: Tx,
        gamma: Tx,
        beta: Tx,
        eps: f32,
    },
    /// Horizontal concat of two rank-2 tensors with equal row counts.
    ConcatCols(Tx, Tx),
    /// Vertical concat of rank-2 tensors with equal column counts.
    ConcatRows(Vec<Tx>),
    /// Columns `[start, end)` of a rank-2 tensor.
    SliceCols(Tx, usize, usize),
    /// Rows `[start, end)` of a rank-2 tensor.
    SliceRows(Tx, usize, usize),
    /// Select rows of a rank-2 tensor by index (embedding lookup).
    GatherRows(Tx, Vec<usize>),
    /// Mean over consecutive row groups: group `i` spans `lens[i]` rows.
    /// Output has `lens.len()` rows. Used to average variable-count concept
    /// embeddings per question (paper Eq. 23).
    SegmentMeanRows(Tx, Vec<usize>),
    SumAll(Tx),
    MeanAll(Tx),
    /// Sum over the last dimension: `[m, n] -> [m, 1]`.
    SumLast(Tx),
    /// Elementwise multiply by a fixed (non-differentiable) mask.
    Dropout(Tx, Vec<f32>),
    Reshape(Tx),
    /// Fused, numerically stable binary cross-entropy on logits.
    /// `weights` both masks (0 entries are ignored) and scales terms; the
    /// result is the weighted sum divided by `norm`.
    BceWithLogits {
        logits: Tx,
        targets: Vec<f32>,
        weights: Vec<f32>,
        norm: f32,
    },
}

impl Op {
    /// Stable short name used as the profiler's op-kind key
    /// (`op.<kind>.secs` etc. in the metrics registry).
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Matmul(..) => "matmul",
            Op::Bmm(..) => "bmm",
            Op::Transpose(..) => "transpose",
            Op::Add(..) => "add",
            Op::AddRow(..) => "add_row",
            Op::AddScalar(..) => "add_scalar",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::MulScalar(..) => "mul_scalar",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::Relu(..) => "relu",
            Op::Exp(..) => "exp",
            Op::LnClamped(..) => "ln_clamped",
            Op::SoftmaxLast(..) => "softmax_last",
            Op::LayerNorm { .. } => "layer_norm",
            Op::ConcatCols(..) => "concat_cols",
            Op::ConcatRows(..) => "concat_rows",
            Op::SliceCols(..) => "slice_cols",
            Op::SliceRows(..) => "slice_rows",
            Op::GatherRows(..) => "gather_rows",
            Op::SegmentMeanRows(..) => "segment_mean_rows",
            Op::SumAll(..) => "sum_all",
            Op::MeanAll(..) => "mean_all",
            Op::SumLast(..) => "sum_last",
            Op::Dropout(..) => "dropout",
            Op::Reshape(..) => "reshape",
            Op::BceWithLogits { .. } => "bce_with_logits",
        }
    }
}

pub(crate) struct Node {
    pub data: Vec<f32>,
    pub grad: Vec<f32>,
    pub shape: Shape,
    pub op: Op,
    pub requires_grad: bool,
    /// Index into the originating `ParamStore`, for gradient harvesting.
    pub param_src: Option<usize>,
}

/// Dynamic computation tape.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    /// Node storage bytes reported to the profiler's allocation tracker
    /// (only grows while profiling is enabled; released on reset/drop).
    tracked_bytes: u64,
}

impl Graph {
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(256),
            tracked_bytes: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drop all nodes but keep the arena's allocation, so a training loop
    /// can reuse one `Graph` across steps instead of reallocating.
    pub fn reset(&mut self) {
        self.nodes.clear();
        if self.tracked_bytes > 0 {
            profiler::on_free(self.tracked_bytes);
            self.tracked_bytes = 0;
        }
    }

    fn push(&mut self, data: Vec<f32>, shape: Shape, op: Op, requires_grad: bool) -> Tx {
        debug_assert_eq!(data.len(), shape.numel(), "data length must match shape");
        let grad = if requires_grad {
            vec![0.0; data.len()]
        } else {
            Vec::new()
        };
        if rckt_obs::profiling() {
            let bytes = ((data.len() + grad.len()) * std::mem::size_of::<f32>()) as u64;
            profiler::on_alloc(op.kind(), bytes);
            self.tracked_bytes += bytes;
        }
        self.nodes.push(Node {
            data,
            grad,
            shape,
            op,
            requires_grad,
            param_src: None,
        });
        Tx(self.nodes.len() - 1)
    }

    fn rg(&self, t: Tx) -> bool {
        self.nodes[t.0].requires_grad
    }

    /// A constant input tensor (no gradient).
    pub fn input(&mut self, data: Vec<f32>, shape: impl Into<Shape>) -> Tx {
        self.push(data, shape.into(), Op::Leaf, false)
    }

    /// A leaf that participates in differentiation (used for grad checks).
    pub fn leaf_grad(&mut self, data: Vec<f32>, shape: impl Into<Shape>) -> Tx {
        self.push(data, shape.into(), Op::Leaf, true)
    }

    /// Scalar constant.
    pub fn scalar(&mut self, v: f32) -> Tx {
        self.input(vec![v], Shape::scalar())
    }

    pub(crate) fn push_param(&mut self, data: Vec<f32>, shape: Shape, param_idx: usize) -> Tx {
        let t = self.push(data, shape, Op::Leaf, true);
        self.nodes[t.0].param_src = Some(param_idx);
        t
    }

    pub fn shape(&self, t: Tx) -> &Shape {
        &self.nodes[t.0].shape
    }

    pub fn data(&self, t: Tx) -> &[f32] {
        &self.nodes[t.0].data
    }

    pub fn grad(&self, t: Tx) -> &[f32] {
        &self.nodes[t.0].grad
    }

    /// The single value of a scalar node.
    pub fn value(&self, t: Tx) -> f32 {
        debug_assert_eq!(self.nodes[t.0].shape.numel(), 1);
        self.nodes[t.0].data[0]
    }

    // ---------------------------------------------------------------- ops

    pub fn matmul(&mut self, a: Tx, b: Tx) -> Tx {
        let _t = profiler::op_timer("matmul");
        let (m, k) = self.shape(a).mat_dims();
        let (k2, n) = self.shape(b).mat_dims();
        assert_eq!(
            k,
            k2,
            "matmul inner dims: {:?} x {:?}",
            self.shape(a),
            self.shape(b)
        );
        assert!(
            self.shape(a).rank() <= 2 && self.shape(b).rank() <= 2,
            "use bmm for rank 3"
        );
        let mut out = vec![0.0; m * n];
        kernels::matmul_acc(self.data(a), self.data(b), &mut out, m, k, n);
        _t.flops(2 * (m * k * n) as u64);
        let rg = self.rg(a) || self.rg(b);
        self.push(out, Shape::matrix(m, n), Op::Matmul(a, b), rg)
    }

    pub fn bmm(&mut self, a: Tx, b: Tx) -> Tx {
        let _t = profiler::op_timer("bmm");
        let (sa, sb) = (self.shape(a).clone(), self.shape(b).clone());
        assert_eq!(sa.rank(), 3, "bmm lhs must be rank 3");
        assert_eq!(sb.rank(), 3, "bmm rhs must be rank 3");
        let (bsz, m, k) = (sa.0[0], sa.0[1], sa.0[2]);
        let (bsz2, k2, n) = (sb.0[0], sb.0[1], sb.0[2]);
        assert_eq!(bsz, bsz2, "bmm batch dims");
        assert_eq!(k, k2, "bmm inner dims");
        let mut out = vec![0.0; bsz * m * n];
        {
            // Batch slices are independent: split them across the pool (the
            // per-slice matmul runs inline when already inside a parallel
            // region, so this composes with kernel-level parallelism).
            let (ad, bd) = (self.data(a), self.data(b));
            pool::parallel_chunks_mut(&mut out, m * n, &|i, c_slice| {
                kernels::matmul_acc(
                    &ad[i * m * k..(i + 1) * m * k],
                    &bd[i * k * n..(i + 1) * k * n],
                    c_slice,
                    m,
                    k,
                    n,
                );
            });
        }
        _t.flops(2 * (bsz * m * k * n) as u64);
        let rg = self.rg(a) || self.rg(b);
        self.push(out, Shape::cube(bsz, m, n), Op::Bmm(a, b), rg)
    }

    /// Swap the two trailing dimensions.
    pub fn transpose(&mut self, a: Tx) -> Tx {
        let _t = profiler::op_timer("transpose");
        let s = self.shape(a).clone();
        let (m, n) = s.mat_dims();
        let bsz = s.batch();
        let mut out = vec![0.0; s.numel()];
        for i in 0..bsz {
            kernels::transpose(
                &self.data(a)[i * m * n..(i + 1) * m * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                n,
            );
        }
        let shape = if s.rank() == 3 {
            Shape::cube(bsz, n, m)
        } else {
            Shape::matrix(n, m)
        };
        let rg = self.rg(a);
        self.push(out, shape, Op::Transpose(a), rg)
    }

    pub fn add(&mut self, a: Tx, b: Tx) -> Tx {
        let _t = profiler::op_timer("add");
        assert_eq!(self.shape(a), self.shape(b), "add shapes");
        let mut out = vec![0.0; self.data(a).len()];
        kernels::map_binary(self.data(a), self.data(b), &mut out, |x, y| x + y);
        let shape = self.shape(a).clone();
        let rg = self.rg(a) || self.rg(b);
        self.push(out, shape, Op::Add(a, b), rg)
    }

    /// Broadcast-add a row vector to every row.
    pub fn add_row(&mut self, a: Tx, row: Tx) -> Tx {
        let _t = profiler::op_timer("add_row");
        let n = self.shape(a).cols();
        assert_eq!(self.shape(row).numel(), n, "add_row vector length");
        let mut out = self.data(a).to_vec();
        {
            let r = self.data(row);
            for chunk in out.chunks_exact_mut(n) {
                for (c, &v) in chunk.iter_mut().zip(r) {
                    *c += v;
                }
            }
        }
        let shape = self.shape(a).clone();
        let rg = self.rg(a) || self.rg(row);
        self.push(out, shape, Op::AddRow(a, row), rg)
    }

    pub fn add_scalar(&mut self, a: Tx, c: f32) -> Tx {
        let _t = profiler::op_timer("add_scalar");
        let out: Vec<f32> = self.data(a).iter().map(|x| x + c).collect();
        let shape = self.shape(a).clone();
        let rg = self.rg(a);
        self.push(out, shape, Op::AddScalar(a), rg)
    }

    pub fn sub(&mut self, a: Tx, b: Tx) -> Tx {
        let _t = profiler::op_timer("sub");
        assert_eq!(self.shape(a), self.shape(b), "sub shapes");
        let mut out = vec![0.0; self.data(a).len()];
        kernels::map_binary(self.data(a), self.data(b), &mut out, |x, y| x - y);
        let shape = self.shape(a).clone();
        let rg = self.rg(a) || self.rg(b);
        self.push(out, shape, Op::Sub(a, b), rg)
    }

    pub fn mul(&mut self, a: Tx, b: Tx) -> Tx {
        let _t = profiler::op_timer("mul");
        assert_eq!(self.shape(a), self.shape(b), "mul shapes");
        let mut out = vec![0.0; self.data(a).len()];
        kernels::map_binary(self.data(a), self.data(b), &mut out, |x, y| x * y);
        let shape = self.shape(a).clone();
        let rg = self.rg(a) || self.rg(b);
        self.push(out, shape, Op::Mul(a, b), rg)
    }

    pub fn mul_scalar(&mut self, a: Tx, c: f32) -> Tx {
        let _t = profiler::op_timer("mul_scalar");
        let out: Vec<f32> = self.data(a).iter().map(|x| x * c).collect();
        let shape = self.shape(a).clone();
        let rg = self.rg(a);
        self.push(out, shape, Op::MulScalar(a, c), rg)
    }

    pub fn neg(&mut self, a: Tx) -> Tx {
        self.mul_scalar(a, -1.0)
    }

    pub fn sigmoid(&mut self, a: Tx) -> Tx {
        let _t = profiler::op_timer("sigmoid");
        let mut out = vec![0.0; self.data(a).len()];
        kernels::map_unary(self.data(a), &mut out, sigmoid);
        let shape = self.shape(a).clone();
        let rg = self.rg(a);
        self.push(out, shape, Op::Sigmoid(a), rg)
    }

    pub fn tanh(&mut self, a: Tx) -> Tx {
        let _t = profiler::op_timer("tanh");
        let mut out = vec![0.0; self.data(a).len()];
        kernels::map_unary(self.data(a), &mut out, |x| x.tanh());
        let shape = self.shape(a).clone();
        let rg = self.rg(a);
        self.push(out, shape, Op::Tanh(a), rg)
    }

    pub fn relu(&mut self, a: Tx) -> Tx {
        let _t = profiler::op_timer("relu");
        let mut out = vec![0.0; self.data(a).len()];
        kernels::map_unary(self.data(a), &mut out, |x| x.max(0.0));
        let shape = self.shape(a).clone();
        let rg = self.rg(a);
        self.push(out, shape, Op::Relu(a), rg)
    }

    pub fn exp(&mut self, a: Tx) -> Tx {
        let _t = profiler::op_timer("exp");
        let mut out = vec![0.0; self.data(a).len()];
        kernels::map_unary(self.data(a), &mut out, |x| x.exp());
        let shape = self.shape(a).clone();
        let rg = self.rg(a);
        self.push(out, shape, Op::Exp(a), rg)
    }

    /// `ln(max(x, eps))` — the clamp keeps log-losses finite.
    pub fn ln_clamped(&mut self, a: Tx, eps: f32) -> Tx {
        let _t = profiler::op_timer("ln_clamped");
        let out: Vec<f32> = self.data(a).iter().map(|x| x.max(eps).ln()).collect();
        let shape = self.shape(a).clone();
        let rg = self.rg(a);
        self.push(out, shape, Op::LnClamped(a, eps), rg)
    }

    pub fn softmax_last(&mut self, a: Tx) -> Tx {
        let _t = profiler::op_timer("softmax_last");
        let n = self.shape(a).cols();
        let mut out = vec![0.0; self.shape(a).numel()];
        kernels::softmax_rows(self.data(a), &mut out, n);
        let shape = self.shape(a).clone();
        let rg = self.rg(a);
        self.push(out, shape, Op::SoftmaxLast(a), rg)
    }

    pub fn layer_norm(&mut self, x: Tx, gamma: Tx, beta: Tx, eps: f32) -> Tx {
        let _t = profiler::op_timer("layer_norm");
        let n = self.shape(x).cols();
        assert_eq!(self.shape(gamma).numel(), n);
        assert_eq!(self.shape(beta).numel(), n);
        let mut out = vec![0.0; self.shape(x).numel()];
        kernels::layer_norm_rows(
            self.data(x),
            self.data(gamma),
            self.data(beta),
            &mut out,
            n,
            eps,
        );
        let shape = self.shape(x).clone();
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        self.push(
            out,
            shape,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            },
            rg,
        )
    }

    pub fn concat_cols(&mut self, a: Tx, b: Tx) -> Tx {
        let _t = profiler::op_timer("concat_cols");
        let (m, na) = self.shape(a).mat_dims();
        let (m2, nb) = self.shape(b).mat_dims();
        assert_eq!(m, m2, "concat_cols rows");
        assert!(self.shape(a).rank() <= 2 && self.shape(b).rank() <= 2);
        let mut out = Vec::with_capacity(m * (na + nb));
        for i in 0..m {
            out.extend_from_slice(&self.data(a)[i * na..(i + 1) * na]);
            out.extend_from_slice(&self.data(b)[i * nb..(i + 1) * nb]);
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(out, Shape::matrix(m, na + nb), Op::ConcatCols(a, b), rg)
    }

    pub fn concat_rows(&mut self, parts: &[Tx]) -> Tx {
        let _t = profiler::op_timer("concat_rows");
        assert!(!parts.is_empty());
        let n = self.shape(parts[0]).cols();
        let mut rows = 0;
        let mut out = Vec::new();
        let mut rg = false;
        for &p in parts {
            assert_eq!(self.shape(p).cols(), n, "concat_rows cols");
            rows += self.shape(p).rows();
            out.extend_from_slice(self.data(p));
            rg |= self.rg(p);
        }
        self.push(
            out,
            Shape::matrix(rows, n),
            Op::ConcatRows(parts.to_vec()),
            rg,
        )
    }

    pub fn slice_cols(&mut self, a: Tx, start: usize, end: usize) -> Tx {
        let _t = profiler::op_timer("slice_cols");
        let (m, n) = self.shape(a).mat_dims();
        assert!(self.shape(a).rank() <= 2);
        assert!(
            start < end && end <= n,
            "slice_cols range {start}..{end} of {n}"
        );
        let w = end - start;
        let mut out = Vec::with_capacity(m * w);
        for i in 0..m {
            out.extend_from_slice(&self.data(a)[i * n + start..i * n + end]);
        }
        let rg = self.rg(a);
        self.push(out, Shape::matrix(m, w), Op::SliceCols(a, start, end), rg)
    }

    pub fn slice_rows(&mut self, a: Tx, start: usize, end: usize) -> Tx {
        let _t = profiler::op_timer("slice_rows");
        let (m, n) = self.shape(a).mat_dims();
        assert!(self.shape(a).rank() <= 2);
        assert!(
            start < end && end <= m,
            "slice_rows range {start}..{end} of {m}"
        );
        let out = self.data(a)[start * n..end * n].to_vec();
        let rg = self.rg(a);
        self.push(
            out,
            Shape::matrix(end - start, n),
            Op::SliceRows(a, start, end),
            rg,
        )
    }

    /// Embedding-style lookup: output row `i` is `table` row `indices[i]`.
    pub fn gather_rows(&mut self, table: Tx, indices: &[usize]) -> Tx {
        let _t = profiler::op_timer("gather_rows");
        let (m, n) = self.shape(table).mat_dims();
        assert!(self.shape(table).rank() <= 2);
        let mut out = Vec::with_capacity(indices.len() * n);
        for &ix in indices {
            assert!(ix < m, "gather index {ix} out of {m} rows");
            out.extend_from_slice(&self.data(table)[ix * n..(ix + 1) * n]);
        }
        let rg = self.rg(table);
        self.push(
            out,
            Shape::matrix(indices.len(), n),
            Op::GatherRows(table, indices.to_vec()),
            rg,
        )
    }

    /// Mean over consecutive row groups of sizes `lens` (all > 0, summing to
    /// the row count of `a`). Output row `i` is the mean of group `i`.
    pub fn segment_mean_rows(&mut self, a: Tx, lens: &[usize]) -> Tx {
        let _t = profiler::op_timer("segment_mean_rows");
        let (m, n) = self.shape(a).mat_dims();
        assert!(self.shape(a).rank() <= 2);
        assert_eq!(
            lens.iter().sum::<usize>(),
            m,
            "segment lengths must cover all rows"
        );
        let mut out = Vec::with_capacity(lens.len() * n);
        let data = self.data(a);
        let mut row = 0;
        for &len in lens {
            assert!(len > 0, "empty segment");
            let inv = 1.0 / len as f32;
            for j in 0..n {
                let mut s = 0.0;
                for r in row..row + len {
                    s += data[r * n + j];
                }
                out.push(s * inv);
            }
            row += len;
        }
        let rg = self.rg(a);
        self.push(
            out,
            Shape::matrix(lens.len(), n),
            Op::SegmentMeanRows(a, lens.to_vec()),
            rg,
        )
    }

    pub fn sum_all(&mut self, a: Tx) -> Tx {
        let _t = profiler::op_timer("sum_all");
        let s: f32 = self.data(a).iter().sum();
        let rg = self.rg(a);
        self.push(vec![s], Shape::scalar(), Op::SumAll(a), rg)
    }

    pub fn mean_all(&mut self, a: Tx) -> Tx {
        let _t = profiler::op_timer("mean_all");
        let n = self.data(a).len() as f32;
        let s: f32 = self.data(a).iter().sum::<f32>() / n;
        let rg = self.rg(a);
        self.push(vec![s], Shape::scalar(), Op::MeanAll(a), rg)
    }

    /// Sum over the last dimension: `[m, n] -> [m, 1]`.
    pub fn sum_last(&mut self, a: Tx) -> Tx {
        let _t = profiler::op_timer("sum_last");
        let n = self.shape(a).cols();
        let rows = self.shape(a).rows();
        let out: Vec<f32> = self
            .data(a)
            .chunks_exact(n)
            .map(|r| r.iter().sum())
            .collect();
        let rg = self.rg(a);
        self.push(out, Shape::matrix(rows, 1), Op::SumLast(a), rg)
    }

    /// Apply a pre-sampled inverted-dropout mask (entries are `0` or `1/(1-p)`).
    pub fn dropout_mask(&mut self, a: Tx, mask: Vec<f32>) -> Tx {
        let _t = profiler::op_timer("dropout");
        assert_eq!(mask.len(), self.data(a).len());
        let out: Vec<f32> = self.data(a).iter().zip(&mask).map(|(x, m)| x * m).collect();
        let shape = self.shape(a).clone();
        let rg = self.rg(a);
        self.push(out, shape, Op::Dropout(a, mask), rg)
    }

    pub fn reshape(&mut self, a: Tx, shape: impl Into<Shape>) -> Tx {
        let _t = profiler::op_timer("reshape");
        let shape = shape.into();
        assert_eq!(shape.numel(), self.shape(a).numel(), "reshape numel");
        let out = self.data(a).to_vec();
        let rg = self.rg(a);
        self.push(out, shape, Op::Reshape(a), rg)
    }

    /// Numerically stable weighted binary cross-entropy on logits, reduced to
    /// a scalar: `sum_i w_i * bce(z_i, t_i) / norm`.
    pub fn bce_with_logits(
        &mut self,
        logits: Tx,
        targets: &[f32],
        weights: &[f32],
        norm: f32,
    ) -> Tx {
        let _t = profiler::op_timer("bce_with_logits");
        let z = self.data(logits);
        assert_eq!(z.len(), targets.len());
        assert_eq!(z.len(), weights.len());
        assert!(norm > 0.0);
        let mut loss = 0.0f64;
        for ((&zi, &ti), &wi) in z.iter().zip(targets).zip(weights) {
            if wi == 0.0 {
                continue;
            }
            // max(z,0) - z*t + ln(1 + e^{-|z|})
            let l = zi.max(0.0) - zi * ti + (-zi.abs()).exp().ln_1p();
            loss += (wi * l) as f64;
        }
        let rg = self.rg(logits);
        self.push(
            vec![(loss / norm as f64) as f32],
            Shape::scalar(),
            Op::BceWithLogits {
                logits,
                targets: targets.to_vec(),
                weights: weights.to_vec(),
                norm,
            },
            rg,
        )
    }

    // ----------------------------------------------------------- backward

    /// Run reverse-mode differentiation from scalar node `loss`.
    pub fn backward(&mut self, loss: Tx) {
        assert_eq!(
            self.nodes[loss.0].shape.numel(),
            1,
            "backward needs a scalar loss"
        );
        assert!(
            self.nodes[loss.0].requires_grad,
            "loss does not depend on any parameter"
        );
        self.nodes[loss.0].grad[0] = 1.0;

        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let op = self.nodes[idx].op.clone();
            if matches!(op, Op::Leaf) {
                continue;
            }
            let g = std::mem::take(&mut self.nodes[idx].grad);
            {
                let _t = profiler::op_timer_bwd(op.kind());
                self.backprop_one(idx, &op, &g);
            }
            self.nodes[idx].grad = g;
        }
    }

    fn add_grad(&mut self, t: Tx, f: impl FnOnce(&mut [f32])) {
        if self.nodes[t.0].requires_grad {
            f(&mut self.nodes[t.0].grad);
        }
    }

    fn backprop_one(&mut self, idx: usize, op: &Op, g: &[f32]) {
        match *op {
            Op::Leaf => {}
            Op::Matmul(a, b) => {
                let (m, k) = self.shape(a).mat_dims();
                let n = self.shape(b).cols();
                if self.rg(a) {
                    let bd = self.nodes[b.0].data.clone();
                    self.add_grad(a, |ga| kernels::matmul_bt_acc(g, &bd, ga, m, n, k));
                }
                if self.rg(b) {
                    let ad = self.nodes[a.0].data.clone();
                    self.add_grad(b, |gb| kernels::matmul_at_acc(&ad, g, gb, m, k, n));
                }
            }
            Op::Bmm(a, b) => {
                let (m, k) = {
                    let s = self.shape(a);
                    (s.0[1], s.0[2])
                };
                let n = self.shape(b).0[2];
                if self.rg(a) {
                    let bd = self.nodes[b.0].data.clone();
                    self.add_grad(a, |ga| {
                        pool::parallel_chunks_mut(ga, m * k, &|i, ga_slice| {
                            kernels::matmul_bt_acc(
                                &g[i * m * n..(i + 1) * m * n],
                                &bd[i * k * n..(i + 1) * k * n],
                                ga_slice,
                                m,
                                n,
                                k,
                            );
                        });
                    });
                }
                if self.rg(b) {
                    let ad = self.nodes[a.0].data.clone();
                    self.add_grad(b, |gb| {
                        pool::parallel_chunks_mut(gb, k * n, &|i, gb_slice| {
                            kernels::matmul_at_acc(
                                &ad[i * m * k..(i + 1) * m * k],
                                &g[i * m * n..(i + 1) * m * n],
                                gb_slice,
                                m,
                                k,
                                n,
                            );
                        });
                    });
                }
            }
            Op::Transpose(a) => {
                let s_out = self.nodes[idx].shape.clone();
                let (m, n) = s_out.mat_dims(); // output dims
                let bsz = s_out.batch();
                self.add_grad(a, |ga| {
                    let mut tmp = vec![0.0; m * n];
                    for i in 0..bsz {
                        kernels::transpose(&g[i * m * n..(i + 1) * m * n], &mut tmp, m, n);
                        for (gv, tv) in ga[i * m * n..(i + 1) * m * n].iter_mut().zip(&tmp) {
                            *gv += *tv;
                        }
                    }
                });
            }
            Op::Add(a, b) => {
                self.add_grad(a, |ga| acc(ga, g));
                self.add_grad(b, |gb| acc(gb, g));
            }
            Op::AddRow(a, row) => {
                self.add_grad(a, |ga| acc(ga, g));
                let n = self.shape(row).numel();
                self.add_grad(row, |gr| {
                    for chunk in g.chunks_exact(n) {
                        for (r, &v) in gr.iter_mut().zip(chunk) {
                            *r += v;
                        }
                    }
                });
            }
            Op::AddScalar(a) => self.add_grad(a, |ga| acc(ga, g)),
            Op::Sub(a, b) => {
                self.add_grad(a, |ga| acc(ga, g));
                self.add_grad(b, |gb| {
                    for (x, &v) in gb.iter_mut().zip(g) {
                        *x -= v;
                    }
                });
            }
            Op::Mul(a, b) => {
                if self.rg(a) {
                    let bd = self.nodes[b.0].data.clone();
                    self.add_grad(a, |ga| {
                        for ((x, &v), &y) in ga.iter_mut().zip(g).zip(&bd) {
                            *x += v * y;
                        }
                    });
                }
                if self.rg(b) {
                    let ad = self.nodes[a.0].data.clone();
                    self.add_grad(b, |gb| {
                        for ((x, &v), &y) in gb.iter_mut().zip(g).zip(&ad) {
                            *x += v * y;
                        }
                    });
                }
            }
            Op::MulScalar(a, c) => self.add_grad(a, |ga| {
                for (x, &v) in ga.iter_mut().zip(g) {
                    *x += v * c;
                }
            }),
            Op::Sigmoid(a) => {
                let y = self.nodes[idx].data.clone();
                self.add_grad(a, |ga| {
                    for ((x, &v), &yv) in ga.iter_mut().zip(g).zip(&y) {
                        *x += v * yv * (1.0 - yv);
                    }
                });
            }
            Op::Tanh(a) => {
                let y = self.nodes[idx].data.clone();
                self.add_grad(a, |ga| {
                    for ((x, &v), &yv) in ga.iter_mut().zip(g).zip(&y) {
                        *x += v * (1.0 - yv * yv);
                    }
                });
            }
            Op::Relu(a) => {
                let xin = self.nodes[a.0].data.clone();
                self.add_grad(a, |ga| {
                    for ((x, &v), &xi) in ga.iter_mut().zip(g).zip(&xin) {
                        if xi > 0.0 {
                            *x += v;
                        }
                    }
                });
            }
            Op::Exp(a) => {
                let y = self.nodes[idx].data.clone();
                self.add_grad(a, |ga| {
                    for ((x, &v), &yv) in ga.iter_mut().zip(g).zip(&y) {
                        *x += v * yv;
                    }
                });
            }
            Op::LnClamped(a, eps) => {
                let xin = self.nodes[a.0].data.clone();
                self.add_grad(a, |ga| {
                    for ((x, &v), &xi) in ga.iter_mut().zip(g).zip(&xin) {
                        if xi > eps {
                            *x += v / xi;
                        }
                    }
                });
            }
            Op::SoftmaxLast(a) => {
                let y = self.nodes[idx].data.clone();
                let n = self.nodes[idx].shape.cols();
                self.add_grad(a, |ga| {
                    for ((ga_row, g_row), y_row) in ga
                        .chunks_exact_mut(n)
                        .zip(g.chunks_exact(n))
                        .zip(y.chunks_exact(n))
                    {
                        let dot: f32 = g_row.iter().zip(y_row).map(|(a, b)| a * b).sum();
                        for j in 0..n {
                            ga_row[j] += y_row[j] * (g_row[j] - dot);
                        }
                    }
                });
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            } => {
                let n = self.nodes[idx].shape.cols();
                let xd = self.nodes[x.0].data.clone();
                let gd = self.nodes[gamma.0].data.clone();
                // Recompute per-row statistics (cheaper than caching).
                let rows = xd.len() / n;
                let mut xhat = vec![0.0f32; xd.len()];
                let mut invs = vec![0.0f32; rows];
                for r in 0..rows {
                    let x_row = &xd[r * n..(r + 1) * n];
                    let mean = x_row.iter().sum::<f32>() / n as f32;
                    let var = x_row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
                    let inv = 1.0 / (var + eps).sqrt();
                    invs[r] = inv;
                    for j in 0..n {
                        xhat[r * n + j] = (x_row[j] - mean) * inv;
                    }
                }
                self.add_grad(gamma, |gg| {
                    for r in 0..rows {
                        for j in 0..n {
                            gg[j] += g[r * n + j] * xhat[r * n + j];
                        }
                    }
                });
                self.add_grad(beta, |gb| {
                    for r in 0..rows {
                        for j in 0..n {
                            gb[j] += g[r * n + j];
                        }
                    }
                });
                self.add_grad(x, |gx| {
                    for r in 0..rows {
                        let gy = &g[r * n..(r + 1) * n];
                        let xh = &xhat[r * n..(r + 1) * n];
                        // dl/dxhat_j = gy_j * gamma_j
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        for j in 0..n {
                            let d = gy[j] * gd[j];
                            sum_dxhat += d;
                            sum_dxhat_xhat += d * xh[j];
                        }
                        let inv = invs[r];
                        for j in 0..n {
                            let d = gy[j] * gd[j];
                            gx[r * n + j] += inv
                                * (d - sum_dxhat / n as f32 - xh[j] * sum_dxhat_xhat / n as f32);
                        }
                    }
                });
            }
            Op::ConcatCols(a, b) => {
                let na = self.shape(a).cols();
                let nb = self.shape(b).cols();
                let m = self.shape(a).rows();
                self.add_grad(a, |ga| {
                    for i in 0..m {
                        for j in 0..na {
                            ga[i * na + j] += g[i * (na + nb) + j];
                        }
                    }
                });
                self.add_grad(b, |gb| {
                    for i in 0..m {
                        for j in 0..nb {
                            gb[i * nb + j] += g[i * (na + nb) + na + j];
                        }
                    }
                });
            }
            Op::ConcatRows(ref parts) => {
                let parts = parts.clone();
                let mut offset = 0;
                for p in parts {
                    let len = self.shape(p).numel();
                    self.add_grad(p, |gp| acc(gp, &g[offset..offset + len]));
                    offset += len;
                }
            }
            Op::SliceCols(a, start, end) => {
                let n = self.shape(a).cols();
                let w = end - start;
                self.add_grad(a, |ga| {
                    for (i, row) in g.chunks_exact(w).enumerate() {
                        for (j, &v) in row.iter().enumerate() {
                            ga[i * n + start + j] += v;
                        }
                    }
                });
            }
            Op::SliceRows(a, start, _end) => {
                let n = self.shape(a).cols();
                self.add_grad(a, |ga| acc(&mut ga[start * n..start * n + g.len()], g));
            }
            Op::GatherRows(table, ref indices) => {
                let indices = indices.clone();
                let n = self.shape(table).cols();
                self.add_grad(table, |gt| {
                    for (i, &ix) in indices.iter().enumerate() {
                        for j in 0..n {
                            gt[ix * n + j] += g[i * n + j];
                        }
                    }
                });
            }
            Op::SegmentMeanRows(a, ref lens) => {
                let lens = lens.clone();
                let n = self.shape(a).cols();
                self.add_grad(a, |ga| {
                    let mut row = 0;
                    for (i, &len) in lens.iter().enumerate() {
                        let inv = 1.0 / len as f32;
                        for r in row..row + len {
                            for j in 0..n {
                                ga[r * n + j] += g[i * n + j] * inv;
                            }
                        }
                        row += len;
                    }
                });
            }
            Op::SumAll(a) => self.add_grad(a, |ga| {
                for x in ga.iter_mut() {
                    *x += g[0];
                }
            }),
            Op::MeanAll(a) => {
                let inv = 1.0 / self.shape(a).numel() as f32;
                self.add_grad(a, |ga| {
                    for x in ga.iter_mut() {
                        *x += g[0] * inv;
                    }
                });
            }
            Op::SumLast(a) => {
                let n = self.shape(a).cols();
                self.add_grad(a, |ga| {
                    for (i, row) in ga.chunks_exact_mut(n).enumerate() {
                        for x in row.iter_mut() {
                            *x += g[i];
                        }
                    }
                });
            }
            Op::Dropout(a, ref mask) => {
                let mask = mask.clone();
                self.add_grad(a, |ga| {
                    for ((x, &v), &m) in ga.iter_mut().zip(g).zip(&mask) {
                        *x += v * m;
                    }
                });
            }
            Op::Reshape(a) => self.add_grad(a, |ga| acc(ga, g)),
            Op::BceWithLogits {
                logits,
                ref targets,
                ref weights,
                norm,
            } => {
                let (targets, weights) = (targets.clone(), weights.clone());
                let zd = self.nodes[logits.0].data.clone();
                self.add_grad(logits, |gz| {
                    let scale = g[0] / norm;
                    for (i, x) in gz.iter_mut().enumerate() {
                        if weights[i] == 0.0 {
                            continue;
                        }
                        *x += scale * weights[i] * (sigmoid(zd[i]) - targets[i]);
                    }
                });
            }
        }
    }
}

impl Drop for Graph {
    fn drop(&mut self) {
        if self.tracked_bytes > 0 {
            profiler::on_free(self.tracked_bytes);
        }
    }
}

#[inline]
fn acc(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Logistic sigmoid, stable for large |x|.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}
