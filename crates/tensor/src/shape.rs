//! Tensor shapes (rank 1–3, row-major).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of a tensor. Data is stored row-major; the last dimension is
/// contiguous. Rank 1 is treated as a row vector `[1, n]` by matrix ops.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    pub fn scalar() -> Self {
        Shape(vec![1])
    }

    pub fn vector(n: usize) -> Self {
        Shape(vec![n])
    }

    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    pub fn cube(b: usize, rows: usize, cols: usize) -> Self {
        Shape(vec![b, rows, cols])
    }

    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Number of rows when viewed as a 2-D matrix (batch dims folded in).
    pub fn rows(&self) -> usize {
        match self.0.as_slice() {
            [] => 0,
            [_] => 1,
            dims => dims[..dims.len() - 1].iter().product(),
        }
    }

    /// Size of the last (contiguous) dimension.
    pub fn cols(&self) -> usize {
        *self.0.last().expect("shape must not be empty")
    }

    /// Leading batch dimension for rank-3 shapes, 1 otherwise.
    pub fn batch(&self) -> usize {
        if self.rank() == 3 {
            self.0[0]
        } else {
            1
        }
    }

    /// The two trailing matrix dimensions `(m, n)`.
    pub fn mat_dims(&self) -> (usize, usize) {
        match self.0.as_slice() {
            [n] => (1, *n),
            [m, n] => (*m, *n),
            [_, m, n] => (*m, *n),
            _ => panic!("rank > 3 unsupported"),
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        assert!(!v.is_empty() && v.len() <= 3, "supported ranks: 1..=3");
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape::from(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_dims() {
        let s = Shape::cube(2, 3, 4);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rows(), 6);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.batch(), 2);
        assert_eq!(s.mat_dims(), (3, 4));
    }

    #[test]
    fn vector_is_one_row() {
        let s = Shape::vector(5);
        assert_eq!(s.rows(), 1);
        assert_eq!(s.cols(), 5);
        assert_eq!(s.mat_dims(), (1, 5));
    }

    #[test]
    #[should_panic]
    fn rank_4_rejected() {
        let _ = Shape::from(vec![1, 2, 3, 4]);
    }
}
