//! Reusable neural layers built on the autograd [`Graph`].
//!
//! Layers own [`ParamId`]s into a shared [`ParamStore`] and are constructed
//! once; every forward pass threads `(&mut Graph, &ParamStore)` through them.
//! Sequence tensors use the *b-major* layout: a batch of `B` sequences of
//! length `T` with feature width `d` is a `[B*T, d]` matrix whose row
//! `b * T + t` holds timestep `t` of sequence `b`.

use crate::graph::{Graph, Tx};
use crate::param::{Init, ParamId, ParamStore};
use crate::shape::Shape;
use rand::rngs::SmallRng;
use rand::Rng;

/// Apply inverted dropout with probability `p` when `train` is set.
pub fn dropout(g: &mut Graph, x: Tx, p: f32, train: bool, rng: &mut SmallRng) -> Tx {
    if !train || p <= 0.0 {
        return x;
    }
    let keep = 1.0 - p;
    let scale = 1.0 / keep;
    let mask: Vec<f32> = (0..g.shape(x).numel())
        .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
        .collect();
    g.dropout_mask(x, mask)
}

/// Fully connected layer `y = x·W + b`.
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let w = store.register(
            &format!("{name}.w"),
            Shape::matrix(in_dim, out_dim),
            Init::Xavier,
            rng,
        );
        let b = store.register(
            &format!("{name}.b"),
            Shape::vector(out_dim),
            Init::Zeros,
            rng,
        );
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Tx) -> Tx {
        let w = store.leaf(g, self.w);
        let b = store.leaf(g, self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }
}

/// The paper's prediction head (Eq. 26): `sigmoid(ReLU([h ⊕ e]·W1 + b1)·W2 + b2)`.
/// `forward` returns the *logit*; apply [`Graph::sigmoid`] for probabilities.
pub struct PredictionMlp {
    pub l1: Linear,
    pub l2: Linear,
    pub dropout: f32,
}

impl PredictionMlp {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        dropout: f32,
        rng: &mut SmallRng,
    ) -> Self {
        PredictionMlp {
            l1: Linear::new(store, &format!("{name}.l1"), in_dim, hidden, rng),
            l2: Linear::new(store, &format!("{name}.l2"), hidden, 1, rng),
            dropout,
        }
    }

    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Tx,
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx {
        let h = self.l1.forward(g, store, x);
        let h = g.relu(h);
        let h = dropout(g, h, self.dropout, train, rng);
        self.l2.forward(g, store, h)
    }
}

/// Lookup table of `vocab` rows, `dim` columns.
pub struct Embedding {
    pub table: ParamId,
    pub vocab: usize,
    pub dim: usize,
}

impl Embedding {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let a = (1.0 / dim as f32).sqrt();
        let table = store.register(name, Shape::matrix(vocab, dim), Init::Uniform(a), rng);
        Embedding { table, vocab, dim }
    }

    pub fn forward(&self, g: &mut Graph, store: &ParamStore, indices: &[usize]) -> Tx {
        let t = store.leaf(g, self.table);
        g.gather_rows(t, indices)
    }
}

/// Per-feature layer normalization with learned affine transform.
pub struct LayerNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub eps: f32,
}

impl LayerNorm {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, rng: &mut SmallRng) -> Self {
        let gamma = store.register(
            &format!("{name}.gamma"),
            Shape::vector(dim),
            Init::Ones,
            rng,
        );
        let beta = store.register(
            &format!("{name}.beta"),
            Shape::vector(dim),
            Init::Zeros,
            rng,
        );
        LayerNorm {
            gamma,
            beta,
            eps: 1e-5,
        }
    }

    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Tx) -> Tx {
        let gamma = store.leaf(g, self.gamma);
        let beta = store.leaf(g, self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }
}

/// Single LSTM cell (gates ordered i, f, ĝ, o in the packed weight matrices).
pub struct LstmCell {
    pub w_ih: ParamId,
    pub w_hh: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub hidden: usize,
}

impl LstmCell {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut SmallRng,
    ) -> Self {
        let w_ih = store.register(
            &format!("{name}.w_ih"),
            Shape::matrix(in_dim, 4 * hidden),
            Init::Xavier,
            rng,
        );
        let w_hh = store.register(
            &format!("{name}.w_hh"),
            Shape::matrix(hidden, 4 * hidden),
            Init::Xavier,
            rng,
        );
        let b = store.register(
            &format!("{name}.b"),
            Shape::vector(4 * hidden),
            Init::Zeros,
            rng,
        );
        LstmCell {
            w_ih,
            w_hh,
            b,
            in_dim,
            hidden,
        }
    }

    /// One step: `(x_t [B,in], h [B,d], c [B,d]) -> (h', c')`.
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: Tx, h: Tx, c: Tx) -> (Tx, Tx) {
        let w_ih = store.leaf(g, self.w_ih);
        let w_hh = store.leaf(g, self.w_hh);
        let b = store.leaf(g, self.b);
        let xg = g.matmul(x, w_ih);
        let hg = g.matmul(h, w_hh);
        let gates = g.add(xg, hg);
        let gates = g.add_row(gates, b);
        let d = self.hidden;
        let i_g = g.slice_cols(gates, 0, d);
        let f_g = g.slice_cols(gates, d, 2 * d);
        let g_g = g.slice_cols(gates, 2 * d, 3 * d);
        let o_g = g.slice_cols(gates, 3 * d, 4 * d);
        let i_g = g.sigmoid(i_g);
        let f_g = g.sigmoid(f_g);
        let g_g = g.tanh(g_g);
        let o_g = g.sigmoid(o_g);
        let fc = g.mul(f_g, c);
        let ig = g.mul(i_g, g_g);
        let c_new = g.add(fc, ig);
        let c_t = g.tanh(c_new);
        let h_new = g.mul(o_g, c_t);
        (h_new, c_new)
    }
}

/// Row indices of timestep `t` for a b-major `[B*T, d]` sequence tensor.
pub fn time_indices(batch: usize, t_len: usize, t: usize) -> Vec<usize> {
    (0..batch).map(|b| b * t_len + t).collect()
}

/// Multi-layer unidirectional LSTM over b-major sequence tensors.
pub struct Lstm {
    pub cells: Vec<LstmCell>,
    pub hidden: usize,
    pub dropout: f32,
}

impl Lstm {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        layers: usize,
        dropout: f32,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(layers >= 1);
        let cells = (0..layers)
            .map(|l| {
                let dim = if l == 0 { in_dim } else { hidden };
                LstmCell::new(store, &format!("{name}.l{l}"), dim, hidden, rng)
            })
            .collect();
        Lstm {
            cells,
            hidden,
            dropout,
        }
    }

    /// Process `x [B*T, in]`; returns hidden states `[B*T, hidden]` in the
    /// same b-major layout. `reverse` runs time back-to-front (for the
    /// backward half of a bidirectional encoder).
    ///
    /// When `valid` is given (b-major `[B*T]`), steps at invalid positions
    /// keep the previous state instead of consuming the input — essential
    /// for the reverse direction, where padding precedes real data in
    /// processing order.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Tx,
        batch: usize,
        t_len: usize,
        reverse: bool,
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx {
        self.forward_masked(g, store, x, batch, t_len, reverse, None, train, rng)
    }

    /// [`Lstm::forward`] with an optional validity mask.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_masked(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Tx,
        batch: usize,
        t_len: usize,
        reverse: bool,
        valid: Option<&[bool]>,
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx {
        if let Some(v) = valid {
            assert_eq!(v.len(), batch * t_len, "validity mask length");
        }
        let mut layer_in = x;
        for (li, cell) in self.cells.iter().enumerate() {
            let zeros = vec![0.0; batch * self.hidden];
            let mut h = g.input(zeros.clone(), Shape::matrix(batch, self.hidden));
            let mut c = g.input(zeros, Shape::matrix(batch, self.hidden));
            let mut outs: Vec<Tx> = Vec::with_capacity(t_len);
            let order: Vec<usize> = if reverse {
                (0..t_len).rev().collect()
            } else {
                (0..t_len).collect()
            };
            for &t in &order {
                let idx = time_indices(batch, t_len, t);
                let x_t = g.gather_rows(layer_in, &idx);
                let (mut h2, mut c2) = cell.step(g, store, x_t, h, c);
                if let Some(v) = valid {
                    // gate: state advances only at valid positions
                    let gate: Vec<f32> = (0..batch)
                        .flat_map(|b| {
                            let on = v[b * t_len + t] as u8 as f32;
                            std::iter::repeat(on).take(self.hidden)
                        })
                        .collect();
                    if gate.contains(&0.0) {
                        let dh = g.sub(h2, h);
                        let dh = g.dropout_mask(dh, gate.clone());
                        h2 = g.add(h, dh);
                        let dc = g.sub(c2, c);
                        let dc = g.dropout_mask(dc, gate);
                        c2 = g.add(c, dc);
                    }
                }
                h = h2;
                c = c2;
                outs.push(h);
            }
            if reverse {
                outs.reverse(); // restore natural time order
            }
            // outs is t-major ([T][B, d]); restore b-major rows b*T+t.
            let stacked = g.concat_rows(&outs);
            let perm: Vec<usize> = (0..batch)
                .flat_map(|b| (0..t_len).map(move |t| t * batch + b))
                .collect();
            let mut out = g.gather_rows(stacked, &perm);
            if li + 1 < self.cells.len() {
                out = dropout(g, out, self.dropout, train, rng);
            }
            layer_in = out;
        }
        layer_in
    }
}

/// Optional structural biases for attention scores.
pub struct AttentionBias {
    /// Additive mask `[B*T*T]`, typically `0` / `-1e9` (causal or padding).
    pub mask: Option<Vec<f32>>,
    /// Pairwise distances `[T*T]` for monotonic (AKT-style) decay; ignored
    /// unless the attention layer was built with `monotonic = true`.
    pub distances: Option<Vec<f32>>,
}

impl AttentionBias {
    pub fn none() -> Self {
        AttentionBias {
            mask: None,
            distances: None,
        }
    }
}

/// Multi-head scaled-dot-product attention with optional AKT-style monotonic
/// distance decay (a learned per-head rate θ ≥ 0 subtracting `θ·dist` from
/// the pre-softmax scores, the duality-friendly form that works in both
/// directions).
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub heads: usize,
    pub dim: usize,
    /// Per-head decay-rate parameters (pre-softplus), present iff monotonic.
    pub theta: Option<ParamId>,
    pub dropout: f32,
}

/// Attention output plus per-head post-softmax weights (for interpretability
/// probes such as the paper's Fig. 6 SAKT+ comparison).
pub struct AttentionOutput {
    pub out: Tx,
    pub weights: Vec<Tx>,
}

impl MultiHeadAttention {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        monotonic: bool,
        dropout: f32,
        rng: &mut SmallRng,
    ) -> Self {
        assert_eq!(dim % heads, 0, "dim must divide by heads");
        // Pre-softplus init of -2.5 gives a decay rate θ ≈ 0.08/step — a
        // gentle recency bias with an effective span of ~12 steps. Large
        // inits collapse the attention span to the nearest key.
        let theta = monotonic.then(|| {
            store.register(
                &format!("{name}.theta"),
                Shape::vector(heads),
                Init::Constant(-2.5),
                rng,
            )
        });
        MultiHeadAttention {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, rng),
            heads,
            dim,
            theta,
            dropout,
        }
    }

    /// `q/k/v` are `[B*T, dim]` b-major sequence tensors.
    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        q_in: Tx,
        k_in: Tx,
        v_in: Tx,
        batch: usize,
        t_q: usize,
        t_k: usize,
        bias: &AttentionBias,
        train: bool,
        rng: &mut SmallRng,
    ) -> AttentionOutput {
        let dh = self.dim / self.heads;
        let q = self.wq.forward(g, store, q_in);
        let k = self.wk.forward(g, store, k_in);
        let v = self.wv.forward(g, store, v_in);

        let mask_t = bias
            .mask
            .as_ref()
            .map(|m| g.input(m.clone(), Shape::cube(batch, t_q, t_k)));

        // θ·dist bias, shared across batch, computed per head below.
        let theta_sp = self.theta.map(|pid| {
            let th = store.leaf(g, pid); // [heads]
                                         // softplus for positivity: ln(1 + e^x)
            let e = g.exp(th);
            let e1 = g.add_scalar(e, 1.0);
            g.ln_clamped(e1, 1e-12)
        });

        let mut head_outs = Vec::with_capacity(self.heads);
        let mut head_weights = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let q_h = g.slice_cols(q, h * dh, (h + 1) * dh);
            let k_h = g.slice_cols(k, h * dh, (h + 1) * dh);
            let v_h = g.slice_cols(v, h * dh, (h + 1) * dh);
            let q3 = g.reshape(q_h, Shape::cube(batch, t_q, dh));
            let k3 = g.reshape(k_h, Shape::cube(batch, t_k, dh));
            let v3 = g.reshape(v_h, Shape::cube(batch, t_k, dh));
            let k3t = g.transpose(k3);
            let scores = g.bmm(q3, k3t);
            let mut scores = g.mul_scalar(scores, 1.0 / (dh as f32).sqrt());
            if let (Some(theta), Some(dist)) = (theta_sp, bias.distances.as_ref()) {
                // dist [T_q*T_k, 1] · θ_h [1,1] -> broadcast per-batch bias.
                debug_assert_eq!(dist.len(), t_q * t_k);
                let dcol = g.input(dist.clone(), Shape::matrix(t_q * t_k, 1));
                let th_h = g.slice_cols(theta, h, h + 1); // [1,1]
                let decay = g.matmul(dcol, th_h); // [T_q*T_k, 1]
                let decay = g.reshape(decay, Shape::matrix(t_q, t_k));
                // replicate across batch
                let reps: Vec<Tx> = (0..batch).map(|_| decay).collect();
                let decay_b = g.concat_rows(&reps);
                let decay_b = g.reshape(decay_b, Shape::cube(batch, t_q, t_k));
                scores = g.sub(scores, decay_b);
            }
            if let Some(m) = mask_t {
                scores = g.add(scores, m);
            }
            let att = g.softmax_last(scores);
            let att_d = dropout(g, att, self.dropout, train, rng);
            let out3 = g.bmm(att_d, v3); // [B, T_q, dh]
            let out2 = g.reshape(out3, Shape::matrix(batch * t_q, dh));
            head_outs.push(out2);
            head_weights.push(att);
        }
        let mut cat = head_outs[0];
        for &h in &head_outs[1..] {
            cat = g.concat_cols(cat, h);
        }
        let out = self.wo.forward(g, store, cat);
        AttentionOutput {
            out,
            weights: head_weights,
        }
    }
}

/// Position-wise feed-forward block (Linear → ReLU → dropout → Linear).
pub struct FeedForward {
    pub l1: Linear,
    pub l2: Linear,
    pub dropout: f32,
}

impl FeedForward {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        hidden: usize,
        dropout: f32,
        rng: &mut SmallRng,
    ) -> Self {
        FeedForward {
            l1: Linear::new(store, &format!("{name}.l1"), dim, hidden, rng),
            l2: Linear::new(store, &format!("{name}.l2"), hidden, dim, rng),
            dropout,
        }
    }

    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Tx,
        train: bool,
        rng: &mut SmallRng,
    ) -> Tx {
        let h = self.l1.forward(g, store, x);
        let h = g.relu(h);
        let h = dropout(g, h, self.dropout, train, rng);
        self.l2.forward(g, store, h)
    }
}

/// Pre-norm transformer encoder block: `x + Att(LN(x))`, then `x + FFN(LN(x))`.
pub struct TransformerBlock {
    pub attn: MultiHeadAttention,
    pub ffn: FeedForward,
    pub ln1: LayerNorm,
    pub ln2: LayerNorm,
}

impl TransformerBlock {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        monotonic: bool,
        dropout: f32,
        rng: &mut SmallRng,
    ) -> Self {
        TransformerBlock {
            attn: MultiHeadAttention::new(
                store,
                &format!("{name}.attn"),
                dim,
                heads,
                monotonic,
                dropout,
                rng,
            ),
            ffn: FeedForward::new(store, &format!("{name}.ffn"), dim, 4 * dim, dropout, rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim, rng),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim, rng),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Tx,
        batch: usize,
        t_len: usize,
        bias: &AttentionBias,
        train: bool,
        rng: &mut SmallRng,
    ) -> AttentionOutput {
        let xn = self.ln1.forward(g, store, x);
        let att = self
            .attn
            .forward(g, store, xn, xn, xn, batch, t_len, t_len, bias, train, rng);
        let x1 = g.add(x, att.out);
        let x1n = self.ln2.forward(g, store, x1);
        let ff = self.ffn.forward(g, store, x1n, train, rng);
        let out = g.add(x1, ff);
        AttentionOutput {
            out,
            weights: att.weights,
        }
    }
}

/// Sinusoidal or learned positional embeddings for length-`max_len` sequences.
pub struct PositionalEmbedding {
    pub table: Embedding,
    pub max_len: usize,
}

impl PositionalEmbedding {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        max_len: usize,
        dim: usize,
        rng: &mut SmallRng,
    ) -> Self {
        PositionalEmbedding {
            table: Embedding::new(store, name, max_len, dim, rng),
            max_len,
        }
    }

    /// Positional rows for a b-major `[B*T, d]` tensor.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, batch: usize, t_len: usize) -> Tx {
        assert!(t_len <= self.max_len);
        let idx: Vec<usize> = (0..batch).flat_map(|_| 0..t_len).collect();
        self.table.forward(g, store, &idx)
    }
}

/// Standard causal (strictly-lower-triangular visibility) additive mask for
/// a batch of `T×T` score matrices: position `i` may attend to `j <= i`.
pub fn causal_mask(batch: usize, t_len: usize) -> Vec<f32> {
    let mut m = vec![0.0f32; batch * t_len * t_len];
    for b in 0..batch {
        for i in 0..t_len {
            for j in (i + 1)..t_len {
                m[b * t_len * t_len + i * t_len + j] = -1e9;
            }
        }
    }
    m
}

/// Additive mask hiding padded key positions (`valid[b*T+j] == false`).
pub fn padding_mask(batch: usize, t_q: usize, t_k: usize, valid: &[bool]) -> Vec<f32> {
    assert_eq!(valid.len(), batch * t_k);
    let mut m = vec![0.0f32; batch * t_q * t_k];
    for b in 0..batch {
        for j in 0..t_k {
            if !valid[b * t_k + j] {
                for i in 0..t_q {
                    m[b * t_q * t_k + i * t_k + j] = -1e9;
                }
            }
        }
    }
    m
}

/// Pairwise |i−j| distances for monotonic attention over a `T_q×T_k` grid.
pub fn abs_distances(t_q: usize, t_k: usize) -> Vec<f32> {
    let mut d = vec![0.0f32; t_q * t_k];
    for i in 0..t_q {
        for j in 0..t_k {
            d[i * t_k + j] = (i as f32 - j as f32).abs();
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, SmallRng) {
        (ParamStore::new(), SmallRng::seed_from_u64(42))
    }

    #[test]
    fn linear_shapes_and_bias() {
        let (mut store, mut rng) = setup();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(vec![0.0; 6], Shape::matrix(2, 3));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.shape(y).0, vec![2, 2]);
        // zero input -> output equals bias (zeros at init)
        assert!(g.data(y).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lstm_state_advances_and_shapes_hold() {
        let (mut store, mut rng) = setup();
        let lstm = Lstm::new(&mut store, "lstm", 4, 6, 2, 0.0, &mut rng);
        let mut g = Graph::new();
        let (b, t) = (3, 5);
        let x = g.input(
            (0..b * t * 4).map(|i| (i % 7) as f32 / 7.0).collect(),
            Shape::matrix(b * t, 4),
        );
        let h = lstm.forward(&mut g, &store, x, b, t, false, false, &mut rng);
        assert_eq!(g.shape(h).0, vec![b * t, 6]);
        // states differ across time for a non-constant input
        let d = g.data(h);
        let row = |r: usize| &d[r * 6..(r + 1) * 6];
        assert_ne!(row(0), row(1));
    }

    #[test]
    fn lstm_reverse_flips_dependence_direction() {
        let (mut store, mut rng) = setup();
        let lstm = Lstm::new(&mut store, "lstm", 2, 3, 1, 0.0, &mut rng);
        let (b, t) = (1, 4);
        let base: Vec<f32> = (0..b * t * 2).map(|i| (i % 3) as f32 * 0.3).collect();
        let run = |x_data: &[f32], reverse: bool| -> Vec<f32> {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut g = Graph::new();
            let x = g.input(x_data.to_vec(), Shape::matrix(b * t, 2));
            let h = lstm.forward(&mut g, &store, x, b, t, reverse, false, &mut rng);
            g.data(h).to_vec()
        };
        let mut perturbed = base.clone();
        perturbed[3 * 2] += 1.0; // change input at t = 3
                                 // forward: h_0..h_2 unaffected by a change at t=3
        let (f0, f1) = (run(&base, false), run(&perturbed, false));
        for i in 0..3 * 3 {
            assert!((f0[i] - f1[i]).abs() < 1e-6, "forward leaked future at {i}");
        }
        // reverse: h_3 is the first consumed, h_0 must change
        let (r0, r1) = (run(&base, true), run(&perturbed, true));
        assert!(
            (0..3).any(|j| (r0[j] - r1[j]).abs() > 1e-6),
            "reverse ignored future"
        );
    }

    #[test]
    fn lstm_validity_gate_freezes_state() {
        let (mut store, mut rng) = setup();
        let lstm = Lstm::new(&mut store, "lstm", 2, 3, 1, 0.0, &mut rng);
        let (b, t) = (1, 4);
        let x_data: Vec<f32> = (0..b * t * 2).map(|i| i as f32 * 0.1).collect();
        let valid = vec![true, true, false, false];
        let mut g = Graph::new();
        let x = g.input(x_data, Shape::matrix(b * t, 2));
        let h = lstm.forward_masked(
            &mut g,
            &store,
            x,
            b,
            t,
            false,
            Some(&valid),
            false,
            &mut rng,
        );
        let d = g.data(h);
        // state frozen after the last valid step
        assert_eq!(&d[3..2 * 3], &d[2 * 3..3 * 3]);
        assert_eq!(&d[2 * 3..3 * 3], &d[3 * 3..4 * 3]);
    }

    #[test]
    fn attention_causal_mask_blocks_future() {
        let (mut store, mut rng) = setup();
        let mha = MultiHeadAttention::new(&mut store, "att", 8, 2, false, 0.0, &mut rng);
        let (b, t) = (1, 4);
        let x: Vec<f32> = (0..b * t * 8)
            .map(|i| ((i * 13) % 11) as f32 / 11.0 - 0.5)
            .collect();
        let mut g = Graph::new();
        let xt = g.input(x, Shape::matrix(b * t, 8));
        let bias = AttentionBias {
            mask: Some(causal_mask(b, t)),
            distances: None,
        };
        let out = mha.forward(&mut g, &store, xt, xt, xt, b, t, t, &bias, false, &mut rng);
        for w in &out.weights {
            let data = g.data(*w);
            for i in 0..t {
                for j in (i + 1)..t {
                    assert!(data[i * t + j] < 1e-7, "future attention at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn monotonic_decay_downweights_distant_keys() {
        let (mut store, mut rng) = setup();
        let mha = MultiHeadAttention::new(&mut store, "att", 8, 1, true, 0.0, &mut rng);
        // set a large positive θ so decay is strong
        let theta_id = store.id("att.theta").unwrap();
        store.data_mut(theta_id).iter_mut().for_each(|v| *v = 3.0);
        let (b, t) = (1, 6);
        // identical key content so only the distance term differentiates
        let x = vec![0.3f32; b * t * 8];
        let mut g = Graph::new();
        let xt = g.input(x, Shape::matrix(b * t, 8));
        let bias = AttentionBias {
            mask: None,
            distances: Some(abs_distances(t, t)),
        };
        let out = mha.forward(&mut g, &store, xt, xt, xt, b, t, t, &bias, false, &mut rng);
        let w = g.data(out.weights[0]);
        // for the last query, attention must decrease with distance
        let last = t - 1;
        for j in 1..t {
            assert!(
                w[last * t + j] >= w[last * t + j - 1],
                "monotonic decay violated at key {j}"
            );
        }
    }

    #[test]
    fn dropout_eval_is_identity_train_scales() {
        let mut g = Graph::new();
        let x = g.input(vec![1.0; 100], Shape::matrix(10, 10));
        let mut rng = SmallRng::seed_from_u64(5);
        let same = dropout(&mut g, x, 0.5, false, &mut rng);
        assert_eq!(same, x, "eval mode must be a no-op");
        let dropped = dropout(&mut g, x, 0.5, true, &mut rng);
        let d = g.data(dropped);
        let zeros = d.iter().filter(|&&v| v == 0.0).count();
        let scaled = d.iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + scaled, 100);
        assert!(
            zeros > 20 && zeros < 80,
            "p=0.5 should drop roughly half, got {zeros}"
        );
    }

    #[test]
    fn padding_mask_hides_invalid_keys() {
        let m = padding_mask(1, 2, 3, &[true, false, true]);
        assert_eq!(m.len(), 6);
        // key 1 masked for both queries
        assert_eq!(m[1], -1e9);
        assert_eq!(m[4], -1e9);
        assert_eq!(m[0], 0.0);
    }

    #[test]
    fn positional_embedding_repeats_per_sequence() {
        let (mut store, mut rng) = setup();
        let pe = PositionalEmbedding::new(&mut store, "pos", 10, 4, &mut rng);
        let mut g = Graph::new();
        let p = pe.forward(&mut g, &store, 2, 3);
        let d = g.data(p);
        // row (b=0, t) == row (b=1, t)
        for t in 0..3 {
            assert_eq!(&d[t * 4..(t + 1) * 4], &d[(3 + t) * 4..(3 + t + 1) * 4]);
        }
    }

    #[test]
    fn prediction_mlp_outputs_one_logit_per_row() {
        let (mut store, mut rng) = setup();
        let mlp = PredictionMlp::new(&mut store, "head", 6, 4, 0.0, &mut rng);
        let mut g = Graph::new();
        let x = g.input(vec![0.2; 5 * 6], Shape::matrix(5, 6));
        let z = mlp.forward(&mut g, &store, x, false, &mut rng);
        assert_eq!(g.shape(z).0, vec![5, 1]);
    }

    #[test]
    fn time_indices_are_b_major() {
        assert_eq!(time_indices(3, 4, 2), vec![2, 6, 10]);
    }

    #[test]
    fn abs_distances_symmetric_zero_diag() {
        let d = abs_distances(3, 3);
        for i in 0..3 {
            assert_eq!(d[i * 3 + i], 0.0);
            for j in 0..3 {
                assert_eq!(d[i * 3 + j], d[j * 3 + i]);
            }
        }
    }
}
