//! A std-only persistent thread pool with a determinism contract.
//!
//! The pool exists so the compute kernels ([`crate::kernels`]) and the
//! counterfactual fan-out in `rckt-core` can use every core **without
//! changing a single bit of any result**. The contract:
//!
//! * **Disjoint writes.** Every task writes to its own output region
//!   ([`parallel_chunks_mut`] hands out non-overlapping sub-slices;
//!   [`SharedMut`] extends the same rule to disjoint-but-interleaved index
//!   sets such as the column panels the SIMD matmul partitions over), so
//!   the value of each output element is computed by exactly one task with
//!   a fixed internal operation order — which thread runs the task is
//!   irrelevant.
//! * **Fixed-order reduction.** When results must be combined (gradient
//!   shards, influence aggregation), callers collect per-task results with
//!   [`parallel_map`] and reduce them on the calling thread in task-index
//!   order. Floating-point addition order therefore never depends on
//!   `RCKT_THREADS`.
//!
//! Together these make every computation bit-identical for any thread
//! count, which the test suite enforces (see
//! `crates/core/tests/parallel_determinism.rs`).
//!
//! ## Sizing
//!
//! The pool resolves its width once from, in order of precedence:
//! [`set_threads`] (the CLI `--threads` flag), the `RCKT_THREADS`
//! environment variable, and [`std::thread::available_parallelism`].
//! Workers are spawned lazily on first parallel call and persist for the
//! process lifetime; [`set_threads`] may grow (or logically shrink) the
//! active width at any time — surplus workers simply stop claiming work.
//!
//! ## Nesting
//!
//! A `parallel_for` issued while another is in flight (e.g. a matmul inside
//! an already-parallel counterfactual pass) runs inline on the calling
//! thread. That keeps exactly one level of parallelism active, avoids
//! oversubscription, and — by the contract above — cannot change results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool width; far above any sensible CPU count for this
/// workload and a guard against `RCKT_THREADS=100000`.
pub const MAX_THREADS: usize = 64;

/// 0 = not yet resolved.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Set the pool width programmatically (CLI `--threads`). Takes precedence
/// over `RCKT_THREADS`. Values are clamped to `1..=MAX_THREADS`.
pub fn set_threads(n: usize) {
    CONFIGURED.store(n.clamp(1, MAX_THREADS), Ordering::SeqCst);
}

/// The resolved pool width: [`set_threads`] > `RCKT_THREADS` > available
/// parallelism. Resolved once and cached (a later `set_threads` still
/// overrides).
pub fn threads() -> usize {
    let c = CONFIGURED.load(Ordering::Relaxed);
    if c != 0 {
        return c;
    }
    let resolved = std::env::var("RCKT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, MAX_THREADS);
    // A racing set_threads wins: only install if still unresolved.
    let _ = CONFIGURED.compare_exchange(0, resolved, Ordering::SeqCst, Ordering::SeqCst);
    CONFIGURED.load(Ordering::Relaxed)
}

/// One in-flight `parallel_for`. The raw task pointer is lifetime-erased;
/// soundness comes from the caller blocking until `pending` reaches zero
/// before returning, and from workers only dereferencing it for claimed
/// indices `< n_tasks`.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    n_tasks: usize,
    /// Tasks not yet completed; the caller waits for 0.
    pending: AtomicUsize,
    /// Worker participation slots (`threads - 1`); surplus workers that
    /// fail to claim a slot go back to sleep so a logically shrunk pool
    /// really uses fewer threads.
    budget: AtomicIsize,
    panicked: AtomicBool,
}

unsafe impl Send for Job {}
unsafe impl Sync for Job {}

#[derive(Default)]
struct PoolState {
    job: Option<Arc<Job>>,
    epoch: u64,
    spawned: usize,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(PoolState::default()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

fn queue_depth_gauge() -> &'static rckt_obs::Gauge {
    static GAUGE: OnceLock<rckt_obs::Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| rckt_obs::gauge("pool.queue_depth"))
}

/// Tally of parallel regions / tasks executed, for the `--profile` report.
fn record_dispatch(n_tasks: usize) {
    if !rckt_obs::profiling() {
        return;
    }
    static COUNTERS: OnceLock<(rckt_obs::Counter, rckt_obs::Counter)> = OnceLock::new();
    let (regions, tasks) = COUNTERS.get_or_init(|| {
        (
            rckt_obs::counter("pool.regions"),
            rckt_obs::counter("pool.tasks"),
        )
    });
    regions.incr();
    tasks.add(n_tasks as u64);
    queue_depth_gauge().set(n_tasks as f64);
}

/// Per-participant region bookkeeping: accumulate busy time into this
/// participant's gauge (single writer — a worker's `run_tasks` only runs
/// on its own thread, and the caller slot is unique while `ACTIVE`), and
/// emit one trace lane event per participant per region.
#[cold]
fn record_participation(worker: Option<usize>, start: std::time::Instant) {
    let secs = start.elapsed().as_secs_f64();
    if rckt_obs::profiling() {
        let name = match worker {
            Some(i) => format!("pool.worker{i}.busy_secs"),
            None => "pool.caller.busy_secs".to_string(),
        };
        let g = rckt_obs::gauge(&name);
        g.set(g.get() + secs);
    }
    if rckt_obs::trace_enabled() {
        rckt_obs::record_event("pool.run", "pool", start, secs);
    }
}

fn run_tasks(shared: &Shared, job: &Job, worker: Option<usize>) {
    let start = (rckt_obs::profiling() || rckt_obs::trace_enabled()).then(std::time::Instant::now);
    let mut claimed = false;
    loop {
        let i = job.next.fetch_add(1, Ordering::SeqCst);
        if i >= job.n_tasks {
            break;
        }
        claimed = true;
        let task = unsafe { &*job.task };
        if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
            job.panicked.store(true, Ordering::SeqCst);
        }
        if job.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last task: wake the caller. Taking the lock orders this
            // notify after the caller's wait registration.
            let _guard = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            shared.done_cv.notify_all();
        }
    }
    if let Some(start) = start {
        if claimed {
            record_participation(worker, start);
        }
    }
}

fn worker_loop(worker_ix: usize) {
    let shared = shared();
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            while state.epoch == seen_epoch {
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            seen_epoch = state.epoch;
            state.job.clone()
        };
        if let Some(job) = job {
            if job.budget.fetch_sub(1, Ordering::SeqCst) > 0 {
                run_tasks(shared, &job, Some(worker_ix));
            }
        }
    }
}

fn ensure_workers(state: &mut PoolState, wanted: usize) {
    while state.spawned < wanted {
        let worker_ix = state.spawned;
        std::thread::Builder::new()
            .name(format!("rckt-pool-{worker_ix}"))
            .spawn(move || worker_loop(worker_ix))
            .expect("spawning pool worker");
        state.spawned += 1;
    }
}

/// True while a parallel region is running anywhere in the process; used to
/// run nested/concurrent regions inline.
static ACTIVE: AtomicBool = AtomicBool::new(false);

struct ActiveGuard;
impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
    }
}

/// Run `task(0), task(1), …, task(n_tasks - 1)`, potentially on multiple
/// threads, returning when all have finished. Tasks must confine their
/// writes to disjoint data (see the module docs). Panics in any task are
/// re-raised on the caller after the region completes.
pub fn parallel_for(n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
    if n_tasks == 0 {
        return;
    }
    let width = threads();
    if width <= 1 || n_tasks == 1 {
        for i in 0..n_tasks {
            task(i);
        }
        return;
    }
    if ACTIVE.swap(true, Ordering::SeqCst) {
        // Nested or concurrent region: run inline. Results are identical
        // by the determinism contract.
        for i in 0..n_tasks {
            task(i);
        }
        return;
    }
    let _active = ActiveGuard;
    record_dispatch(n_tasks);

    let shared = shared();
    // Erase the borrow lifetime; sound because this function blocks until
    // `pending == 0` (below) before the borrow expires.
    let erased: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
    let job = Arc::new(Job {
        task: erased,
        next: AtomicUsize::new(0),
        n_tasks,
        pending: AtomicUsize::new(n_tasks),
        budget: AtomicIsize::new((width - 1) as isize),
        panicked: AtomicBool::new(false),
    });
    {
        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        ensure_workers(&mut state, width - 1);
        state.job = Some(job.clone());
        state.epoch += 1;
    }
    shared.work_cv.notify_all();

    // The caller is a full participant.
    run_tasks(shared, &job, None);

    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    while job.pending.load(Ordering::SeqCst) > 0 {
        state = shared
            .done_cv
            .wait(state)
            .unwrap_or_else(|e| e.into_inner());
    }
    state.job = None;
    drop(state);

    if rckt_obs::profiling() {
        queue_depth_gauge().set(0.0);
    }
    if job.panicked.load(Ordering::SeqCst) {
        panic!("a task panicked inside the rckt thread pool");
    }
}

/// [`parallel_for`] collecting each task's return value into a `Vec` in
/// task-index order — the fixed-order-reduction primitive.
pub fn parallel_map<T, F>(n_tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(n_tasks);
    out.resize_with(n_tasks, || None);
    parallel_chunks_mut(&mut out, 1, &|i, slot| {
        slot[0] = Some(f(i));
    });
    out.into_iter()
        .map(|o| o.expect("every task produces a value"))
        .collect()
}

/// Split `data` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter) and run `f(chunk_index, chunk)` over them in parallel.
/// Chunks are disjoint, so this is safe for any `T: Send`.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: &(dyn Fn(usize, &mut [T]) + Sync),
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = data.len();
    if len == 0 {
        return;
    }
    let n_chunks = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(n_chunks, &|ci| {
        let lo = ci * chunk_len;
        let hi = (lo + chunk_len).min(len);
        // Disjoint by construction: chunk `ci` covers exactly [lo, hi).
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
        f(ci, chunk);
    });
}

/// Chunk length that yields roughly `per_thread` chunks per active thread
/// but never slices finer than `min_len` elements. Used by kernels to size
/// disjoint-write work items; per the module contract, the boundary choice
/// cannot affect results.
pub fn chunk_len_for(total: usize, min_len: usize) -> usize {
    let width = threads();
    let target_chunks = (width * 4).max(1);
    (total.div_ceil(target_chunks)).max(min_len).max(1)
}

/// A mutable slice shared across a parallel region whose tasks write
/// **disjoint but non-contiguous** index sets — the case
/// [`parallel_chunks_mut`] cannot express. The matmul kernels use this to
/// partition output by column panel: each task owns a band of columns,
/// which in a row-major matrix is a strided, interleaved set of elements.
///
/// Safety contract (the same disjoint-write rule as the module docs, but
/// enforced by the caller instead of by construction): every element must
/// be written by at most one task for the lifetime of the region. The
/// caller keeps the unique borrow alive for `'a`, so no other access can
/// exist outside the region.
pub struct SharedMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SharedMut<'_, T> {}
unsafe impl<T: Send> Sync for SharedMut<'_, T> {}

impl<'a, T> SharedMut<'a, T> {
    /// Wrap a uniquely borrowed slice for disjoint-write sharing.
    pub fn new(data: &'a mut [T]) -> Self {
        Self {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Reconstruct the full slice inside a task.
    ///
    /// # Safety
    /// Tasks holding overlapping views must write disjoint element sets;
    /// no element may be read by one task while another writes it.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut_slice(&self) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.ptr, self.len)
    }

    /// Length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Serializes tests (across this crate's test modules) that mutate the
/// global pool width, so width-sensitive assertions don't race.
#[cfg(test)]
pub(crate) static TEST_WIDTH_LOCK: Mutex<()> = Mutex::new(());

/// A raw pointer that may cross thread boundaries. Safe only because every
/// user derives disjoint ranges from it.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper, not the raw pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_threads(n: usize, f: impl FnOnce()) {
        let _g = TEST_WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = threads();
        set_threads(n);
        f();
        set_threads(before);
    }

    #[test]
    fn parallel_map_preserves_order() {
        with_threads(4, || {
            let out = parallel_map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        });
    }

    #[test]
    fn chunks_cover_everything_once() {
        with_threads(4, || {
            let mut data = vec![0u32; 1000];
            parallel_chunks_mut(&mut data, 64, &|_ci, chunk| {
                for x in chunk {
                    *x += 1;
                }
            });
            assert!(data.iter().all(|&x| x == 1));
        });
    }

    #[test]
    fn chunk_index_matches_offsets() {
        with_threads(3, || {
            let mut data: Vec<usize> = vec![0; 257];
            parallel_chunks_mut(&mut data, 10, &|ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = ci * 10 + j;
                }
            });
            let expect: Vec<usize> = (0..257).collect();
            assert_eq!(data, expect);
        });
    }

    #[test]
    fn nested_regions_run_inline() {
        with_threads(4, || {
            let mut outer = vec![0u64; 8];
            parallel_chunks_mut(&mut outer, 1, &|i, slot| {
                // Inner region while the outer is active: must not deadlock.
                let inner = parallel_map(5, |j| (i * 10 + j) as u64);
                slot[0] = inner.iter().sum();
            });
            for (i, &v) in outer.iter().enumerate() {
                let expect: u64 = (0..5).map(|j| (i * 10 + j) as u64).sum();
                assert_eq!(v, expect);
            }
        });
    }

    #[test]
    fn identical_results_across_widths() {
        let reduce = || -> f32 {
            // Fixed chunking (independent of width) + index-order reduction.
            let partials = parallel_map(16, |c| {
                let mut s = 0.0f32;
                for i in (c * 1000)..((c + 1) * 1000) {
                    s += (i as f32).sqrt() * 1e-3;
                }
                s
            });
            partials.iter().sum()
        };
        let mut bits = Vec::new();
        for w in [1, 2, 4] {
            with_threads(w, || bits.push(reduce().to_bits()));
        }
        assert_eq!(bits[0], bits[1]);
        assert_eq!(bits[1], bits[2]);
    }

    #[test]
    fn panics_propagate_without_deadlock() {
        with_threads(2, || {
            let r = std::panic::catch_unwind(|| {
                parallel_for(8, &|i| {
                    if i == 3 {
                        panic!("boom");
                    }
                });
            });
            assert!(r.is_err());
            // Pool must still be usable afterwards.
            let out = parallel_map(4, |i| i + 1);
            assert_eq!(out, vec![1, 2, 3, 4]);
        });
    }

    #[test]
    fn width_one_runs_serial() {
        with_threads(1, || {
            let main_id = std::thread::current().id();
            let ids = parallel_map(6, |_| std::thread::current().id());
            assert!(ids.iter().all(|&id| id == main_id));
        });
    }

    #[test]
    fn profiling_records_pool_gauges_and_busy_time() {
        // Width lock is taken first (via with_threads) and the profiling
        // lock second; no other test takes them in the opposite order.
        with_threads(2, || {
            let _p = crate::profiler::TEST_PROFILING_LOCK
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            rckt_obs::set_profiling(true);
            parallel_for(64, &|i| {
                std::hint::black_box((0..500 + i).sum::<usize>());
            });
            rckt_obs::set_profiling(false);
            assert!(rckt_obs::counter("pool.regions").get() >= 1);
            assert!(rckt_obs::counter("pool.tasks").get() >= 64);
            assert_eq!(
                rckt_obs::gauge("pool.queue_depth").get(),
                0.0,
                "queue depth returns to 0 after the region"
            );
            // At least one participant (caller or worker) accumulated busy
            // time; which ones claim tasks is a scheduling race.
            let snap = rckt_obs::metrics_snapshot();
            let busy: f64 = snap
                .gauges
                .iter()
                .filter(|(n, _)| n.starts_with("pool.") && n.ends_with(".busy_secs"))
                .map(|&(_, v)| v)
                .sum();
            assert!(busy > 0.0, "some participant recorded busy time");
        });
    }

    #[test]
    fn matmul_sized_tasks_reach_distinct_threads() {
        // Regression test for the flat 1/2/4-thread kernel_scaling curve:
        // with enough tasks of non-trivial duration, workers (not just the
        // caller) must actually claim work. Tasks sleep rather than spin so
        // the assertion holds even on a single-core host, where spinning
        // tasks could all drain on the caller before a worker wakes.
        use std::collections::HashSet;
        use std::thread::ThreadId;
        with_threads(4, || {
            let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
            parallel_for(32, &|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                seen.lock().unwrap().insert(std::thread::current().id());
            });
            let n = seen.lock().unwrap().len();
            assert!(n >= 2, "expected ≥2 distinct threads, saw {n}");
        });
    }

    #[test]
    fn shared_mut_disjoint_column_bands() {
        // Each task owns a band of columns of a row-major 16×24 matrix —
        // disjoint but interleaved writes that parallel_chunks_mut cannot
        // express. Every element must be written exactly once.
        with_threads(4, || {
            let (m, n, band) = (16usize, 24usize, 5usize);
            let mut c = vec![0u32; m * n];
            let out = SharedMut::new(&mut c);
            assert_eq!(out.len(), m * n);
            assert!(!out.is_empty());
            let n_bands = n.div_ceil(band);
            parallel_for(n_bands, &|t| {
                let c = unsafe { out.as_mut_slice() };
                let j0 = t * band;
                let jw = band.min(n - j0);
                for i in 0..m {
                    for j in j0..j0 + jw {
                        c[i * n + j] += (i * n + j) as u32 + 1;
                    }
                }
            });
            for (ix, &v) in c.iter().enumerate() {
                assert_eq!(v, ix as u32 + 1, "element {ix} written exactly once");
            }
        });
    }

    #[test]
    fn set_threads_clamps() {
        let _g = TEST_WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = threads();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(1_000_000);
        assert_eq!(threads(), MAX_THREADS);
        set_threads(before);
    }
}
