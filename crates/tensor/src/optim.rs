//! First-order optimizers operating on a [`ParamStore`].

use crate::param::ParamStore;

/// Adam with decoupled behaviour matching the paper's training setup
/// (Kingma & Ba 2014; L2 regularization added to the gradient, as in the
/// classic formulation the RCKT authors use for their `l2` hyper-parameter).
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Classic L2 penalty coefficient (adds `l2 * w` to the gradient).
    pub l2: f32,
    t: u64,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            l2: 0.0,
            t: 0,
        }
    }

    pub fn with_l2(mut self, l2: f32) -> Self {
        self.l2 = l2;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Adjust the learning rate (for warmup/decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update using the gradients currently stored in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &mut store.params {
            for i in 0..p.data.len() {
                let mut g = p.grad[i];
                if self.l2 != 0.0 {
                    g += self.l2 * p.data[i];
                }
                p.m[i] = self.beta1 * p.m[i] + (1.0 - self.beta1) * g;
                p.v[i] = self.beta2 * p.v[i] + (1.0 - self.beta2) * g * g;
                let mhat = p.m[i] / bc1;
                let vhat = p.v[i] / bc2;
                p.data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain SGD, mostly useful for tests and sanity baselines.
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    pub fn step(&mut self, store: &mut ParamStore) {
        for p in &mut store.params {
            for i in 0..p.data.len() {
                p.data[i] -= self.lr * p.grad[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::param::Init;
    use crate::shape::Shape;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Minimize (w - 3)^2 with each optimizer; both must approach 3.
    fn quadratic_descent(use_adam: bool) -> f32 {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w = store.register("w", Shape::scalar(), Init::Zeros, &mut rng);
        let mut adam = Adam::new(0.1);
        let mut sgd = Sgd::new(0.1);
        for _ in 0..200 {
            store.zero_grads();
            let mut g = Graph::new();
            let wt = store.leaf(&mut g, w);
            let shifted = g.add_scalar(wt, -3.0);
            let sq = g.mul(shifted, shifted);
            let loss = g.sum_all(sq);
            g.backward(loss);
            store.accumulate_grads(&g);
            if use_adam {
                adam.step(&mut store);
            } else {
                sgd.step(&mut store);
            }
        }
        store.data(w)[0]
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!((quadratic_descent(true) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!((quadratic_descent(false) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w = store.register("w", Shape::scalar(), Init::Zeros, &mut rng);
        let mut adam = Adam::new(0.1);
        adam.set_lr(0.0); // frozen
        store.zero_grads();
        let mut g = Graph::new();
        let wt = store.leaf(&mut g, w);
        let loss = g.sum_all(wt);
        g.backward(loss);
        store.accumulate_grads(&g);
        adam.step(&mut store);
        assert_eq!(store.data(w)[0], 0.0, "lr = 0 must freeze weights");
    }

    #[test]
    fn graph_reset_reuses_arena() {
        let mut g = Graph::new();
        let a = g.leaf_grad(vec![1.0, 2.0], Shape::vector(2));
        let loss = g.sum_all(a);
        g.backward(loss);
        assert_eq!(g.len(), 2);
        g.reset();
        assert!(g.is_empty());
        // arena usable again
        let b = g.leaf_grad(vec![3.0], Shape::scalar());
        let l2 = g.sum_all(b);
        g.backward(l2);
        assert_eq!(g.grad(b), &[1.0]);
    }

    #[test]
    fn l2_shrinks_solution_toward_zero() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w = store.register("w", Shape::scalar(), Init::Zeros, &mut rng);
        let mut adam = Adam::new(0.1).with_l2(1.0);
        for _ in 0..300 {
            store.zero_grads();
            let mut g = Graph::new();
            let wt = store.leaf(&mut g, w);
            let shifted = g.add_scalar(wt, -3.0);
            let sq = g.mul(shifted, shifted);
            let loss = g.sum_all(sq);
            g.backward(loss);
            store.accumulate_grads(&g);
            adam.step(&mut store);
        }
        let val = store.data(w)[0];
        assert!(val < 2.9 && val > 1.0, "L2 should pull below 3, got {val}");
    }
}
