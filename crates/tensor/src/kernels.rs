//! Dense f32 compute kernels shared by forward and backward passes.
//!
//! All kernels operate on row-major slices. They are deliberately simple
//! loops: at the dimensions used by knowledge-tracing models (d ≤ 256,
//! T ≤ 200) the compiler's autovectorization is within a small factor of
//! hand-tuned BLAS, and the code stays auditable.

use std::sync::OnceLock;

/// Tally one matmul of shape `(m×k)·(k×n)` into the profiling counters
/// (`kernel.matmul.calls` / `kernel.matmul.flops`, FLOPs as the usual
/// 2·m·k·n). Guarded by [`rckt_obs::profiling`], so the disabled cost is
/// one relaxed atomic load per kernel call; the counter handles are cached
/// in a `OnceLock` to keep the registry out of the hot path entirely.
#[inline]
fn record_matmul(m: usize, k: usize, n: usize) {
    if !rckt_obs::profiling() {
        return;
    }
    static COUNTERS: OnceLock<(rckt_obs::Counter, rckt_obs::Counter)> = OnceLock::new();
    let (calls, flops) = COUNTERS.get_or_init(|| {
        (
            rckt_obs::counter("kernel.matmul.calls"),
            rckt_obs::counter("kernel.matmul.flops"),
        )
    });
    calls.incr();
    flops.add(2 * (m as u64) * (k as u64) * (n as u64));
}

/// `c += a (m×k) · b (k×n)`, accumulating into `c (m×n)`.
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    record_matmul(m, k, n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// `c += a (m×k) · bᵀ where b is (n×k)`, accumulating into `c (m×n)`.
pub fn matmul_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    record_matmul(m, k, n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

/// `c += aᵀ (k×m viewed from a m×k) · b (m×n)`, accumulating into `c (k×n)`.
pub fn matmul_at_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    record_matmul(m, k, n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Transpose `src (m×n)` into `dst (n×m)`.
pub fn transpose(src: &[f32], dst: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(src.len(), m * n);
    debug_assert_eq!(dst.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            dst[j * m + i] = src[i * n + j];
        }
    }
}

/// Numerically stable softmax over each contiguous row of length `n`.
pub fn softmax_rows(src: &[f32], dst: &mut [f32], n: usize) {
    debug_assert_eq!(src.len() % n, 0);
    for (s_row, d_row) in src.chunks_exact(n).zip(dst.chunks_exact_mut(n)) {
        let max = s_row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (d, &s) in d_row.iter_mut().zip(s_row) {
            let e = (s - max).exp();
            *d = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for d in d_row.iter_mut() {
            *d *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 2x3, used as b^T: 3x2
        let mut c1 = [0.0; 4];
        matmul_bt_acc(&a, &b, &mut c1, 2, 3, 2);
        let mut bt = [0.0; 6];
        transpose(&b, &mut bt, 2, 3);
        let mut c2 = [0.0; 4];
        matmul_acc(&a, &bt, &mut c2, 2, 3, 2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3 -> a^T 3x2
        let b = [1.0, -1.0, 0.5, 2.0]; // 2x2
        let mut c1 = vec![0.0; 6];
        matmul_at_acc(&a, &b, &mut c1, 2, 3, 2);
        let mut at = [0.0; 6];
        transpose(&a, &mut at, 2, 3);
        let mut c2 = vec![0.0; 6];
        matmul_acc(&at, &b, &mut c2, 3, 2, 2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let src = [1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        let mut dst = [0.0; 6];
        softmax_rows(&src, &mut dst, 3);
        for row in dst.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // monotone in logits
        assert!(dst[0] < dst[1] && dst[1] < dst[2]);
    }

    #[test]
    fn profiling_counts_matmul_flops() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        rckt_obs::set_profiling(true);
        let calls0 = rckt_obs::counter("kernel.matmul.calls").get();
        let flops0 = rckt_obs::counter("kernel.matmul.flops").get();
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        rckt_obs::set_profiling(false);
        // `>=`: other tests may run matmuls concurrently while profiling
        // is enabled here; this one contributes 1 call and 2·2·2·2 FLOPs.
        assert!(rckt_obs::counter("kernel.matmul.calls").get() - calls0 >= 1);
        assert!(rckt_obs::counter("kernel.matmul.flops").get() - flops0 >= 16);
    }

    #[test]
    fn softmax_handles_large_negatives() {
        let src = [0.0, -1e9, -1e9];
        let mut dst = [0.0; 3];
        softmax_rows(&src, &mut dst, 3);
        assert!((dst[0] - 1.0).abs() < 1e-6);
        assert!(dst[1] < 1e-9);
    }
}
