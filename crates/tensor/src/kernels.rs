//! Dense f32 compute kernels shared by forward and backward passes.
//!
//! All kernels operate on row-major slices. Three matmul implementations
//! are provided, selectable at runtime (`RCKT_KERNEL=auto|naive|blocked|
//! simd` or [`set_kernel_variant`]):
//!
//! * **naive** — the original triple loops, kept as an always-correct,
//!   always-serial reference path (`naive_matmul_acc` and friends);
//! * **blocked** — a cache-blocked, register-tiled kernel: `B` is packed
//!   into contiguous `NR`-wide column panels ([`pack`]), `A` into `MR`-row
//!   interleaved blocks of `KC` columns, and an `MR`×`NR` register
//!   accumulator is driven by an unrolled inner loop the autovectorizer
//!   turns into SIMD FMAs. Row panels of the output are split across the
//!   [`crate::pool`] thread pool;
//! * **simd** (default via `auto`) — explicit `std::arch` microkernels
//!   ([`simd`]): AVX2+FMA 6×16 on x86-64, NEON 8×8 on aarch64, a portable
//!   4×16 scalar tile elsewhere, chosen by one-time runtime feature
//!   detection. Work is split over *column panels* with the packed `A`
//!   shared read-only across tasks.
//!
//! The dispatch ladder for `auto` (the default when `RCKT_KERNEL` is unset)
//! resolves to `simd`, whose backend is the best the CPU supports; the
//! decision is logged once as a `kernel.dispatch` event. Tiny products
//! always take the naive loops — packing overhead dominates below
//! [`TILED_MIN_WORK`].
//!
//! Determinism: for a fixed kernel variant every output element is computed
//! by exactly one task with a fixed reduction order over `k` (blocked: `KC`
//! blocks in order, sequential accumulation within a block; simd: a single
//! full-depth pass in `p`-ascending order), so results are bit-identical
//! for any `RCKT_THREADS`. Different variants reduce in different orders —
//! and the SIMD backends contract multiplies and adds into FMAs — so
//! variants agree with each other only up to float rounding (~1e-6
//! relative; tests enforce 1e-5 for blocked≡naive and 1e-4 for
//! simd≡naive).

pub mod pack;
mod simd;

pub use simd::{
    cpu_features, simd_backend, simd_matmul_acc, simd_matmul_at_acc, simd_matmul_bt_acc,
    SimdBackend,
};

use crate::pool;
use pack::BSource;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

// ------------------------------------------------------------- selection

/// Which matmul implementation [`matmul_acc`] and friends dispatch to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelVariant {
    /// Original reference loops, always serial.
    Naive,
    /// Packed, register-tiled, autovectorized, pool-parallel kernel.
    Blocked,
    /// Explicit-SIMD microkernels with runtime feature detection
    /// (default; see [`simd_backend`] for what this machine resolved to).
    Simd,
}

/// 0 = unresolved, 1 = naive, 2 = blocked, 3 = simd.
static VARIANT: AtomicU8 = AtomicU8::new(0);

/// Select the matmul implementation programmatically; overrides the
/// `RCKT_KERNEL` environment variable.
pub fn set_kernel_variant(v: KernelVariant) {
    let code = match v {
        KernelVariant::Naive => 1,
        KernelVariant::Blocked => 2,
        KernelVariant::Simd => 3,
    };
    VARIANT.store(code, Ordering::SeqCst);
}

/// The active variant, resolved in priority order: [`set_kernel_variant`],
/// then the `RCKT_KERNEL` env var (`naive`/`blocked`/`simd`), then `auto`
/// (also what `RCKT_KERNEL=auto` or an unrecognized value means). `auto`
/// picks [`KernelVariant::Simd`] — its microkernel is feature-detected per
/// machine and falls back to a portable tile when neither AVX2+FMA nor
/// NEON is available.
///
/// The first resolution (and only the first — later [`set_kernel_variant`]
/// calls are silent, they're test plumbing) emits a `kernel.dispatch`
/// event recording what was requested, what ran, and the detected CPU
/// features, so logs always pin down which kernel produced a run.
pub fn kernel_variant() -> KernelVariant {
    let code = VARIANT.load(Ordering::Relaxed);
    if code == 0 {
        let (resolved, requested) = match std::env::var("RCKT_KERNEL").as_deref() {
            Ok("naive") => (1, "naive"),
            Ok("blocked") => (2, "blocked"),
            Ok("simd") => (3, "simd"),
            _ => (3, "auto"),
        };
        if VARIANT
            .compare_exchange(0, resolved, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            rckt_obs::event(
                rckt_obs::Level::Info,
                "kernel.dispatch",
                &[
                    ("requested", requested.into()),
                    ("variant", variant_code_name(resolved).into()),
                    ("cpu", simd::cpu_features().into()),
                ],
            );
        }
    }
    match VARIANT.load(Ordering::Relaxed) {
        1 => KernelVariant::Naive,
        2 => KernelVariant::Blocked,
        _ => KernelVariant::Simd,
    }
}

fn variant_code_name(code: u8) -> &'static str {
    match code {
        1 => "naive",
        2 => "blocked",
        _ => "simd",
    }
}

/// `"naive"`, `"blocked"`, or `"simd"`, for run manifests and logs. Pair
/// with [`cpu_features`] to pin down which microkernel `"simd"` means on a
/// given machine.
pub fn kernel_variant_name() -> &'static str {
    match kernel_variant() {
        KernelVariant::Naive => "naive",
        KernelVariant::Blocked => "blocked",
        KernelVariant::Simd => "simd",
    }
}

// ------------------------------------------------------------- profiling

/// Tally one matmul of shape `(m×k)·(k×n)` into the profiling counters
/// (`kernel.matmul.calls` / `kernel.matmul.flops`, FLOPs as the usual
/// 2·m·k·n). Guarded by [`rckt_obs::profiling`], so the disabled cost is
/// one relaxed atomic load per kernel call; the counter handles are cached
/// in a `OnceLock` to keep the registry out of the hot path entirely.
#[inline]
fn record_matmul(m: usize, k: usize, n: usize) {
    if !rckt_obs::profiling() {
        return;
    }
    static COUNTERS: OnceLock<(rckt_obs::Counter, rckt_obs::Counter)> = OnceLock::new();
    let (calls, flops) = COUNTERS.get_or_init(|| {
        (
            rckt_obs::counter("kernel.matmul.calls"),
            rckt_obs::counter("kernel.matmul.flops"),
        )
    });
    calls.incr();
    flops.add(2 * (m as u64) * (k as u64) * (n as u64));
}

// ------------------------------------------------------------ dispatchers

/// Below this many `m·k·n` products the packing overhead of the tiled
/// kernels (blocked and simd) outweighs their throughput and the naive
/// loops win.
pub const TILED_MIN_WORK: usize = 16 * 1024;

/// The variant a product of this shape actually runs: tiny or skinny
/// outputs always take the naive loops regardless of the selected variant.
#[inline]
fn tiled_variant(m: usize, k: usize, n: usize) -> KernelVariant {
    if m < 8 || n < 8 || m * k * n < TILED_MIN_WORK {
        return KernelVariant::Naive;
    }
    kernel_variant()
}

/// `c += a (m×k) · b (k×n)`, accumulating into `c (m×n)`.
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    record_matmul(m, k, n);
    match tiled_variant(m, k, n) {
        KernelVariant::Naive => naive_matmul_acc(a, b, c, m, k, n),
        KernelVariant::Blocked => blocked_matmul_acc(a, b, c, m, k, n),
        KernelVariant::Simd => simd_matmul_acc(a, b, c, m, k, n),
    }
}

/// `c += a (m×k) · bᵀ where b is (n×k)`, accumulating into `c (m×n)`.
pub fn matmul_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    record_matmul(m, k, n);
    match tiled_variant(m, k, n) {
        KernelVariant::Naive => naive_matmul_bt_acc(a, b, c, m, k, n),
        KernelVariant::Blocked => blocked_matmul_bt_acc(a, b, c, m, k, n),
        KernelVariant::Simd => simd_matmul_bt_acc(a, b, c, m, k, n),
    }
}

/// `c += aᵀ (k×m viewed from a m×k) · b (m×n)`, accumulating into `c (k×n)`.
pub fn matmul_at_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    record_matmul(m, k, n);
    match tiled_variant(k, m, n) {
        KernelVariant::Naive => naive_matmul_at_acc(a, b, c, m, k, n),
        KernelVariant::Blocked => blocked_matmul_at_acc(a, b, c, m, k, n),
        KernelVariant::Simd => simd_matmul_at_acc(a, b, c, m, k, n),
    }
}

// --------------------------------------------------------- naive kernels

/// Reference implementation of [`matmul_acc`]: serial triple loop with a
/// zero-skip on `a` (embedding rows are often sparse).
pub fn naive_matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Reference implementation of [`matmul_bt_acc`].
pub fn naive_matmul_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

/// Reference implementation of [`matmul_at_acc`].
pub fn naive_matmul_at_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut c[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

// -------------------------------------------------------- blocked kernels

/// Register tile height: rows of `C` per microkernel invocation.
pub const MR: usize = 4;
/// Register tile width: one 64-byte line of `C` columns per row.
pub const NR: usize = 16;
/// `k`-block depth: `A` blocks of `MR`·`KC` floats stay resident in L1.
pub const KC: usize = 128;

/// Matmuls below this many FLOPs run the blocked loops on the calling
/// thread; above it, output row panels are split across the pool.
const PAR_MIN_FLOPS: u64 = 1 << 20;

/// Blocked variant of [`matmul_acc`]; callable directly (bypassing size
/// dispatch) by tests and benches.
pub fn blocked_matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let packed = pack::pack_b(&BSource::Rows(b), k, n, NR);
    gemm_blocked(&|i, p| a[i * k + p], &packed, c, m, k, n);
}

/// Blocked variant of [`matmul_bt_acc`] (`b` is `n×k`); the transposed `B`
/// is absorbed into panel packing rather than materialized.
pub fn blocked_matmul_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let packed = pack::pack_b(&BSource::Cols(b), k, n, NR);
    gemm_blocked(&|i, p| a[i * k + p], &packed, c, m, k, n);
}

/// Blocked variant of [`matmul_at_acc`] (`a` is `m×k`, output `k×n`): a
/// GEMM with `M = k`, reduction depth `m`, reading `a` column-wise during
/// `A`-block packing.
pub fn blocked_matmul_at_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let packed = pack::pack_b(&BSource::Rows(b), m, n, NR);
    gemm_blocked(&|i, p| a[p * k + i], &packed, c, k, m, n);
}

/// The register-tiled inner loop: `acc[r][jj] += apack[p][r] · bpanel[p][jj]`
/// over all packed `p`. `apack` is `MR`-interleaved, `bpanel` `NR`-wide; both
/// zero-padded, so the loops are branch-free and fully unrollable.
///
/// `inline(never)` is load-bearing: compiled standalone, LLVM keeps the
/// `MR`×`NR` accumulator in SIMD registers and emits packed FMAs; inlined
/// into the blocked driver it spills the tile and runs ~8× slower. The call
/// is amortized over up to `KC`·`MR`·`NR` FLOPs.
#[inline(never)]
fn microkernel(apack: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (a_col, b_row) in apack.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for r in 0..MR {
            let av = a_col[r];
            let acc_r = &mut acc[r];
            for (x, &bv) in acc_r.iter_mut().zip(b_row) {
                *x += av * bv;
            }
        }
    }
}

/// Shared blocked-GEMM driver: `c (m×n) += A (m×kk) · packed_b`, with `A`
/// elements supplied by `af(i, p)` (monomorphized per caller, so packing
/// reads inline). Row panels are distributed over the pool when the work
/// justifies it; per-element accumulation order is independent of the split
/// (see module docs), so results are bit-identical for any thread count.
fn gemm_blocked(
    af: &(dyn Fn(usize, usize) -> f32 + Sync),
    packed_b: &[f32],
    c: &mut [f32],
    m: usize,
    kk: usize,
    n: usize,
) {
    if m == 0 || n == 0 || kk == 0 {
        return;
    }
    let n_panels = n.div_ceil(NR);
    let compute_rows = |i0: usize, c_chunk: &mut [f32]| {
        let rows = c_chunk.len() / n;
        let mut apack = [0.0f32; KC * MR];
        let mut ip = 0;
        while ip < rows {
            let ih = MR.min(rows - ip);
            let mut p0 = 0;
            while p0 < kk {
                let pw = KC.min(kk - p0);
                for dp in 0..pw {
                    let col = &mut apack[dp * MR..dp * MR + MR];
                    for (r, slot) in col.iter_mut().enumerate() {
                        *slot = if r < ih {
                            af(i0 + ip + r, p0 + dp)
                        } else {
                            0.0
                        };
                    }
                }
                for jp in 0..n_panels {
                    let j0 = jp * NR;
                    let jw = NR.min(n - j0);
                    let bpanel = &packed_b[(jp * kk + p0) * NR..(jp * kk + p0 + pw) * NR];
                    let mut acc = [[0.0f32; NR]; MR];
                    microkernel(&apack[..pw * MR], bpanel, &mut acc);
                    for (r, acc_row) in acc.iter().enumerate().take(ih) {
                        let base = (ip + r) * n + j0;
                        for (cv, &av) in c_chunk[base..base + jw].iter_mut().zip(&acc_row[..jw]) {
                            *cv += av;
                        }
                    }
                }
                p0 += pw;
            }
            ip += MR;
        }
    };
    let flops = 2 * (m as u64) * (kk as u64) * (n as u64);
    if flops < PAR_MIN_FLOPS || pool::threads() == 1 {
        compute_rows(0, c);
        return;
    }
    let row_panels = m.div_ceil(MR);
    // Tasks own whole MR-row panels, so panel boundaries (and therefore
    // accumulation order) never depend on the split.
    let rows_per_task = pool::chunk_len_for(row_panels, 1) * MR;
    pool::parallel_chunks_mut(c, rows_per_task * n, &|t, chunk| {
        compute_rows(t * rows_per_task, chunk);
    });
}

// ----------------------------------------------------- elementwise & rows

/// Below this many elements, fork/join overhead beats the memory-bound win
/// and elementwise kernels stay on the calling thread.
const PAR_MIN_ELEMS: usize = 32 * 1024;

/// `dst[i] = f(src[i])`, split across the pool for large tensors.
pub fn map_unary(src: &[f32], dst: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    debug_assert_eq!(src.len(), dst.len());
    if dst.len() < PAR_MIN_ELEMS || pool::threads() == 1 {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = f(s);
        }
        return;
    }
    let chunk = pool::chunk_len_for(dst.len(), 4096);
    pool::parallel_chunks_mut(dst, chunk, &|ci, dchunk| {
        let off = ci * chunk;
        let len = dchunk.len();
        for (d, &s) in dchunk.iter_mut().zip(&src[off..off + len]) {
            *d = f(s);
        }
    });
}

/// `dst[i] = f(a[i], b[i])`, split across the pool for large tensors.
pub fn map_binary(a: &[f32], b: &[f32], dst: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    debug_assert_eq!(a.len(), dst.len());
    debug_assert_eq!(b.len(), dst.len());
    if dst.len() < PAR_MIN_ELEMS || pool::threads() == 1 {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = f(x, y);
        }
        return;
    }
    let chunk = pool::chunk_len_for(dst.len(), 4096);
    pool::parallel_chunks_mut(dst, chunk, &|ci, dchunk| {
        let off = ci * chunk;
        let len = dchunk.len();
        for ((d, &x), &y) in dchunk
            .iter_mut()
            .zip(&a[off..off + len])
            .zip(&b[off..off + len])
        {
            *d = f(x, y);
        }
    });
}

/// Numerically stable softmax over each contiguous row of length `n`; rows
/// are independent, so large inputs are row-sharded across the pool.
pub fn softmax_rows(src: &[f32], dst: &mut [f32], n: usize) {
    debug_assert_eq!(src.len() % n, 0);
    debug_assert_eq!(src.len(), dst.len());
    if src.len() < PAR_MIN_ELEMS || pool::threads() == 1 {
        softmax_rows_serial(src, dst, n);
        return;
    }
    let rows = src.len() / n;
    let rows_per = pool::chunk_len_for(rows, 8);
    pool::parallel_chunks_mut(dst, rows_per * n, &|ci, dchunk| {
        let off = ci * rows_per * n;
        softmax_rows_serial(&src[off..off + dchunk.len()], dchunk, n);
    });
}

fn softmax_rows_serial(src: &[f32], dst: &mut [f32], n: usize) {
    for (s_row, d_row) in src.chunks_exact(n).zip(dst.chunks_exact_mut(n)) {
        let max = s_row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (d, &s) in d_row.iter_mut().zip(s_row) {
            let e = (s - max).exp();
            *d = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for d in d_row.iter_mut() {
            *d *= inv;
        }
    }
}

/// Per-row layer normalization with affine transform:
/// `out[r][j] = gamma[j] · (x[r][j] − mean_r) / sqrt(var_r + eps) + beta[j]`.
/// Rows are independent and sharded across the pool.
pub fn layer_norm_rows(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    n: usize,
    eps: f32,
) {
    debug_assert_eq!(x.len() % n, 0);
    debug_assert_eq!(x.len(), out.len());
    debug_assert_eq!(gamma.len(), n);
    debug_assert_eq!(beta.len(), n);
    if x.len() < PAR_MIN_ELEMS || pool::threads() == 1 {
        layer_norm_rows_serial(x, gamma, beta, out, n, eps);
        return;
    }
    let rows = x.len() / n;
    let rows_per = pool::chunk_len_for(rows, 8);
    pool::parallel_chunks_mut(out, rows_per * n, &|ci, ochunk| {
        let off = ci * rows_per * n;
        layer_norm_rows_serial(&x[off..off + ochunk.len()], gamma, beta, ochunk, n, eps);
    });
}

fn layer_norm_rows_serial(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    n: usize,
    eps: f32,
) {
    for (o_row, x_row) in out.chunks_exact_mut(n).zip(x.chunks_exact(n)) {
        let mean = x_row.iter().sum::<f32>() / n as f32;
        let var = x_row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for j in 0..n {
            o_row[j] = gamma[j] * (x_row[j] - mean) * inv + beta[j];
        }
    }
}

// -------------------------------------------------------------- transpose

/// Transpose `src (m×n)` into `dst (n×m)` with the cache-tiled strided
/// transpose from [`pack`] (the same routine that backs `Bᵀ` panel
/// packing, so remainder handling lives in one place); large matrices are
/// split across the pool by output-row bands.
pub fn transpose(src: &[f32], dst: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(src.len(), m * n);
    debug_assert_eq!(dst.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if m * n < PAR_MIN_ELEMS || pool::threads() == 1 || n < 2 * pack::TILE {
        pack::transpose_into(src, dst, m, n, n, m);
        return;
    }
    // Each band is `pack::TILE` source columns = that many contiguous
    // output rows; the last band may be narrower.
    pool::parallel_chunks_mut(dst, pack::TILE * m, &|band, chunk| {
        let j0 = band * pack::TILE;
        let jw = chunk.len() / m;
        pack::transpose_into(&src[j0..], chunk, m, jw, n, m);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift generator so kernel tests need no external
    /// crates and reproduce across runs.
    struct XorShift(u64);
    impl XorShift {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn next_f32(&mut self) -> f32 {
            // Uniform in [-1, 1).
            (self.next_u64() >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
        }
        fn next_range(&mut self, lo: usize, hi: usize) -> usize {
            lo + (self.next_u64() as usize) % (hi - lo)
        }
        fn vec(&mut self, n: usize) -> Vec<f32> {
            (0..n).map(|_| self.next_f32()).collect()
        }
    }

    fn max_rel_err(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
            .fold(0.0, f32::max)
    }

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0]; // 2x3, used as b^T: 3x2
        let mut c1 = [0.0; 4];
        matmul_bt_acc(&a, &b, &mut c1, 2, 3, 2);
        let mut bt = [0.0; 6];
        transpose(&b, &mut bt, 2, 3);
        let mut c2 = [0.0; 4];
        matmul_acc(&a, &bt, &mut c2, 2, 3, 2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3 -> a^T 3x2
        let b = [1.0, -1.0, 0.5, 2.0]; // 2x2
        let mut c1 = vec![0.0; 6];
        matmul_at_acc(&a, &b, &mut c1, 2, 3, 2);
        let mut at = [0.0; 6];
        transpose(&a, &mut at, 2, 3);
        let mut c2 = vec![0.0; 6];
        matmul_acc(&at, &b, &mut c2, 3, 2, 2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn blocked_matches_naive_across_random_shapes() {
        let mut rng = XorShift(0x9e3779b97f4a7c15);
        for _ in 0..40 {
            let m = rng.next_range(1, 70);
            let k = rng.next_range(1, 70);
            let n = rng.next_range(1, 70);
            let a = rng.vec(m * k);
            let b = rng.vec(k * n);
            let mut c_naive = rng.vec(m * n);
            let mut c_blocked = c_naive.clone();
            naive_matmul_acc(&a, &b, &mut c_naive, m, k, n);
            blocked_matmul_acc(&a, &b, &mut c_blocked, m, k, n);
            assert!(
                max_rel_err(&c_naive, &c_blocked) < 1e-5,
                "acc mismatch at m={m} k={k} n={n}"
            );

            let bt = rng.vec(n * k);
            let mut c1 = rng.vec(m * n);
            let mut c2 = c1.clone();
            naive_matmul_bt_acc(&a, &bt, &mut c1, m, k, n);
            blocked_matmul_bt_acc(&a, &bt, &mut c2, m, k, n);
            assert!(
                max_rel_err(&c1, &c2) < 1e-5,
                "bt mismatch at m={m} k={k} n={n}"
            );

            let b2 = rng.vec(m * n);
            let mut c3 = rng.vec(k * n);
            let mut c4 = c3.clone();
            naive_matmul_at_acc(&a, &b2, &mut c3, m, k, n);
            blocked_matmul_at_acc(&a, &b2, &mut c4, m, k, n);
            assert!(
                max_rel_err(&c3, &c4) < 1e-5,
                "at mismatch at m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn blocked_handles_tile_edges_exactly() {
        // Dimensions straddling MR/NR/KC boundaries, integer-valued inputs
        // so naive and blocked must agree exactly.
        for &(m, k, n) in &[
            (MR + 1, KC + 3, NR + 1),
            (2 * MR, 2 * KC, 2 * NR),
            (1, KC - 1, NR - 1),
            (MR - 1, 1, 2 * NR + 5),
        ] {
            let mut rng = XorShift(42 + (m * 31 + k * 7 + n) as u64);
            let a: Vec<f32> = (0..m * k)
                .map(|_| (rng.next_u64() % 5) as f32 - 2.0)
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|_| (rng.next_u64() % 5) as f32 - 2.0)
                .collect();
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            naive_matmul_acc(&a, &b, &mut c1, m, k, n);
            blocked_matmul_acc(&a, &b, &mut c2, m, k, n);
            assert_eq!(c1, c2, "edge case m={m} k={k} n={n}");
        }
    }

    #[test]
    fn blocked_is_bit_identical_across_thread_counts() {
        let mut rng = XorShift(7);
        let (m, k, n) = (97, 130, 53);
        let a = rng.vec(m * k);
        let b = rng.vec(k * n);
        let mut reference: Option<Vec<u32>> = None;
        let _g = pool::TEST_WIDTH_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let before = pool::threads();
        for w in [1, 2, 4] {
            pool::set_threads(w);
            let mut c = vec![0.0f32; m * n];
            blocked_matmul_acc(&a, &b, &mut c, m, k, n);
            let bits: Vec<u32> = c.iter().map(|x| x.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "results differ at {w} threads"),
            }
        }
        pool::set_threads(before);
    }

    #[test]
    fn transpose_blocked_roundtrip() {
        let mut rng = XorShift(11);
        for &(m, n) in &[(1, 1), (3, 200), (65, 33), (128, 128), (31, 257)] {
            let src = rng.vec(m * n);
            let mut t = vec![0.0; m * n];
            let mut back = vec![0.0; m * n];
            transpose(&src, &mut t, m, n);
            transpose(&t, &mut back, n, m);
            assert_eq!(src, back, "roundtrip failed at {m}x{n}");
            for i in 0..m.min(4) {
                for j in 0..n.min(4) {
                    assert_eq!(t[j * m + i], src[i * n + j]);
                }
            }
        }
    }

    #[test]
    fn map_kernels_match_serial() {
        let mut rng = XorShift(13);
        let n = PAR_MIN_ELEMS + 517; // force the parallel path
        let a = rng.vec(n);
        let b = rng.vec(n);
        let mut out = vec![0.0; n];
        map_unary(&a, &mut out, |x| x.max(0.0));
        for (o, &x) in out.iter().zip(&a) {
            assert_eq!(*o, x.max(0.0));
        }
        map_binary(&a, &b, &mut out, |x, y| x * y);
        for ((o, &x), &y) in out.iter().zip(&a).zip(&b) {
            assert_eq!(*o, x * y);
        }
    }

    #[test]
    fn layer_norm_rows_matches_reference() {
        let mut rng = XorShift(17);
        let (rows, n) = (300, 64);
        let x = rng.vec(rows * n);
        let gamma = rng.vec(n);
        let beta = rng.vec(n);
        let mut out = vec![0.0; rows * n];
        layer_norm_rows(&x, &gamma, &beta, &mut out, n, 1e-5);
        let mut expect = vec![0.0; rows * n];
        layer_norm_rows_serial(&x, &gamma, &beta, &mut expect, n, 1e-5);
        assert_eq!(out, expect);
        // Row mean of the normalized (pre-affine) signal should be ~0: check
        // one row against a direct computation.
        let r0 = &x[..n];
        let mean = r0.iter().sum::<f32>() / n as f32;
        let var = r0.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + 1e-5f32).sqrt();
        for j in 0..n {
            let want = gamma[j] * (r0[j] - mean) * inv + beta[j];
            assert!((out[j] - want).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let src = [1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        let mut dst = [0.0; 6];
        softmax_rows(&src, &mut dst, 3);
        for row in dst.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // monotone in logits
        assert!(dst[0] < dst[1] && dst[1] < dst[2]);
    }

    #[test]
    fn profiling_counts_matmul_flops() {
        let _g = crate::profiler::TEST_PROFILING_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        rckt_obs::set_profiling(true);
        let calls0 = rckt_obs::counter("kernel.matmul.calls").get();
        let flops0 = rckt_obs::counter("kernel.matmul.flops").get();
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        rckt_obs::set_profiling(false);
        // `>=`: other tests may run matmuls concurrently while profiling
        // is enabled here; this one contributes 1 call and 2·2·2·2 FLOPs.
        assert!(rckt_obs::counter("kernel.matmul.calls").get() - calls0 >= 1);
        assert!(rckt_obs::counter("kernel.matmul.flops").get() - flops0 >= 16);
    }

    #[test]
    fn softmax_handles_large_negatives() {
        let src = [0.0, -1e9, -1e9];
        let mut dst = [0.0; 3];
        softmax_rows(&src, &mut dst, 3);
        assert!((dst[0] - 1.0).abs() < 1e-6);
        assert!(dst[1] < 1e-9);
    }

    #[test]
    fn variant_name_matches_enum() {
        let before = kernel_variant();
        set_kernel_variant(KernelVariant::Naive);
        assert_eq!(kernel_variant_name(), "naive");
        set_kernel_variant(KernelVariant::Blocked);
        assert_eq!(kernel_variant_name(), "blocked");
        set_kernel_variant(KernelVariant::Simd);
        assert_eq!(kernel_variant_name(), "simd");
        set_kernel_variant(before);
    }

    #[test]
    fn simd_matches_naive_across_random_shapes() {
        // The simd≡naive tolerance is 1e-4 relative (FMA contracts the
        // multiply-add, and panel tiling reassociates the k-sum).
        let mut rng = XorShift(0x243f6a8885a308d3);
        for _ in 0..40 {
            let m = rng.next_range(1, 70);
            let k = rng.next_range(1, 70);
            let n = rng.next_range(1, 70);
            let a = rng.vec(m * k);
            let b = rng.vec(k * n);
            let mut c_naive = rng.vec(m * n);
            let mut c_simd = c_naive.clone();
            naive_matmul_acc(&a, &b, &mut c_naive, m, k, n);
            simd_matmul_acc(&a, &b, &mut c_simd, m, k, n);
            assert!(
                max_rel_err(&c_naive, &c_simd) < 1e-4,
                "acc mismatch at m={m} k={k} n={n}"
            );

            let bt = rng.vec(n * k);
            let mut c1 = rng.vec(m * n);
            let mut c2 = c1.clone();
            naive_matmul_bt_acc(&a, &bt, &mut c1, m, k, n);
            simd_matmul_bt_acc(&a, &bt, &mut c2, m, k, n);
            assert!(
                max_rel_err(&c1, &c2) < 1e-4,
                "bt mismatch at m={m} k={k} n={n}"
            );

            let b2 = rng.vec(m * n);
            let mut c3 = rng.vec(k * n);
            let mut c4 = c3.clone();
            naive_matmul_at_acc(&a, &b2, &mut c3, m, k, n);
            simd_matmul_at_acc(&a, &b2, &mut c4, m, k, n);
            assert!(
                max_rel_err(&c3, &c4) < 1e-4,
                "at mismatch at m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn simd_handles_tile_edges_exactly() {
        // Integer-valued inputs: FMA and reassociation are exact, so the
        // SIMD path must agree bit-for-bit with naive on every remainder
        // combination of the microkernel tile — including degenerate
        // 1×K×1 and window-length-sized dims.
        let edges = [
            (1usize, 37usize, 1usize), // 1×K×1
            (1, 1, 1),
            (6, 128, 16), // exactly one AVX2 tile
            (7, 129, 17), // one past it in every dim
            (5, 50, 15),  // under it in every dim
            (8, 8, 8),    // exactly one NEON tile
            (9, 9, 9),
            (50, 200, 50), // window_len × max_len dims
            (3, 1, 31),
        ];
        for &(m, k, n) in &edges {
            let mut rng = XorShift((m * 1000 + k * 10 + n) as u64 | 1);
            let a: Vec<f32> = (0..m * k)
                .map(|_| rng.next_range(0, 7) as f32 - 3.0)
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|_| rng.next_range(0, 7) as f32 - 3.0)
                .collect();
            let mut c1 = vec![0.5f32; m * n];
            let mut c2 = c1.clone();
            naive_matmul_acc(&a, &b, &mut c1, m, k, n);
            simd_matmul_acc(&a, &b, &mut c2, m, k, n);
            assert_eq!(c1, c2, "edge case m={m} k={k} n={n}");
        }
    }

    #[test]
    fn simd_is_bit_identical_across_thread_counts() {
        let mut rng = XorShift(23);
        let (m, k, n) = (97, 130, 53);
        let a = rng.vec(m * k);
        let b = rng.vec(k * n);
        let mut reference: Option<Vec<u32>> = None;
        let _g = pool::TEST_WIDTH_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let before = pool::threads();
        for w in [1, 2, 4] {
            pool::set_threads(w);
            let mut c = vec![0.0f32; m * n];
            simd_matmul_acc(&a, &b, &mut c, m, k, n);
            let bits: Vec<u32> = c.iter().map(|x| x.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "results differ at {w} threads"),
            }
        }
        pool::set_threads(before);
    }
}
