//! Persistent parameter storage with named tensors and optimizer state.

use crate::graph::{Graph, Tx};
use crate::shape::Shape;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParamId(pub(crate) usize);

/// Weight initialization schemes.
#[derive(Clone, Copy, Debug)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// All ones (layer-norm gain).
    Ones,
    /// Every element set to the given value.
    Constant(f32),
    /// Uniform in `[-a, a]`.
    Uniform(f32),
    /// Xavier/Glorot uniform, scaled by fan-in + fan-out.
    Xavier,
    /// He/Kaiming uniform, scaled by fan-in (for ReLU nets).
    He,
}

#[derive(Serialize, Deserialize)]
pub(crate) struct Param {
    pub name: String,
    pub shape: Shape,
    pub data: Vec<f32>,
    #[serde(skip)]
    pub grad: Vec<f32>,
    #[serde(skip)]
    pub m: Vec<f32>,
    #[serde(skip)]
    pub v: Vec<f32>,
}

/// Named persistent parameters plus their Adam moments.
///
/// A fresh [`Graph`] is built per step; parameters are injected with
/// [`ParamStore::leaf`], gradients harvested back with
/// [`ParamStore::accumulate_grads`], and updated by an optimizer from
/// [`crate::optim`].
#[derive(Default, Serialize, Deserialize)]
pub struct ParamStore {
    pub(crate) params: Vec<Param>,
    names: HashMap<String, usize>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter. Panics if `name` is already taken.
    pub fn register(
        &mut self,
        name: &str,
        shape: impl Into<Shape>,
        init: Init,
        rng: &mut SmallRng,
    ) -> ParamId {
        assert!(
            !self.names.contains_key(name),
            "duplicate parameter name {name}"
        );
        let shape = shape.into();
        let n = shape.numel();
        let (fan_in, fan_out) = match shape.0.as_slice() {
            [o] => (*o, *o),
            [i, o] => (*i, *o),
            [b, i, o] => (b * i, *o),
            _ => unreachable!(),
        };
        let data = match init {
            Init::Zeros => vec![0.0; n],
            Init::Ones => vec![1.0; n],
            Init::Constant(c) => vec![c; n],
            Init::Uniform(a) => (0..n).map(|_| rng.gen_range(-a..=a)).collect(),
            Init::Xavier => {
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
            Init::He => {
                let a = (6.0 / fan_in as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
        };
        self.params.push(Param {
            name: name.to_string(),
            shape,
            data,
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        });
        let id = self.params.len() - 1;
        self.names.insert(name.to_string(), id);
        ParamId(id)
    }

    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.names.get(name).copied().map(ParamId)
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.data.len()).sum()
    }

    pub fn data(&self, id: ParamId) -> &[f32] {
        &self.params[id.0].data
    }

    pub fn data_mut(&mut self, id: ParamId) -> &mut [f32] {
        &mut self.params[id.0].data
    }

    pub fn grad(&self, id: ParamId) -> &[f32] {
        &self.params[id.0].grad
    }

    pub fn shape(&self, id: ParamId) -> &Shape {
        &self.params[id.0].shape
    }

    /// Inject a parameter into a graph as a differentiable leaf.
    pub fn leaf(&self, g: &mut Graph, id: ParamId) -> Tx {
        let p = &self.params[id.0];
        g.push_param(p.data.clone(), p.shape.clone(), id.0)
    }

    /// Harvest gradients from a backward-swept graph into `self.grad`
    /// (accumulating, so several graphs can contribute to one step).
    pub fn accumulate_grads(&mut self, g: &Graph) {
        for node in &g.nodes {
            if let Some(pi) = node.param_src {
                let dst = &mut self.params[pi].grad;
                for (d, &s) in dst.iter_mut().zip(&node.grad) {
                    *d += s;
                }
            }
        }
    }

    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .flat_map(|p| p.grad.iter())
            .map(|g| (g * g) as f64)
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &mut self.params {
                p.grad.iter_mut().for_each(|g| *g *= scale);
            }
        }
    }

    /// Serialize weights (not optimizer state) to JSON.
    pub fn save_json(&self) -> String {
        serde_json::to_string(self).expect("param store serialization")
    }

    /// Restore weights from [`ParamStore::save_json`] output. Optimizer
    /// moments are reset.
    pub fn load_json(s: &str) -> Result<Self, serde_json::Error> {
        let mut store: ParamStore = serde_json::from_str(s)?;
        store.names = store
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
        for p in &mut store.params {
            let n = p.data.len();
            p.grad = vec![0.0; n];
            p.m = vec![0.0; n];
            p.v = vec![0.0; n];
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn register_and_lookup() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let w = store.register("w", Shape::matrix(3, 4), Init::Xavier, &mut rng);
        assert_eq!(store.id("w"), Some(w));
        assert_eq!(store.id("nope"), None);
        assert_eq!(store.num_weights(), 12);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        store.register("w", Shape::vector(2), Init::Zeros, &mut rng);
        store.register("w", Shape::vector(2), Init::Zeros, &mut rng);
    }

    #[test]
    fn grad_roundtrip_through_graph() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let w = store.register("w", Shape::vector(3), Init::Ones, &mut rng);

        let mut g = Graph::new();
        let wt = store.leaf(&mut g, w);
        let loss = g.sum_all(wt);
        g.backward(loss);
        store.accumulate_grads(&g);
        assert_eq!(store.grad(w), &[1.0, 1.0, 1.0]);

        store.zero_grads();
        assert_eq!(store.grad(w), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let w = store.register("w", Shape::vector(2), Init::Zeros, &mut rng);
        store.params[w.0].grad = vec![3.0, 4.0]; // norm 5
        store.clip_grad_norm(1.0);
        let n = store.grad_norm();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        store.register("a", Shape::matrix(2, 2), Init::Xavier, &mut rng);
        store.register("b", Shape::vector(2), Init::Uniform(0.5), &mut rng);
        let json = store.save_json();
        let loaded = ParamStore::load_json(&json).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.data(loaded.id("a").unwrap()),
            store.data(store.id("a").unwrap())
        );
    }
}
