//! Finite-difference gradient checks for every differentiable op.
//!
//! Each check builds a scalar loss from a parameterized input, runs
//! `backward`, and compares the analytic gradient against central
//! differences. f32 arithmetic limits precision, so tolerances are relative
//! and loose-ish (1e-2 relative at 1e-3 step).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rckt_tensor::{Graph, Shape, Tx};

/// Build loss = f(x) for given input values, return (loss, analytic grad of x).
fn run<F>(data: &[f32], shape: Shape, f: &F) -> (f32, Vec<f32>)
where
    F: Fn(&mut Graph, Tx) -> Tx,
{
    let mut g = Graph::new();
    let x = g.leaf_grad(data.to_vec(), shape);
    let loss = f(&mut g, x);
    assert_eq!(g.shape(loss).numel(), 1, "loss must be scalar");
    let val = g.value(loss);
    g.backward(loss);
    (val, g.grad(x).to_vec())
}

fn gradcheck<F>(data: &[f32], shape: Shape, f: F)
where
    F: Fn(&mut Graph, Tx) -> Tx,
{
    let (_, analytic) = run(data, shape.clone(), &f);
    let h = 1e-3f32;
    for i in 0..data.len() {
        let mut plus = data.to_vec();
        plus[i] += h;
        let mut minus = data.to_vec();
        minus[i] -= h;
        let (lp, _) = run(&plus, shape.clone(), &f);
        let (lm, _) = run(&minus, shape.clone(), &f);
        let numeric = (lp - lm) / (2.0 * h);
        let a = analytic[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        assert!(
            (a - numeric).abs() / denom < 2e-2,
            "grad mismatch at {i}: analytic {a}, numeric {numeric}"
        );
    }
}

fn rand_vec(rng: &mut SmallRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

#[test]
fn gc_matmul() {
    let mut rng = SmallRng::seed_from_u64(1);
    let x = rand_vec(&mut rng, 6);
    let other = rand_vec(&mut rng, 12);
    gradcheck(&x, Shape::matrix(2, 3), move |g, x| {
        let b = g.input(other.clone(), Shape::matrix(3, 4));
        let y = g.matmul(x, b);
        g.sum_all(y)
    });
    // also check grad w.r.t. the right operand
    let a = rand_vec(&mut rng, 6);
    let x2 = rand_vec(&mut rng, 12);
    gradcheck(&x2, Shape::matrix(3, 4), move |g, x| {
        let at = g.input(a.clone(), Shape::matrix(2, 3));
        let y = g.matmul(at, x);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn gc_bmm() {
    let mut rng = SmallRng::seed_from_u64(2);
    let x = rand_vec(&mut rng, 2 * 2 * 3);
    let other = rand_vec(&mut rng, 2 * 3 * 2);
    gradcheck(&x, Shape::cube(2, 2, 3), move |g, x| {
        let b = g.input(other.clone(), Shape::cube(2, 3, 2));
        let y = g.bmm(x, b);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
    let a = rand_vec(&mut rng, 2 * 2 * 3);
    let x2 = rand_vec(&mut rng, 2 * 3 * 2);
    gradcheck(&x2, Shape::cube(2, 3, 2), move |g, x| {
        let at = g.input(a.clone(), Shape::cube(2, 2, 3));
        let y = g.bmm(at, x);
        let y2 = g.mul(y, y);
        g.sum_all(y2)
    });
}

#[test]
fn gc_transpose() {
    let mut rng = SmallRng::seed_from_u64(3);
    let x = rand_vec(&mut rng, 6);
    gradcheck(&x, Shape::matrix(2, 3), |g, x| {
        let t = g.transpose(x);
        let sq = g.mul(t, t);
        g.sum_all(sq)
    });
    let x3 = rand_vec(&mut rng, 12);
    gradcheck(&x3, Shape::cube(2, 2, 3), |g, x| {
        let t = g.transpose(x);
        let sq = g.mul(t, t);
        g.sum_all(sq)
    });
}

#[test]
fn gc_elementwise_chain() {
    let mut rng = SmallRng::seed_from_u64(4);
    let x = rand_vec(&mut rng, 8);
    gradcheck(&x, Shape::matrix(2, 4), |g, x| {
        let s = g.sigmoid(x);
        let t = g.tanh(s);
        let r = g.relu(t);
        let e = g.exp(r);
        let m = g.mul_scalar(e, 0.5);
        let a = g.add_scalar(m, 1.0);
        g.mean_all(a)
    });
}

#[test]
fn gc_add_sub_mul() {
    let mut rng = SmallRng::seed_from_u64(5);
    let x = rand_vec(&mut rng, 6);
    let other = rand_vec(&mut rng, 6);
    gradcheck(&x, Shape::matrix(2, 3), move |g, x| {
        let b = g.input(other.clone(), Shape::matrix(2, 3));
        let s = g.add(x, b);
        let d = g.sub(s, x);
        let m = g.mul(d, x);
        g.sum_all(m)
    });
}

#[test]
fn gc_add_row() {
    let mut rng = SmallRng::seed_from_u64(6);
    // gradient w.r.t. the broadcast row
    let row = rand_vec(&mut rng, 3);
    let base = rand_vec(&mut rng, 6);
    gradcheck(&row, Shape::vector(3), move |g, r| {
        let a = g.input(base.clone(), Shape::matrix(2, 3));
        let y = g.add_row(a, r);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn gc_ln_clamped() {
    let x = vec![0.5, 1.0, 2.0, 0.2];
    gradcheck(&x, Shape::vector(4), |g, x| {
        let l = g.ln_clamped(x, 1e-6);
        g.sum_all(l)
    });
}

#[test]
fn gc_softmax() {
    let mut rng = SmallRng::seed_from_u64(7);
    let x = rand_vec(&mut rng, 6);
    let w = rand_vec(&mut rng, 6);
    gradcheck(&x, Shape::matrix(2, 3), move |g, x| {
        let s = g.softmax_last(x);
        let wt = g.input(w.clone(), Shape::matrix(2, 3));
        let m = g.mul(s, wt);
        g.sum_all(m)
    });
}

#[test]
fn gc_layer_norm() {
    let mut rng = SmallRng::seed_from_u64(8);
    let x = rand_vec(&mut rng, 8);
    let gamma = rand_vec(&mut rng, 4);
    let beta = rand_vec(&mut rng, 4);
    // w.r.t. x
    {
        let (gamma, beta) = (gamma.clone(), beta.clone());
        gradcheck(&x, Shape::matrix(2, 4), move |g, x| {
            let ga = g.input(gamma.clone(), Shape::vector(4));
            let be = g.input(beta.clone(), Shape::vector(4));
            let y = g.layer_norm(x, ga, be, 1e-5);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
    }
    // w.r.t. gamma
    {
        let (x, beta) = (x.clone(), beta.clone());
        gradcheck(&gamma, Shape::vector(4), move |g, ga| {
            let xt = g.input(x.clone(), Shape::matrix(2, 4));
            let be = g.input(beta.clone(), Shape::vector(4));
            let y = g.layer_norm(xt, ga, be, 1e-5);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        });
    }
    // w.r.t. beta
    gradcheck(&beta, Shape::vector(4), move |g, be| {
        let xt = g.input(x.clone(), Shape::matrix(2, 4));
        let ga = g.input(gamma.clone(), Shape::vector(4));
        let y = g.layer_norm(xt, ga, be, 1e-5);
        let sq = g.mul(y, y);
        g.sum_all(sq)
    });
}

#[test]
fn gc_concat_slice_gather() {
    let mut rng = SmallRng::seed_from_u64(9);
    let x = rand_vec(&mut rng, 6);
    let other = rand_vec(&mut rng, 4);
    gradcheck(&x, Shape::matrix(2, 3), move |g, x| {
        let b = g.input(other.clone(), Shape::matrix(2, 2));
        let c = g.concat_cols(x, b);
        let s = g.slice_cols(c, 1, 4);
        let gth = g.gather_rows(s, &[1, 0, 1]);
        let sq = g.mul(gth, gth);
        g.sum_all(sq)
    });
    let x2 = rand_vec(&mut rng, 6);
    gradcheck(&x2, Shape::matrix(3, 2), |g, x| {
        let r = g.slice_rows(x, 1, 3);
        let c = g.concat_rows(&[r, x]);
        let sq = g.mul(c, c);
        g.sum_all(sq)
    });
}

#[test]
fn gc_segment_mean_rows() {
    let mut rng = SmallRng::seed_from_u64(21);
    let x = rand_vec(&mut rng, 6 * 2);
    gradcheck(&x, Shape::matrix(6, 2), |g, x| {
        let m = g.segment_mean_rows(x, &[1, 3, 2]);
        let sq = g.mul(m, m);
        g.sum_all(sq)
    });
}

#[test]
fn segment_mean_values() {
    let mut g = Graph::new();
    let x = g.input(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], Shape::matrix(3, 2));
    let m = g.segment_mean_rows(x, &[2, 1]);
    assert_eq!(g.data(m), &[2.0, 3.0, 5.0, 6.0]);
}

#[test]
fn gc_sum_last_and_reshape() {
    let mut rng = SmallRng::seed_from_u64(10);
    let x = rand_vec(&mut rng, 12);
    gradcheck(&x, Shape::matrix(3, 4), |g, x| {
        let r = g.reshape(x, Shape::matrix(4, 3));
        let s = g.sum_last(r);
        let sq = g.mul(s, s);
        g.sum_all(sq)
    });
}

#[test]
fn gc_dropout_mask_is_linear() {
    let mut rng = SmallRng::seed_from_u64(11);
    let x = rand_vec(&mut rng, 6);
    let mask = vec![2.0, 0.0, 2.0, 2.0, 0.0, 2.0];
    gradcheck(&x, Shape::matrix(2, 3), move |g, x| {
        let d = g.dropout_mask(x, mask.clone());
        let sq = g.mul(d, d);
        g.sum_all(sq)
    });
}

#[test]
fn gc_bce_with_logits() {
    let mut rng = SmallRng::seed_from_u64(12);
    let z = rand_vec(&mut rng, 5);
    let targets = vec![1.0, 0.0, 1.0, 0.0, 1.0];
    let weights = vec![1.0, 1.0, 0.0, 2.0, 1.0];
    gradcheck(&z, Shape::vector(5), move |g, z| {
        g.bce_with_logits(z, &targets, &weights, 4.0)
    });
}

#[test]
fn bce_matches_manual_formula() {
    let mut g = Graph::new();
    let z = g.leaf_grad(vec![0.3, -1.2], Shape::vector(2));
    let loss = g.bce_with_logits(z, &[1.0, 0.0], &[1.0, 1.0], 2.0);
    let expected = {
        let p1 = 1.0 / (1.0 + (-0.3f32).exp());
        let p2 = 1.0 / (1.0 + (1.2f32).exp());
        (-(p1.ln()) - (1.0 - p2).ln()) / 2.0
    };
    assert!((g.value(loss) - expected).abs() < 1e-5);
}

#[test]
fn gc_full_mlp_like_composition() {
    // A composition resembling the RCKT prediction path.
    let mut rng = SmallRng::seed_from_u64(13);
    let x = rand_vec(&mut rng, 8);
    let w1 = rand_vec(&mut rng, 4 * 3);
    let w2 = rand_vec(&mut rng, 3);
    gradcheck(&x, Shape::matrix(2, 4), move |g, x| {
        let w1t = g.input(w1.clone(), Shape::matrix(4, 3));
        let w2t = g.input(w2.clone(), Shape::matrix(3, 1));
        let h = g.matmul(x, w1t);
        let h = g.relu(h);
        let z = g.matmul(h, w2t);
        let p = g.sigmoid(z);
        let lnp = g.ln_clamped(p, 1e-7);
        let neg = g.neg(lnp);
        g.mean_all(neg)
    });
}
