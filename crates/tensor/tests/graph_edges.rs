//! Edge-case behaviour of the autograd graph: contract violations panic
//! loudly (shape mismatches, non-scalar losses), and gradient bookkeeping
//! behaves at the boundaries.

use rckt_tensor::{Graph, Shape};

#[test]
#[should_panic(expected = "matmul inner dims")]
fn matmul_shape_mismatch_panics() {
    let mut g = Graph::new();
    let a = g.input(vec![0.0; 6], Shape::matrix(2, 3));
    let b = g.input(vec![0.0; 8], Shape::matrix(4, 2));
    g.matmul(a, b);
}

#[test]
#[should_panic(expected = "add shapes")]
fn add_shape_mismatch_panics() {
    let mut g = Graph::new();
    let a = g.input(vec![0.0; 6], Shape::matrix(2, 3));
    let b = g.input(vec![0.0; 6], Shape::matrix(3, 2));
    g.add(a, b);
}

#[test]
#[should_panic(expected = "scalar loss")]
fn backward_requires_scalar() {
    let mut g = Graph::new();
    let a = g.leaf_grad(vec![1.0, 2.0], Shape::vector(2));
    let b = g.mul_scalar(a, 2.0);
    g.backward(b);
}

#[test]
#[should_panic(expected = "does not depend on any parameter")]
fn backward_requires_grad_path() {
    let mut g = Graph::new();
    let a = g.input(vec![1.0], Shape::scalar()); // no grad
    let b = g.mul_scalar(a, 2.0);
    g.backward(b);
}

#[test]
#[should_panic(expected = "gather index")]
fn gather_out_of_bounds_panics() {
    let mut g = Graph::new();
    let t = g.input(vec![0.0; 4], Shape::matrix(2, 2));
    g.gather_rows(t, &[2]);
}

#[test]
#[should_panic(expected = "bmm batch dims")]
fn bmm_batch_mismatch_panics() {
    let mut g = Graph::new();
    let a = g.input(vec![0.0; 8], Shape::cube(2, 2, 2));
    let b = g.input(vec![0.0; 4], Shape::cube(1, 2, 2));
    g.bmm(a, b);
}

#[test]
#[should_panic(expected = "reshape numel")]
fn reshape_numel_mismatch_panics() {
    let mut g = Graph::new();
    let a = g.input(vec![0.0; 6], Shape::matrix(2, 3));
    g.reshape(a, Shape::matrix(2, 2));
}

#[test]
#[should_panic(expected = "segment lengths")]
fn segment_mean_coverage_mismatch_panics() {
    let mut g = Graph::new();
    let a = g.input(vec![0.0; 6], Shape::matrix(3, 2));
    g.segment_mean_rows(a, &[2, 2]);
}

#[test]
fn second_backward_accumulates() {
    // calling backward twice on the same graph doubles leaf grads — the
    // documented tape semantics (graphs are single-use in practice).
    let mut g = Graph::new();
    let a = g.leaf_grad(vec![1.0, 2.0], Shape::vector(2));
    let loss = g.sum_all(a);
    g.backward(loss);
    let first = g.grad(a).to_vec();
    g.backward(loss);
    let second = g.grad(a).to_vec();
    for (f, s) in first.iter().zip(&second) {
        assert!((s - 2.0 * f).abs() < 1e-6);
    }
}

#[test]
fn grad_of_constant_input_stays_empty() {
    let mut g = Graph::new();
    let a = g.input(vec![1.0, 2.0], Shape::vector(2));
    let w = g.leaf_grad(vec![3.0, 4.0], Shape::vector(2));
    let m = g.mul(a, w);
    let loss = g.sum_all(m);
    g.backward(loss);
    assert!(g.grad(a).is_empty(), "constants carry no grad buffer");
    assert_eq!(g.grad(w), &[1.0, 2.0]);
}

#[test]
fn ln_clamped_is_finite_at_zero() {
    let mut g = Graph::new();
    let a = g.leaf_grad(vec![0.0, -1.0, 1e-12], Shape::vector(3));
    let l = g.ln_clamped(a, 1e-6);
    assert!(g.data(l).iter().all(|v| v.is_finite()));
    let s = g.sum_all(l);
    g.backward(s);
    assert!(g.grad(a).iter().all(|v| v.is_finite()));
}

#[test]
fn bce_with_zero_weight_positions_has_zero_grad_there() {
    let mut g = Graph::new();
    let z = g.leaf_grad(vec![5.0, -5.0], Shape::vector(2));
    let loss = g.bce_with_logits(z, &[0.0, 1.0], &[0.0, 1.0], 1.0);
    g.backward(loss);
    assert_eq!(
        g.grad(z)[0],
        0.0,
        "masked position must not receive gradient"
    );
    assert!(g.grad(z)[1] != 0.0);
}
