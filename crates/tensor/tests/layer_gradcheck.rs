//! End-to-end gradient checks through whole layers (LSTM, multi-head
//! attention): the op-level checks in `gradcheck.rs` verify each backward
//! rule in isolation; these verify the full composition that the
//! knowledge-tracing models actually run, by perturbing *parameters*.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rckt_tensor::layers::{abs_distances, AttentionBias, Lstm, MultiHeadAttention};
use rckt_tensor::{Graph, ParamId, ParamStore, Shape};

const B: usize = 2;
const T: usize = 4;
const D: usize = 6;

fn input_data(rng: &mut SmallRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-0.8f32..0.8)).collect()
}

/// Analytic grads vs central differences for every weight of `params`.
fn check_param_grads(
    store: &mut ParamStore,
    params: &[ParamId],
    mut loss_of: impl FnMut(&ParamStore) -> f32,
    analytic: impl Fn(&ParamStore) -> Vec<(ParamId, Vec<f32>)>,
) {
    let grads = analytic(store);
    let h = 2e-3f32;
    for (pid, g) in grads {
        if !params.contains(&pid) {
            continue;
        }
        // spot-check a few coordinates per parameter to keep runtime sane
        let n = store.data(pid).len();
        let picks: Vec<usize> = (0..n).step_by((n / 4).max(1)).take(4).collect();
        for &i in &picks {
            let orig = store.data(pid)[i];
            store.data_mut(pid)[i] = orig + h;
            let lp = loss_of(store);
            store.data_mut(pid)[i] = orig - h;
            let lm = loss_of(store);
            store.data_mut(pid)[i] = orig;
            let numeric = (lp - lm) / (2.0 * h);
            let a = g[i];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() / denom < 5e-2,
                "param grad mismatch at coord {i}: analytic {a}, numeric {numeric}"
            );
        }
    }
}

#[test]
fn lstm_full_gradcheck() {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let lstm = Lstm::new(&mut store, "lstm", D, D, 1, 0.0, &mut rng);
    let x = input_data(&mut rng, B * T * D);
    let params: Vec<ParamId> = ["lstm.l0.w_ih", "lstm.l0.w_hh", "lstm.l0.b"]
        .iter()
        .map(|n| store.id(n).unwrap())
        .collect();

    let loss_of = |store: &ParamStore| -> f32 {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let xt = g.input(x.clone(), Shape::matrix(B * T, D));
        let hidden = lstm.forward(&mut g, store, xt, B, T, false, false, &mut rng);
        let sq = g.mul(hidden, hidden);
        let loss = g.mean_all(sq);
        g.value(loss)
    };
    let analytic = |store: &ParamStore| -> Vec<(ParamId, Vec<f32>)> {
        let mut store2 = ParamStore::load_json(&store.save_json()).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let xt = g.input(x.clone(), Shape::matrix(B * T, D));
        let hidden = lstm.forward(&mut g, &store2, xt, B, T, false, false, &mut rng);
        let sq = g.mul(hidden, hidden);
        let loss = g.mean_all(sq);
        g.backward(loss);
        store2.zero_grads();
        store2.accumulate_grads(&g);
        params
            .iter()
            .map(|&p| (p, store2.grad(p).to_vec()))
            .collect()
    };
    check_param_grads(&mut store, &params, loss_of, analytic);
}

#[test]
fn attention_full_gradcheck_with_monotonic_decay() {
    let mut rng = SmallRng::seed_from_u64(13);
    let mut store = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut store, "att", D, 2, true, 0.0, &mut rng);
    let x = input_data(&mut rng, B * T * D);
    let params: Vec<ParamId> = ["att.wq.w", "att.wv.w", "att.wo.w", "att.theta"]
        .iter()
        .map(|n| store.id(n).unwrap())
        .collect();

    let run = |store: &ParamStore, want_grads: bool| -> (f32, Option<ParamStore>) {
        let mut store2 = ParamStore::load_json(&store.save_json()).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = Graph::new();
        let xt = g.input(x.clone(), Shape::matrix(B * T, D));
        let bias = AttentionBias {
            mask: None,
            distances: Some(abs_distances(T, T)),
        };
        let out = mha.forward(&mut g, &store2, xt, xt, xt, B, T, T, &bias, false, &mut rng);
        let sq = g.mul(out.out, out.out);
        let loss = g.mean_all(sq);
        let v = g.value(loss);
        if want_grads {
            g.backward(loss);
            store2.zero_grads();
            store2.accumulate_grads(&g);
            (v, Some(store2))
        } else {
            (v, None)
        }
    };
    let loss_of = |store: &ParamStore| run(store, false).0;
    let analytic = |store: &ParamStore| -> Vec<(ParamId, Vec<f32>)> {
        let s = run(store, true).1.unwrap();
        params.iter().map(|&p| (p, s.grad(p).to_vec())).collect()
    };
    check_param_grads(&mut store, &params, loss_of, analytic);
}
