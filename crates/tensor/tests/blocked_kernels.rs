//! Public-API property tests for the tiled kernel layer: the blocked
//! matmul family must track the naive reference within 1e-5 and the simd
//! family within 1e-4 (FMA contraction + panel reassociation) over random
//! and remainder shapes, both must be bit-identical for any pool width,
//! and the blocked transpose must be exact.

use rckt_tensor::kernels;
use rckt_tensor::pool;
use std::sync::Mutex;

/// Serializes the tests that mutate process-global state (the pool width).
static GLOBAL: Mutex<()> = Mutex::new(());

/// Small deterministic generator (keeps the test dependency-free).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    }

    fn dim(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    fn vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.f32()).collect()
    }
}

fn max_rel_err(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0, f32::max)
}

#[test]
fn blocked_family_matches_naive_over_random_shapes() {
    let mut rng = Lcg(0xfeed);
    for round in 0..25 {
        let (m, k, n) = (rng.dim(1, 80), rng.dim(1, 80), rng.dim(1, 80));
        let a = rng.vec(m * k);
        let b = rng.vec(k * n);
        let c0 = rng.vec(m * n); // accumulate semantics: start non-zero

        // plain: a [m,k] × b [k,n]
        let mut naive = c0.clone();
        kernels::naive_matmul_acc(&a, &b, &mut naive, m, k, n);
        let mut blocked = c0.clone();
        kernels::blocked_matmul_acc(&a, &b, &mut blocked, m, k, n);
        let e = max_rel_err(&naive, &blocked);
        assert!(e < 1e-5, "round {round} {m}x{k}x{n}: rel err {e}");

        // bt: a [m,k] × bᵀ where b is [n,k]
        let bt = rng.vec(n * k);
        let mut naive = c0.clone();
        kernels::naive_matmul_bt_acc(&a, &bt, &mut naive, m, k, n);
        let mut blocked = c0.clone();
        kernels::blocked_matmul_bt_acc(&a, &bt, &mut blocked, m, k, n);
        let e = max_rel_err(&naive, &blocked);
        assert!(e < 1e-5, "round {round} bt {m}x{k}x{n}: rel err {e}");

        // at: aᵀ × b where a is [k,m] (depth k rows)
        let at = rng.vec(k * m);
        let mut naive = c0.clone();
        kernels::naive_matmul_at_acc(&at, &b, &mut naive, k, m, n);
        let mut blocked = c0.clone();
        kernels::blocked_matmul_at_acc(&at, &b, &mut blocked, k, m, n);
        let e = max_rel_err(&naive, &blocked);
        assert!(e < 1e-5, "round {round} at {k}x{m}x{n}: rel err {e}");
    }
}

#[test]
fn blocked_matmul_bit_identical_across_widths() {
    let _g = GLOBAL.lock().unwrap();
    let mut rng = Lcg(7);
    let (m, k, n) = (61, 47, 53);
    let a = rng.vec(m * k);
    let b = rng.vec(k * n);
    let reference: Vec<u32> = {
        pool::set_threads(1);
        let mut c = vec![0.0f32; m * n];
        kernels::blocked_matmul_acc(&a, &b, &mut c, m, k, n);
        c.iter().map(|x| x.to_bits()).collect()
    };
    for width in [2, 4] {
        pool::set_threads(width);
        let mut c = vec![0.0f32; m * n];
        kernels::blocked_matmul_acc(&a, &b, &mut c, m, k, n);
        let bits: Vec<u32> = c.iter().map(|x| x.to_bits()).collect();
        assert_eq!(reference, bits, "width {width} changed the result");
    }
    pool::set_threads(1);
}

#[test]
fn simd_family_matches_naive_over_random_shapes() {
    let mut rng = Lcg(0xbeef);
    for round in 0..25 {
        let (m, k, n) = (rng.dim(1, 80), rng.dim(1, 80), rng.dim(1, 80));
        let a = rng.vec(m * k);
        let b = rng.vec(k * n);
        let c0 = rng.vec(m * n); // accumulate semantics: start non-zero

        // plain: a [m,k] × b [k,n]
        let mut naive = c0.clone();
        kernels::naive_matmul_acc(&a, &b, &mut naive, m, k, n);
        let mut simd = c0.clone();
        kernels::simd_matmul_acc(&a, &b, &mut simd, m, k, n);
        let e = max_rel_err(&naive, &simd);
        assert!(e < 1e-4, "round {round} {m}x{k}x{n}: rel err {e}");

        // bt: a [m,k] × bᵀ where b is [n,k]
        let bt = rng.vec(n * k);
        let mut naive = c0.clone();
        kernels::naive_matmul_bt_acc(&a, &bt, &mut naive, m, k, n);
        let mut simd = c0.clone();
        kernels::simd_matmul_bt_acc(&a, &bt, &mut simd, m, k, n);
        let e = max_rel_err(&naive, &simd);
        assert!(e < 1e-4, "round {round} bt {m}x{k}x{n}: rel err {e}");

        // at: aᵀ × b where a is [k,m] (depth k rows)
        let at = rng.vec(k * m);
        let mut naive = c0.clone();
        kernels::naive_matmul_at_acc(&at, &b, &mut naive, k, m, n);
        let mut simd = c0.clone();
        kernels::simd_matmul_at_acc(&at, &b, &mut simd, k, m, n);
        let e = max_rel_err(&naive, &simd);
        assert!(e < 1e-4, "round {round} at {k}x{m}x{n}: rel err {e}");
    }
}

#[test]
fn simd_matches_naive_on_remainder_shapes() {
    // M, N, K deliberately not multiples of any microkernel tile
    // (MR ∈ {4,6,8}, NR ∈ {8,16}, KC = 128), plus degenerate 1×K×1 and the
    // window/sequence-length dims RCKT actually runs (window 50, max 200).
    let shapes = [
        (1usize, 37usize, 1usize),
        (1, 1, 1),
        (5, 127, 15),
        (7, 129, 17),
        (13, 131, 23),
        (50, 32, 50),   // window-length rows, default dim
        (200, 128, 50), // max-length rows, paper dim
        (3, 200, 31),
    ];
    let mut rng = Lcg(0x5eed);
    for &(m, k, n) in &shapes {
        let a = rng.vec(m * k);
        let b = rng.vec(k * n);
        let mut naive = vec![0.0f32; m * n];
        kernels::naive_matmul_acc(&a, &b, &mut naive, m, k, n);
        let mut simd = vec![0.0f32; m * n];
        kernels::simd_matmul_acc(&a, &b, &mut simd, m, k, n);
        let e = max_rel_err(&naive, &simd);
        assert!(e < 1e-4, "{m}x{k}x{n}: rel err {e}");
    }
}

#[test]
fn simd_matmul_bit_identical_across_widths() {
    let _g = GLOBAL.lock().unwrap();
    let mut rng = Lcg(19);
    let (m, k, n) = (61, 47, 53);
    let a = rng.vec(m * k);
    let b = rng.vec(k * n);
    let reference: Vec<u32> = {
        pool::set_threads(1);
        let mut c = vec![0.0f32; m * n];
        kernels::simd_matmul_acc(&a, &b, &mut c, m, k, n);
        c.iter().map(|x| x.to_bits()).collect()
    };
    for width in [2, 4] {
        pool::set_threads(width);
        let mut c = vec![0.0f32; m * n];
        kernels::simd_matmul_acc(&a, &b, &mut c, m, k, n);
        let bits: Vec<u32> = c.iter().map(|x| x.to_bits()).collect();
        assert_eq!(reference, bits, "width {width} changed the result");
    }
    pool::set_threads(1);
}

#[test]
fn transpose_is_exact_on_awkward_shapes() {
    let mut rng = Lcg(11);
    for &(m, n) in &[(1usize, 1usize), (3, 129), (33, 65), (64, 64), (70, 190)] {
        let src = rng.vec(m * n);
        let mut dst = vec![0.0f32; m * n];
        kernels::transpose(&src, &mut dst, m, n);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(dst[j * m + i].to_bits(), src[i * n + j].to_bits());
            }
        }
    }
}
