//! Property-based tests for autograd invariants.

use proptest::prelude::*;
use rckt_tensor::{sigmoid, Graph, Shape};

fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, n)
}

proptest! {
    /// Softmax rows always sum to 1 and stay in (0, 1).
    #[test]
    fn softmax_is_a_distribution(data in vec_strategy(12)) {
        let mut g = Graph::new();
        let x = g.input(data, Shape::matrix(3, 4));
        let s = g.softmax_last(x);
        for row in g.data(s).chunks(4) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for &v in row {
                prop_assert!(v > 0.0 && v < 1.0);
            }
        }
    }

    /// d(sum(c * x))/dx == c for every element (linearity of backward).
    #[test]
    fn backward_is_linear(data in vec_strategy(8), c in -5.0f32..5.0) {
        let mut g = Graph::new();
        let x = g.leaf_grad(data, Shape::matrix(2, 4));
        let y = g.mul_scalar(x, c);
        let loss = g.sum_all(y);
        g.backward(loss);
        for &gv in g.grad(x) {
            prop_assert!((gv - c).abs() < 1e-5);
        }
    }

    /// Gradients accumulate across fan-out: loss = sum(x) + sum(x) gives 2s.
    #[test]
    fn grad_accumulates_over_fanout(data in vec_strategy(6)) {
        let mut g = Graph::new();
        let x = g.leaf_grad(data, Shape::matrix(2, 3));
        let s1 = g.sum_all(x);
        let s2 = g.sum_all(x);
        let loss = g.add(s1, s2);
        g.backward(loss);
        for &gv in g.grad(x) {
            prop_assert!((gv - 2.0).abs() < 1e-5);
        }
    }

    /// transpose(transpose(x)) == x.
    #[test]
    fn transpose_is_involutive(data in vec_strategy(12)) {
        let mut g = Graph::new();
        let x = g.input(data.clone(), Shape::matrix(3, 4));
        let t = g.transpose(x);
        let tt = g.transpose(t);
        prop_assert_eq!(g.data(tt), &data[..]);
    }

    /// reshape preserves data exactly.
    #[test]
    fn reshape_preserves_data(data in vec_strategy(12)) {
        let mut g = Graph::new();
        let x = g.input(data.clone(), Shape::matrix(3, 4));
        let r = g.reshape(x, Shape::cube(2, 2, 3));
        prop_assert_eq!(g.data(r), &data[..]);
    }

    /// concat_cols then matching slice_cols round-trips both halves.
    #[test]
    fn concat_slice_roundtrip(a in vec_strategy(6), b in vec_strategy(4)) {
        let mut g = Graph::new();
        let at = g.input(a.clone(), Shape::matrix(2, 3));
        let bt = g.input(b.clone(), Shape::matrix(2, 2));
        let c = g.concat_cols(at, bt);
        let a2 = g.slice_cols(c, 0, 3);
        let b2 = g.slice_cols(c, 3, 5);
        prop_assert_eq!(g.data(a2), &a[..]);
        prop_assert_eq!(g.data(b2), &b[..]);
    }

    /// sigmoid stays in (0,1) and is monotone.
    #[test]
    fn sigmoid_properties(x in -50.0f32..50.0, dx in 0.001f32..5.0) {
        let s1 = sigmoid(x);
        let s2 = sigmoid(x + dx);
        prop_assert!((0.0..=1.0).contains(&s1));
        prop_assert!(s2 >= s1);
    }

    /// matmul distributes over addition: (A+B)·C == A·C + B·C.
    #[test]
    fn matmul_distributes(a in vec_strategy(6), b in vec_strategy(6), c in vec_strategy(6)) {
        let mut g = Graph::new();
        let at = g.input(a, Shape::matrix(2, 3));
        let bt = g.input(b, Shape::matrix(2, 3));
        let ct = g.input(c, Shape::matrix(3, 2));
        let sum = g.add(at, bt);
        let lhs = g.matmul(sum, ct);
        let ac = g.matmul(at, ct);
        let bc = g.matmul(bt, ct);
        let rhs = g.add(ac, bc);
        for (l, r) in g.data(lhs).iter().zip(g.data(rhs)) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    /// bmm on a batch of 1 equals plain matmul.
    #[test]
    fn bmm_batch1_equals_matmul(a in vec_strategy(6), b in vec_strategy(8)) {
        let mut g = Graph::new();
        let a2 = g.input(a.clone(), Shape::matrix(3, 2));
        let b2 = g.input(b.clone(), Shape::matrix(2, 4));
        let mm = g.matmul(a2, b2);
        let a3 = g.input(a, Shape::cube(1, 3, 2));
        let b3 = g.input(b, Shape::cube(1, 2, 4));
        let bm = g.bmm(a3, b3);
        prop_assert_eq!(g.data(mm), g.data(bm));
    }
}
