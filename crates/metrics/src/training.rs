//! Training-control utilities: early stopping and fold aggregation.

/// Early stopping on a maximized validation metric (the paper stops after
/// 10 epochs without improvement).
#[derive(Clone, Debug)]
pub struct EarlyStopping {
    pub patience: usize,
    best: f64,
    best_epoch: usize,
    epoch: usize,
    stale: usize,
}

impl EarlyStopping {
    pub fn new(patience: usize) -> Self {
        EarlyStopping {
            patience,
            best: f64::NEG_INFINITY,
            best_epoch: 0,
            epoch: 0,
            stale: 0,
        }
    }

    /// The paper's setting (patience = 10).
    pub fn paper() -> Self {
        Self::new(10)
    }

    /// Record an epoch's validation metric. Returns `true` when this epoch
    /// improved the best value.
    pub fn update(&mut self, metric: f64) -> bool {
        self.epoch += 1;
        if metric > self.best {
            self.best = metric;
            self.best_epoch = self.epoch;
            self.stale = 0;
            true
        } else {
            self.stale += 1;
            false
        }
    }

    pub fn should_stop(&self) -> bool {
        self.stale >= self.patience
    }

    pub fn best(&self) -> f64 {
        self.best
    }

    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

/// Mean and standard deviation of a per-fold metric, as reported in the
/// paper's tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FoldSummary {
    pub mean: f64,
    pub std: f64,
    pub n: usize,
}

impl FoldSummary {
    pub fn of(values: &[f64]) -> Self {
        let (mean, var) = crate::stats_tests::mean_var(values);
        FoldSummary {
            mean,
            std: var.sqrt(),
            n: values.len(),
        }
    }
}

impl std::fmt::Display for FoldSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_stopping_triggers_after_patience() {
        let mut es = EarlyStopping::new(3);
        assert!(es.update(0.70));
        assert!(es.update(0.75));
        assert!(!es.update(0.74));
        assert!(!es.update(0.73));
        assert!(!es.should_stop());
        assert!(!es.update(0.72));
        assert!(es.should_stop());
        assert_eq!(es.best(), 0.75);
        assert_eq!(es.best_epoch(), 2);
    }

    #[test]
    fn improvement_resets_patience() {
        let mut es = EarlyStopping::new(2);
        es.update(0.5);
        es.update(0.4);
        es.update(0.6); // reset
        es.update(0.5);
        assert!(!es.should_stop());
        es.update(0.5);
        assert!(es.should_stop());
    }

    #[test]
    fn fold_summary_values() {
        let s = FoldSummary::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
        assert_eq!(format!("{s}"), "2.0000 ± 1.0000");
    }
}
