//! Binary-classification metrics used throughout the paper (AUC, ACC) plus
//! companions (RMSE, F1, log-loss).

/// Area under the ROC curve via the Mann–Whitney U statistic, with proper
/// handling of tied scores (ties contribute half).
///
/// Returns 0.5 when either class is empty (chance level).
///
/// ```
/// use rckt_metrics::auc;
/// let perfect = auc(&[0.1, 0.9], &[false, true]);
/// assert_eq!(perfect, 1.0);
/// let chance = auc(&[0.5, 0.5], &[false, true]);
/// assert_eq!(chance, 0.5);
/// ```
pub fn auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank-sum approach: sort by score, assign average ranks to ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // ranks are 1-based; ties share the average rank
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Accuracy at threshold `tau` (paper uses 0.5 on probabilities, 0.0 on
/// RCKT's influence margins).
pub fn accuracy(scores: &[f32], labels: &[bool], tau: f32) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if scores.is_empty() {
        return 0.0;
    }
    let hits = scores
        .iter()
        .zip(labels)
        .filter(|(&s, &l)| (s >= tau) == l)
        .count();
    hits as f64 / scores.len() as f64
}

/// Root mean squared error between probabilities and 0/1 labels.
pub fn rmse(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if scores.is_empty() {
        return 0.0;
    }
    let mse: f64 = scores
        .iter()
        .zip(labels)
        .map(|(&s, &l)| {
            let d = s as f64 - (l as u8) as f64;
            d * d
        })
        .sum::<f64>()
        / scores.len() as f64;
    mse.sqrt()
}

/// F1 score of the positive class at threshold `tau`.
pub fn f1(scores: &[f32], labels: &[bool], tau: f32) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let (mut tp, mut fp, mut fun) = (0usize, 0usize, 0usize);
    for (&s, &l) in scores.iter().zip(labels) {
        match (s >= tau, l) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fun += 1,
            (false, false) => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fun) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Expected calibration error with equal-width probability bins: the
/// prediction-weighted mean |confidence − observed rate| over bins.
///
/// ```
/// use rckt_metrics::ece;
/// // perfectly calibrated: predicted 0.5 on a 50/50 outcome
/// let e = ece(&[0.5, 0.5], &[true, false], 10);
/// assert!(e < 1e-9);
/// // badly calibrated: says 0.9 but only half are correct
/// let e = ece(&[0.9, 0.9], &[true, false], 10);
/// assert!((e - 0.4).abs() < 1e-6);
/// ```
pub fn ece(probs: &[f32], labels: &[bool], bins: usize) -> f64 {
    assert_eq!(probs.len(), labels.len());
    assert!(bins >= 1);
    if probs.is_empty() {
        return 0.0;
    }
    let mut sum_p = vec![0.0f64; bins];
    let mut sum_y = vec![0.0f64; bins];
    let mut count = vec![0usize; bins];
    for (&p, &l) in probs.iter().zip(labels) {
        let b = ((p as f64 * bins as f64) as usize).min(bins - 1);
        sum_p[b] += p as f64;
        sum_y[b] += l as u8 as f64;
        count[b] += 1;
    }
    let n = probs.len() as f64;
    (0..bins)
        .filter(|&b| count[b] > 0)
        .map(|b| {
            let conf = sum_p[b] / count[b] as f64;
            let acc = sum_y[b] / count[b] as f64;
            (count[b] as f64 / n) * (conf - acc).abs()
        })
        .sum()
}

/// Mean negative log-likelihood of probabilities against labels.
pub fn log_loss(probs: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-7f64;
    probs
        .iter()
        .zip(labels)
        .map(|(&p, &l)| {
            let p = (p as f64).clamp(eps, 1.0 - eps);
            if l {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum::<f64>()
        / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(auc(&scores, &labels), 1.0);
        let inv = [true, true, false, false];
        assert_eq!(auc(&scores, &inv), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // All scores tied -> AUC 0.5 by tie handling.
        let scores = [0.5; 6];
        let labels = [true, false, true, false, true, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn auc_handles_partial_ties() {
        let scores = [0.3, 0.3, 0.7];
        let labels = [false, true, true];
        // pairs: (0.3F vs 0.3T) tie = 0.5, (0.3F vs 0.7T) win = 1 → (1.5)/2
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_thresholds() {
        let scores = [0.2, 0.6, 0.4, 0.9];
        let labels = [false, true, true, true];
        assert!((accuracy(&scores, &labels, 0.5) - 0.75).abs() < 1e-12);
        assert!((accuracy(&scores, &labels, 0.3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_bounds() {
        assert_eq!(rmse(&[1.0, 0.0], &[true, false]), 0.0);
        assert_eq!(rmse(&[0.0, 1.0], &[true, false]), 1.0);
    }

    #[test]
    fn f1_known_value() {
        let scores = [0.9, 0.9, 0.1, 0.9];
        let labels = [true, false, true, true];
        // tp=2 fp=1 fn=1 -> p=2/3 r=2/3 -> f1=2/3
        assert!((f1(&scores, &labels, 0.5) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_degenerate_no_positives_predicted() {
        assert_eq!(f1(&[0.1, 0.2], &[true, true], 0.5), 0.0);
    }

    #[test]
    fn ece_bins_and_edge_cases() {
        assert_eq!(ece(&[], &[], 10), 0.0);
        // p = 1.0 lands in the last bin, no panic
        let e = ece(&[1.0, 0.0], &[true, false], 5);
        assert!(e < 1e-9);
        // mixed bins weight by population
        let probs = [0.1, 0.1, 0.9, 0.9];
        let labels = [false, false, true, false];
        // bin(0.1): conf 0.1 acc 0 -> 0.1 * 1/2 weight... compute: each bin
        // holds half the points; |0.1-0| = 0.1 and |0.9-0.5| = 0.4
        let e = ece(&probs, &labels, 10);
        assert!((e - (0.5 * 0.1 + 0.5 * 0.4)).abs() < 1e-6, "{e}");
    }

    #[test]
    fn log_loss_prefers_confident_truth() {
        let good = log_loss(&[0.9, 0.1], &[true, false]);
        let bad = log_loss(&[0.6, 0.4], &[true, false]);
        assert!(good < bad);
    }
}
