//! # rckt-metrics
//!
//! Evaluation metrics and training-control utilities for the RCKT
//! knowledge-tracing reproduction: AUC/ACC/RMSE/F1/log-loss, Welch's t-test
//! for the paper's significance stars, early stopping (patience 10) and
//! per-fold aggregation.

pub mod classification;
pub mod stats_tests;
pub mod training;

pub use classification::{accuracy, auc, ece, f1, log_loss, rmse};
pub use stats_tests::{mean_var, std_dev, welch_t_test, TestResult};
pub use training::{EarlyStopping, FoldSummary};
