//! Statistical significance tests (the paper reports T-test p ≤ 0.01 against
//! the best baseline over cross-validation folds).

/// Result of a two-sample test.
#[derive(Clone, Copy, Debug)]
pub struct TestResult {
    pub t_statistic: f64,
    pub degrees_of_freedom: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Welch's unequal-variance t-test on two samples.
///
/// Returns `None` when either sample has fewer than 2 points or both
/// variances are zero.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, va) = mean_var(a);
    let (mb, vb) = mean_var(b);
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return if ma == mb {
            Some(TestResult {
                t_statistic: 0.0,
                degrees_of_freedom: na + nb - 2.0,
                p_value: 1.0,
            })
        } else {
            Some(TestResult {
                t_statistic: f64::INFINITY,
                degrees_of_freedom: na + nb - 2.0,
                p_value: 0.0,
            })
        };
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2
        / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0)).max(f64::MIN_POSITIVE);
    let p = 2.0 * student_t_sf(t.abs(), df);
    Some(TestResult {
        t_statistic: t,
        degrees_of_freedom: df,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Sample mean and (unbiased) variance.
pub fn mean_var(x: &[f64]) -> (f64, f64) {
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    if x.len() < 2 {
        return (mean, 0.0);
    }
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// Sample standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    mean_var(x).1.sqrt()
}

/// Survival function of Student's t distribution: `P(T > t)` for `t >= 0`,
/// via the regularized incomplete beta function.
fn student_t_sf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    0.5 * reg_inc_beta(df / 2.0, 0.5, x)
}

/// Regularized incomplete beta `I_x(a, b)` by the Lentz continued fraction
/// (Numerical Recipes §6.4).
fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 1e-12;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Log-gamma by the Lanczos approximation.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for gi in G {
        y += 1.0;
        ser += gi / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-9);
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(0.5) - (std::f64::consts::PI.sqrt()).ln()).abs() < 1e-9);
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [0.78, 0.79, 0.80, 0.81, 0.79];
        let r = welch_t_test(&a, &a).unwrap();
        assert!((r.t_statistic).abs() < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn clearly_different_samples_significant() {
        let a = [0.795, 0.792, 0.798, 0.794, 0.796];
        let b = [0.780, 0.778, 0.783, 0.781, 0.779];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        assert!(r.t_statistic > 0.0);
    }

    #[test]
    fn p_value_reference_check() {
        // t = 2.0, df = 10: two-sided p ≈ 0.0734 (tables).
        let p = 2.0 * student_t_sf(2.0, 10.0);
        assert!((p - 0.0734).abs() < 0.002, "p = {p}");
        // t = 2.228, df = 10 is the classic 5% two-sided critical value.
        let p = 2.0 * student_t_sf(2.228, 10.0);
        assert!((p - 0.05).abs() < 0.002, "p = {p}");
    }

    #[test]
    fn too_small_samples_rejected() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn zero_variance_distinct_means() {
        let r = welch_t_test(&[1.0, 1.0], &[2.0, 2.0]).unwrap();
        assert_eq!(r.p_value, 0.0);
    }
}
