//! Property-based tests for metric invariants.

use proptest::prelude::*;
use rckt_metrics::{accuracy, auc, log_loss, rmse, welch_t_test};

fn scores_labels() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    proptest::collection::vec((0.0f32..1.0, any::<bool>()), 2..60)
        .prop_map(|v| v.into_iter().unzip())
}

proptest! {
    /// AUC is invariant under strictly monotone transforms of the scores.
    #[test]
    fn auc_invariant_under_monotone_transform((scores, labels) in scores_labels()) {
        let a1 = auc(&scores, &labels);
        let transformed: Vec<f32> = scores.iter().map(|&s| (3.0 * s + 1.0).exp()).collect();
        let a2 = auc(&transformed, &labels);
        prop_assert!((a1 - a2).abs() < 1e-9);
    }

    /// Flipping all labels mirrors AUC around 0.5.
    #[test]
    fn auc_label_flip_symmetry((scores, labels) in scores_labels()) {
        let a1 = auc(&scores, &labels);
        let flipped: Vec<bool> = labels.iter().map(|l| !l).collect();
        let a2 = auc(&scores, &flipped);
        prop_assert!((a1 + a2 - 1.0).abs() < 1e-9);
    }

    /// All metrics stay in their documented ranges.
    #[test]
    fn metric_ranges((scores, labels) in scores_labels()) {
        let a = auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&a));
        let acc = accuracy(&scores, &labels, 0.5);
        prop_assert!((0.0..=1.0).contains(&acc));
        let r = rmse(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&r));
        let ll = log_loss(&scores, &labels);
        prop_assert!(ll >= 0.0);
    }

    /// Welch's t-test is antisymmetric in its arguments: swapping samples
    /// flips the t sign but preserves the p-value.
    #[test]
    fn welch_swap_symmetry(
        a in proptest::collection::vec(-2.0f64..2.0, 3..20),
        b in proptest::collection::vec(-2.0f64..2.0, 3..20),
    ) {
        if let (Some(r1), Some(r2)) = (welch_t_test(&a, &b), welch_t_test(&b, &a)) {
            prop_assert!((r1.t_statistic + r2.t_statistic).abs() < 1e-9);
            prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&r1.p_value));
        }
    }

    /// Accuracy of perfect probabilities is 1.
    #[test]
    fn perfect_predictions(labels in proptest::collection::vec(any::<bool>(), 1..40)) {
        let scores: Vec<f32> = labels.iter().map(|&l| if l { 0.99 } else { 0.01 }).collect();
        prop_assert_eq!(accuracy(&scores, &labels, 0.5), 1.0);
        if labels.iter().any(|&l| l) && labels.iter().any(|&l| !l) {
            prop_assert_eq!(auc(&scores, &labels), 1.0);
        }
    }
}
