//! # rckt-bench
//!
//! Shared harness for the experiment binaries (one per paper table/figure,
//! see `DESIGN.md` §3) and the Criterion benchmarks.

pub mod args;
pub mod harness;
pub mod regress;

pub use args::ExpArgs;
pub use harness::{
    build_model, evaluate_last_any, evaluate_stride_any, fit_and_eval, last_target_predictions,
    BuiltModel, ModelSpec, RunResult,
};
