//! Kernel scaling sweep: matmul throughput across thread counts × shapes ×
//! kernel variants (naive reference vs blocked vs simd), appended to the
//! perf-trajectory history like every other bench bin.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin kernel_scaling [--threads n ...]
//! ```
//!
//! Shapes cover the sizes RCKT actually runs: `[B*T, d] × [d, d]` encoder
//! projections (tall-skinny), the window-length GEMMs `predict_targets`
//! issues per counterfactual fan-out, and square attention-score products.
//! The naive variant is always single-threaded (it is the bit-exact
//! reference path); the blocked and simd variants use the pool, so their
//! rows show the thread scaling.
//!
//! Every manifest records the kernel variant *and* the detected CPU
//! features (`config.cpu`), so the `regress` gate groups runs per
//! (shape, kernel, threads, cpu) and never compares a naive run on one
//! machine against a simd run on another.

use rckt_bench::ExpArgs;
use rckt_tensor::kernels::{self, KernelVariant};
use rckt_tensor::pool;
use std::time::Instant;

/// Per-run manifest history (one JSON object per line).
const HISTORY: &str = "results/BENCH_kernel_scaling.json";

/// `(m, k, n)` shapes swept, roughly small → large.
///
/// The RCKT-shaped entries mirror the GEMMs `predict_targets` actually
/// issues: `200×32×32` is one max-length sequence against the default
/// `dim = 32` projection, `800×32×32` a batch-of-16 window fan-out
/// (16 × 50 rows), `800×128×128` the same at the paper's `d = 128`, and
/// `200×128×200` the `Q·Kᵀ` attention-score product for a full-length
/// sequence.
const SHAPES: [(usize, usize, usize); 8] = [
    (64, 64, 64),
    (200, 32, 32), // max_len rows × default dim projection
    (800, 32, 32), // B=16 × T=50 fan-out rows, default dim
    (256, 128, 128),
    (800, 64, 64),   // B=16 × T=50 rows against a d=64 projection
    (800, 128, 128), // fan-out rows at the paper's d=128
    (200, 128, 200), // attention scores Q·Kᵀ at max_len
    (384, 384, 384),
];

/// Flops we aim to spend per timed measurement (keeps reps sane across
/// shape sizes).
const TARGET_FLOPS: f64 = 2e8;

fn fill(seed: &mut u64, buf: &mut [f32]) {
    // xorshift64* — cheap deterministic data, values in [-0.5, 0.5)
    for x in buf.iter_mut() {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *x = ((*seed >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
    }
}

fn gflops(m: usize, k: usize, n: usize, variant: KernelVariant, threads: usize) -> (f64, f64) {
    kernels::set_kernel_variant(variant);
    pool::set_threads(threads);
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    let mut c = vec![0.0f32; m * n];
    fill(&mut seed, &mut a);
    fill(&mut seed, &mut b);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let reps = (TARGET_FLOPS / flops).ceil().max(1.0) as usize;
    // warm up (resolves the pool width, faults in the buffers)
    kernels::matmul_acc(&a, &b, &mut c, m, k, n);
    let t0 = Instant::now();
    for _ in 0..reps {
        kernels::matmul_acc(&a, &b, &mut c, m, k, n);
    }
    let secs = t0.elapsed().as_secs_f64();
    assert!(c.iter().all(|x| x.is_finite()));
    let ms = secs * 1000.0 / reps as f64;
    (flops * reps as f64 / secs / 1e9, ms)
}

fn main() {
    let args = ExpArgs::parse();
    let hw = args.threads_in_use();
    let cpu = kernels::cpu_features();
    // Cores the OS actually exposes to this process. When a container
    // pins us to one core, multi-thread rows measure scheduler contention
    // rather than scaling — those rows are tagged `scaling=unmeasurable`
    // (a distinct regress group) so they never gate, while single-thread
    // rows keep their historical group keys.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut thread_counts = vec![1usize, 2, 4];
    if !thread_counts.contains(&hw) {
        thread_counts.push(hw);
    }
    thread_counts.sort_unstable();

    println!(
        "kernel scaling — matmul GFLOP/s (naive reference vs blocked vs simd), \
         hw width {hw}, {cores} core(s) exposed, cpu {cpu}\n"
    );
    println!(
        "{:<16}{:>10}{:>9}{:>12}{:>12}",
        "shape (m,k,n)", "variant", "threads", "GFLOP/s", "ms/call"
    );

    for &(m, k, n) in &SHAPES {
        let (naive_gf, naive_ms) = gflops(m, k, n, KernelVariant::Naive, 1);
        println!(
            "{:<16}{:>10}{:>9}{:>12.2}{:>12.3}",
            format!("{m}x{k}x{n}"),
            "naive",
            1,
            naive_gf,
            naive_ms
        );
        record(&args, cores, m, k, n, "naive", 1, naive_gf, naive_ms, 1.0);
        for variant in [KernelVariant::Blocked, KernelVariant::Simd] {
            let name = match variant {
                KernelVariant::Blocked => "blocked",
                _ => "simd",
            };
            for &t in &thread_counts {
                let (gf, ms) = gflops(m, k, n, variant, t);
                let speedup = naive_ms / ms;
                println!(
                    "{:<16}{:>10}{:>9}{:>12.2}{:>12.3}   ({speedup:.2}x vs naive)",
                    "", name, t, gf, ms
                );
                record(&args, cores, m, k, n, name, t, gf, ms, speedup);
            }
        }
    }
    // restore the CLI-requested width for anything running after us
    pool::set_threads(hw);

    println!("\nresults appended to {HISTORY}");
    args.finish();
}

#[allow(clippy::too_many_arguments)]
fn record(
    args: &ExpArgs,
    cores: usize,
    m: usize,
    k: usize,
    n: usize,
    variant: &str,
    threads: usize,
    gf: f64,
    ms: f64,
    speedup_vs_naive: f64,
) {
    let mut manifest = rckt_obs::RunManifest::capture("kernel_scaling", args.seed, None)
        .config("shape", format!("{m}x{k}x{n}"))
        .config("kernel", variant)
        .config("threads", threads)
        .config("cpu", kernels::cpu_features())
        // Directionless result (no gate), so the exposed core count is
        // visible in every history row without changing group keys.
        .result("cores_detected", cores as f64)
        .result("gflops", gf)
        .result("ms_per_call", ms)
        .result("speedup_vs_naive", speedup_vs_naive);
    if threads > cores {
        // More worker threads than cores: the row is noise, not scaling.
        // The extra config fields give it its own regress group, keeping
        // measurable rows' group keys (and histories) untouched.
        manifest = manifest
            .config("scaling", "unmeasurable")
            .config("cores", cores);
    }
    if let Err(e) = manifest.append_jsonl(HISTORY) {
        eprintln!("warning: cannot append {HISTORY}: {e}");
    }
}
