//! Online-serving latency benchmark: start an in-process `rckt-serve`
//! instance over a freshly built model, fire concurrent `/predict` and
//! `/explain` requests from client threads, and append p50/p99 latency +
//! throughput (and the cache-hit rate of a repeat pass) to the
//! `results/BENCH_serve.json` perf-trajectory history. A third section
//! measures the quality-monitor layer in isolation — per-event ingest
//! cost and `/feedback` endpoint latency — so the monitoring overhead is
//! visible in the history (reported, not gated: `ns`/`us` metrics carry
//! no regress direction).
//!
//! ```text
//! cargo run --release -p rckt-bench --bin serve_latency [--scale f] [--dim n]
//! ```

use rckt::{Backbone, Rckt, RcktConfig};
use rckt_bench::ExpArgs;
use rckt_data::preprocess::windows;
use rckt_data::SyntheticSpec;
use rckt_serve::{Engine, HistoryItem, PredictBody, PredictRequest, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

/// Per-run manifest history (one JSON object per line).
const HISTORY: &str = "results/BENCH_serve.json";

/// Client threads firing requests concurrently.
const CLIENTS: usize = 4;
/// Requests per client and pass.
const PER_CLIENT: usize = 25;

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Fire `CLIENTS × PER_CLIENT` requests; returns (per-request ms, wall s).
fn run_pass(port: u16, bodies: &[String]) -> (Vec<f64>, f64) {
    let bodies = Arc::new(bodies.to_vec());
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let bodies = Arc::clone(&bodies);
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(PER_CLIENT);
            for i in 0..PER_CLIENT {
                let body = &bodies[(c * PER_CLIENT + i) % bodies.len()];
                let r0 = Instant::now();
                let (status, _) =
                    rckt_serve::http_request(port, "POST", "/predict", body).expect("request");
                assert!(status.contains("200"), "predict failed: {status}");
                lat.push(r0.elapsed().as_secs_f64() * 1000.0);
            }
            lat
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("client thread"));
    }
    let wall = t0.elapsed().as_secs_f64();
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (all, wall)
}

fn main() {
    let args = ExpArgs::parse();
    let ds = SyntheticSpec::assist09()
        .scaled(args.scale * 0.1)
        .generate();
    let model = Rckt::new(
        Backbone::Dkt,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: args.dim,
            seed: args.seed,
            ..Default::default()
        },
    );
    let json = model.export_with_qmatrix(&ds.q_matrix);
    let cfg = ServeConfig {
        max_batch: args.batch.max(1),
        max_queue: 256,
        ..Default::default()
    };
    let engine = Arc::new(Engine::from_json(&json, &cfg).expect("engine"));
    let server = rckt_serve::start(Arc::clone(&engine), &cfg).expect("bind");
    let port = server.port();

    // Distinct single-request bodies drawn from real windows so the cold
    // pass is all cache misses and the repeat pass is all hits.
    let ws = windows(&ds, cfg.window, 5);
    let bodies: Vec<String> = ws
        .iter()
        .take(CLIENTS * PER_CLIENT)
        .map(|w| {
            let n = w.len.min(cfg.window - 1);
            let req = PredictRequest {
                student: w.student,
                history: (0..n.saturating_sub(1))
                    .map(|t| HistoryItem {
                        question: w.questions[t],
                        correct: w.correct[t] != 0,
                    })
                    .collect(),
                target_question: w.questions[n.saturating_sub(1)],
            };
            serde_json::to_string(&PredictBody {
                requests: vec![req],
                deadline_ms: None,
            })
            .unwrap()
        })
        .collect();
    assert!(!bodies.is_empty(), "dataset produced no windows");

    println!(
        "serve latency — {} distinct bodies, {CLIENTS} clients × {PER_CLIENT} reqs/pass, max_batch {}",
        bodies.len(),
        cfg.max_batch
    );
    let (cold, cold_wall) = run_pass(port, &bodies);
    let (warm, warm_wall) = run_pass(port, &bodies);
    let (hits, misses) = engine.cache.stats();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    // Monitor overhead, measured two ways: the raw quality-layer ingest
    // path (what every /predict pays per response item), and the
    // /feedback endpoint end-to-end.
    const INGEST_EVENTS: usize = 10_000;
    let t0 = Instant::now();
    for i in 0..INGEST_EVENTS {
        engine
            .quality
            .observe(rckt_obs::QualityEvent::Score((i % 100) as f64 / 100.0));
    }
    let ingest_ns_per_event = t0.elapsed().as_secs_f64() * 1e9 / INGEST_EVENTS as f64;

    const FEEDBACK_REQS: usize = 50;
    let fb_body = {
        let events: Vec<String> = (0..8)
            .map(|i| {
                format!(
                    "{{\"score\":{},\"correct\":{}}}",
                    (i as f64) / 8.0,
                    i % 2 == 0
                )
            })
            .collect();
        format!("{{\"events\":[{}]}}", events.join(","))
    };
    let mut fb_lat = Vec::with_capacity(FEEDBACK_REQS);
    for _ in 0..FEEDBACK_REQS {
        let r0 = Instant::now();
        let (status, _) =
            rckt_serve::http_request(port, "POST", "/feedback", &fb_body).expect("feedback");
        assert!(status.contains("200"), "feedback failed: {status}");
        fb_lat.push(r0.elapsed().as_secs_f64() * 1000.0);
    }
    fb_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let feedback_p50_us = quantile(&fb_lat, 0.50) * 1e3;

    server.stop();

    let total = (CLIENTS * PER_CLIENT) as f64;
    let rows = [("cold", &cold, cold_wall), ("warm", &warm, warm_wall)];
    println!(
        "{:<8}{:>12}{:>12}{:>16}",
        "pass", "p50 ms", "p99 ms", "throughput r/s"
    );
    for (pass, lat, wall) in rows {
        let p50 = quantile(lat, 0.50);
        let p99 = quantile(lat, 0.99);
        let rps = total / wall;
        println!("{pass:<8}{p50:>12.3}{p99:>12.3}{rps:>16.1}");
        let manifest = rckt_obs::RunManifest::capture("serve_latency", args.seed, None)
            .config("pass", pass)
            .config("clients", CLIENTS)
            .config("max_batch", cfg.max_batch)
            .result("p50_ms", p50)
            .result("p99_ms", p99)
            .result("throughput_rps", rps)
            .result("cache_hit_rate", hit_rate);
        if let Err(e) = manifest.append_jsonl(HISTORY) {
            eprintln!("warning: cannot append {HISTORY}: {e}");
        }
    }
    println!(
        "cache hit rate across both passes: {:.1}%",
        hit_rate * 100.0
    );
    println!(
        "monitor overhead: {ingest_ns_per_event:.0} ns/ingest, /feedback p50 {feedback_p50_us:.1} µs (8 events/req)"
    );
    let monitor_manifest = rckt_obs::RunManifest::capture("serve_latency", args.seed, None)
        .config("pass", "monitor")
        .config("clients", CLIENTS)
        .config("max_batch", cfg.max_batch)
        .result("monitor_ingest_ns_per_event", ingest_ns_per_event)
        .result("feedback_p50_us", feedback_p50_us);
    if let Err(e) = monitor_manifest.append_jsonl(HISTORY) {
        eprintln!("warning: cannot append {HISTORY}: {e}");
    }
    assert!(
        hit_rate > 0.0,
        "the warm pass repeats every body — cache hits must be nonzero"
    );

    println!("\nresults appended to {HISTORY}");
    args.finish();
}
