//! Online-serving latency benchmark: start an in-process `rckt-serve`
//! instance over a freshly built model, fire concurrent `/predict` and
//! `/explain` requests from client threads, and append p50/p99 latency +
//! throughput (and the cache-hit rate of a repeat pass) to the
//! `results/BENCH_serve.json` perf-trajectory history. A third section
//! measures the quality-monitor layer in isolation — per-event ingest
//! cost and `/feedback` endpoint latency — so the monitoring overhead is
//! visible in the history (reported, not gated: `ns`/`us` metrics carry
//! no regress direction).
//!
//! ```text
//! cargo run --release -p rckt-bench --bin serve_latency [--scale f] [--dim n]
//! ```

use rckt::{Backbone, IncrementalState, Rckt, RcktConfig};
use rckt_bench::ExpArgs;
use rckt_data::preprocess::windows;
use rckt_data::SyntheticSpec;
use rckt_serve::{Engine, HistoryItem, PredictBody, PredictRequest, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

/// Per-run manifest history (one JSON object per line).
const HISTORY: &str = "results/BENCH_serve.json";

/// Client threads firing requests concurrently.
const CLIENTS: usize = 4;
/// Requests per client and pass.
const PER_CLIENT: usize = 25;

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Fire `CLIENTS × PER_CLIENT` requests; returns (per-request ms, wall s).
fn run_pass(port: u16, bodies: &[String]) -> (Vec<f64>, f64) {
    let bodies = Arc::new(bodies.to_vec());
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let bodies = Arc::clone(&bodies);
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(PER_CLIENT);
            for i in 0..PER_CLIENT {
                let body = &bodies[(c * PER_CLIENT + i) % bodies.len()];
                let r0 = Instant::now();
                let (status, _) =
                    rckt_serve::http_request(port, "POST", "/predict", body).expect("request");
                assert!(status.contains("200"), "predict failed: {status}");
                lat.push(r0.elapsed().as_secs_f64() * 1000.0);
            }
            lat
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("client thread"));
    }
    let wall = t0.elapsed().as_secs_f64();
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (all, wall)
}

fn main() {
    let args = ExpArgs::parse();
    let ds = SyntheticSpec::assist09()
        .scaled(args.scale * 0.1)
        .generate();
    let model = Rckt::new(
        Backbone::Dkt,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: args.dim,
            seed: args.seed,
            ..Default::default()
        },
    );
    let json = model.export_with_qmatrix(&ds.q_matrix);
    let cfg = ServeConfig {
        max_batch: args.batch.max(1),
        max_queue: 256,
        ..Default::default()
    };
    let engine = Arc::new(Engine::from_json(&json, &cfg).expect("engine"));
    let server = rckt_serve::start(Arc::clone(&engine), &cfg).expect("bind");
    let port = server.port();

    // Distinct single-request bodies drawn from real windows so the cold
    // pass is all cache misses and the repeat pass is all hits.
    let ws = windows(&ds, cfg.window, 5);
    let bodies: Vec<String> = ws
        .iter()
        .take(CLIENTS * PER_CLIENT)
        .map(|w| {
            let n = w.len.min(cfg.window - 1);
            let req = PredictRequest {
                student: w.student,
                history: (0..n.saturating_sub(1))
                    .map(|t| HistoryItem {
                        question: w.questions[t],
                        correct: w.correct[t] != 0,
                    })
                    .collect(),
                target_question: w.questions[n.saturating_sub(1)],
            };
            serde_json::to_string(&PredictBody {
                requests: vec![req],
                deadline_ms: None,
            })
            .unwrap()
        })
        .collect();
    assert!(!bodies.is_empty(), "dataset produced no windows");

    println!(
        "serve latency — {} distinct bodies, {CLIENTS} clients × {PER_CLIENT} reqs/pass, max_batch {}",
        bodies.len(),
        cfg.max_batch
    );
    let (cold, cold_wall) = run_pass(port, &bodies);
    let (warm, warm_wall) = run_pass(port, &bodies);
    let (hits, misses) = engine.cache.stats();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    // Monitor overhead, measured two ways: the raw quality-layer ingest
    // path (what every /predict pays per response item), and the
    // /feedback endpoint end-to-end.
    const INGEST_EVENTS: usize = 10_000;
    let t0 = Instant::now();
    for i in 0..INGEST_EVENTS {
        engine
            .quality
            .observe(rckt_obs::QualityEvent::Score((i % 100) as f64 / 100.0));
    }
    let ingest_ns_per_event = t0.elapsed().as_secs_f64() * 1e9 / INGEST_EVENTS as f64;

    const FEEDBACK_REQS: usize = 50;
    let fb_body = {
        let events: Vec<String> = (0..8)
            .map(|i| {
                format!(
                    "{{\"score\":{},\"correct\":{}}}",
                    (i as f64) / 8.0,
                    i % 2 == 0
                )
            })
            .collect();
        format!("{{\"events\":[{}]}}", events.join(","))
    };
    let mut fb_lat = Vec::with_capacity(FEEDBACK_REQS);
    for _ in 0..FEEDBACK_REQS {
        let r0 = Instant::now();
        let (status, _) =
            rckt_serve::http_request(port, "POST", "/feedback", &fb_body).expect("feedback");
        assert!(status.contains("200"), "feedback failed: {status}");
        fb_lat.push(r0.elapsed().as_secs_f64() * 1000.0);
    }
    fb_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let feedback_p50_us = quantile(&fb_lat, 0.50) * 1e3;

    server.stop();

    let total = (CLIENTS * PER_CLIENT) as f64;
    let rows = [("cold", &cold, cold_wall), ("warm", &warm, warm_wall)];
    println!(
        "{:<8}{:>12}{:>12}{:>16}",
        "pass", "p50 ms", "p99 ms", "throughput r/s"
    );
    for (pass, lat, wall) in rows {
        let p50 = quantile(lat, 0.50);
        let p99 = quantile(lat, 0.99);
        let rps = total / wall;
        println!("{pass:<8}{p50:>12.3}{p99:>12.3}{rps:>16.1}");
        let manifest = rckt_obs::RunManifest::capture("serve_latency", args.seed, None)
            .config("pass", pass)
            .config("clients", CLIENTS)
            .config("max_batch", cfg.max_batch)
            .result("p50_ms", p50)
            .result("p99_ms", p99)
            .result("throughput_rps", rps)
            .result("cache_hit_rate", hit_rate);
        if let Err(e) = manifest.append_jsonl(HISTORY) {
            eprintln!("warning: cannot append {HISTORY}: {e}");
        }
    }
    println!(
        "cache hit rate across both passes: {:.1}%",
        hit_rate * 100.0
    );
    println!(
        "monitor overhead: {ingest_ns_per_event:.0} ns/ingest, /feedback p50 {feedback_p50_us:.1} µs (8 events/req)"
    );
    let monitor_manifest = rckt_obs::RunManifest::capture("serve_latency", args.seed, None)
        .config("pass", "monitor")
        .config("clients", CLIENTS)
        .config("max_batch", cfg.max_batch)
        .result("monitor_ingest_ns_per_event", ingest_ns_per_event)
        .result("feedback_p50_us", feedback_p50_us);
    if let Err(e) = monitor_manifest.append_jsonl(HISTORY) {
        eprintln!("warning: cannot append {HISTORY}: {e}");
    }
    assert!(
        hit_rate > 0.0,
        "the warm pass repeats every body — cache hits must be nonzero"
    );

    // Flight-recorder overhead: the cost every served request pays to be
    // remembered by the postmortem ring. Measured as the per-call p50 of
    // `record_request` against a default-budget recorder under steady
    // eviction (the ring fills after the first few hundred records, so
    // the loop exercises encode + evict + push, the steady-state path).
    const RECORD_CALLS: usize = 10_000;
    let flight = rckt_obs::FlightRecorder::new(rckt_obs::FlightConfig::default());
    let mut rec_ns = Vec::with_capacity(RECORD_CALLS);
    for i in 0..RECORD_CALLS {
        let rec = rckt_obs::flight::RequestRecord {
            ts: 1_700_000_000.0 + i as f64,
            request_id: format!("bench-{i:06}"),
            method: "POST".to_string(),
            path: "/predict".to_string(),
            students: (i as u32 % 97).to_string(),
            queue_micros: 12,
            infer_micros: 340,
            total_micros: 360,
            batch_size: 1,
            status: 200,
            warm: "append".to_string(),
            shard: (i % 4).to_string(),
        };
        let r0 = Instant::now();
        flight.record_request(&rec);
        rec_ns.push(r0.elapsed().as_secs_f64() * 1e9);
    }
    rec_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let recorder_ns_per_request_p50 = quantile(&rec_ns, 0.50);
    println!(
        "flight recorder: {recorder_ns_per_request_p50:.0} ns/record_request p50 \
         ({RECORD_CALLS} calls, default ring budgets)"
    );
    // Acceptance: remembering a request must stay cheap next to serving
    // it — ≤2 µs p50 keeps the recorder invisible in request latency.
    assert!(
        recorder_ns_per_request_p50 <= 2_000.0,
        "flight recorder overhead p50 {recorder_ns_per_request_p50:.0} ns exceeds 2 µs budget"
    );
    let flight_manifest = rckt_obs::RunManifest::capture("serve_latency", args.seed, None)
        .config("pass", "flight")
        .config("calls", RECORD_CALLS)
        .result("recorder_ns_per_request_p50", recorder_ns_per_request_p50)
        .result("recorder_ns_per_request_p99", quantile(&rec_ns, 0.99));
    if let Err(e) = flight_manifest.append_jsonl(HISTORY) {
        eprintln!("warning: cannot append {HISTORY}: {e}");
    }

    // Warm-session series: incremental append-one inference vs the cold
    // full counterfactual fan-out, engine-level (no HTTP) so the numbers
    // isolate the model work the warm path saves. Uses a forward-only
    // encoder — the configuration that qualifies for the warm path — at
    // the window lengths live sessions actually reach.
    let uni = Rckt::new(
        Backbone::Dkt,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: args.dim,
            seed: args.seed,
            unidirectional: true,
            ..Default::default()
        },
    );
    let kernel = rckt_tensor::kernels::kernel_variant_name();
    println!("\nwarm-session series (kernel {kernel}, dim {})", args.dim);
    println!(
        "{:<8}{:>12}{:>14}{:>14}{:>16}",
        "window", "series", "p50 ms", "p99 ms", "speedup vs cold"
    );
    for &window_len in &[50usize, 100, 200] {
        let nq = ds.num_questions();
        let hist: Vec<(u32, bool)> = (0..window_len - 1)
            .map(|i| ((1 + (i * 5 + 2) % (nq - 1)) as u32, i % 4 != 1))
            .collect();
        let req = PredictRequest {
            student: 0,
            history: hist
                .iter()
                .map(|&(question, correct)| HistoryItem { question, correct })
                .collect(),
            target_question: 1,
        };

        // Cold: the exact path recomputes the full fan-out per request.
        let mut cold_ms = Vec::new();
        for _ in 0..10 {
            let r0 = Instant::now();
            let resp = rckt_serve::api::predict_batch(
                &uni,
                &ds.q_matrix,
                std::slice::from_ref(&req),
                window_len,
            )
            .expect("cold predict");
            assert!(resp.predictions[0].score.is_finite());
            cold_ms.push(r0.elapsed().as_secs_f64() * 1000.0);
        }
        cold_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

        // Warm: a resident state already holds all but the last response;
        // each timed iteration appends one response and reads the score
        // (the clone that restores the pre-append state is untimed).
        let mut base = IncrementalState::new(&uni, window_len).expect("forward-only model");
        let (&last, prefix) = hist.split_last().unwrap();
        base.append_responses(&uni, &ds.q_matrix, prefix)
            .expect("prefix install");
        let mut warm_ms = Vec::new();
        for _ in 0..50 {
            let mut s = base.clone();
            let r0 = Instant::now();
            s.append_response(&uni, &ds.q_matrix, last.0, last.1)
                .expect("append");
            assert!(s.score().is_finite());
            warm_ms.push(r0.elapsed().as_secs_f64() * 1000.0);
        }
        warm_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let cold_p50 = quantile(&cold_ms, 0.50);
        let warm_p50 = quantile(&warm_ms, 0.50);
        let speedup = cold_p50 / warm_p50.max(f64::MIN_POSITIVE);
        for (series, lat, speedup_col) in [
            ("cold_full", &cold_ms, None),
            ("warm_append", &warm_ms, Some(speedup)),
        ] {
            let p50 = quantile(lat, 0.50);
            let p99 = quantile(lat, 0.99);
            println!(
                "{window_len:<8}{series:>12}{p50:>14.4}{p99:>14.4}{:>16}",
                speedup_col.map_or_else(|| "-".to_string(), |s| format!("{s:.1}x"))
            );
            let mut manifest = rckt_obs::RunManifest::capture("serve_latency", args.seed, None)
                .config("series", series)
                .config("window", window_len)
                .config("kernel", kernel)
                .result("p50_ms", p50)
                .result("p99_ms", p99);
            if let Some(s) = speedup_col {
                manifest = manifest.result("speedup_vs_cold", s);
            }
            if let Err(e) = manifest.append_jsonl(HISTORY) {
                eprintln!("warning: cannot append {HISTORY}: {e}");
            }
        }
        if window_len == 200 {
            assert!(
                speedup >= 5.0,
                "acceptance: warm append-one at window 200 must be ≥5× faster \
                 (p50) than the cold fan-out, got {speedup:.1}x"
            );
        }
    }

    println!("\nresults appended to {HISTORY}");
    args.finish();
}
