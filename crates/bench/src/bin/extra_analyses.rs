//! Extension analyses the paper's introduction motivates: the forgetting
//! curve (influence magnitude vs response recency) and question value
//! (mean influence per question) extracted from a trained RCKT model.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin extra_analyses [--scale f ...]
//! ```

use rckt::analysis::{forgetting_curve, forgetting_slope, question_value, top_value_questions};
use rckt_bench::{build_model, BuiltModel, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{make_batches, KFold, SyntheticSpec};
use rckt_models::model::TrainConfig;

fn main() {
    let args = ExpArgs::parse();
    let ds = SyntheticSpec::assist09().scaled(args.scale).generate();
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let folds = KFold::paper(args.seed).split(ws.len());
    let fold = &folds[0];
    let cfg = TrainConfig {
        max_epochs: args.epochs,
        patience: args.patience,
        batch_size: args.batch,
        verbose: args.verbose,
        seed: args.seed,
        ..Default::default()
    };
    rckt_obs::event(
        rckt_obs::Level::Info,
        "extra.train",
        &[("model", "RCKT-DKT".into()), ("windows", ws.len().into())],
    );
    let mut built = build_model(ModelSpec::RcktDkt, &ds, &args, None);
    built.fit(&ws, fold, &ds, &cfg);
    let BuiltModel::Rckt(model) = built else {
        unreachable!()
    };

    // influence records over the test fold (final-response targets)
    let test = make_batches(&ws, &fold.test, &ds.q_matrix, args.batch);
    let mut records = Vec::new();
    let mut batch_refs = Vec::new();
    for b in &test {
        let targets: Vec<usize> = (0..b.batch).map(|bb| b.seq_len(bb) - 1).collect();
        records.push(model.influences(b, &targets));
        batch_refs.push(b);
    }

    println!("== forgetting curve (mean |influence| by lag from the target) ==");
    let all: Vec<&rckt::InfluenceRecord> = records.iter().flatten().collect();
    let curve = forgetting_curve(all.iter().copied());
    println!("{:>5}{:>12}{:>8}", "lag", "mean |Δ|", "n");
    for &(lag, mean, n) in curve.iter().take(20) {
        println!("{lag:>5}{mean:>12.4}{n:>8}");
    }
    let slope = forgetting_slope(&curve);
    println!(
        "weighted slope: {slope:+.5} per step ({})",
        if slope < 0.0 {
            "recent responses dominate — forgetting shape reproduced"
        } else {
            "no forgetting shape at this scale/training budget"
        }
    );

    println!("\n== question value (mean |influence| per question) ==");
    let mut merged: std::collections::HashMap<usize, (f64, usize)> = Default::default();
    for (recs, b) in records.iter().zip(&batch_refs) {
        for (q, (m, n)) in question_value(recs, b) {
            let e = merged.entry(q).or_insert((0.0, 0));
            e.0 += m * n as f64;
            e.1 += n;
        }
    }
    let merged: std::collections::HashMap<usize, (f64, usize)> = merged
        .into_iter()
        .map(|(q, (s, n))| (q, (s / n as f64, n)))
        .collect();
    let top = top_value_questions(&merged, 10, 2);
    println!("{:>9}{:>12}{:>12}", "question", "mean |Δ|", "concepts");
    for (q, v) in top {
        println!("{q:>9}{v:>12.4}    {:?}", ds.q_matrix.concepts_of(q as u32));
    }
    println!("\nHigh-value questions are candidates for question recommendation and");
    println!("question-bank construction (paper Sec. I).");
    args.finish();
}
