//! Table VI: RCKT before vs after the response influence approximation —
//! AUC/ACC and average per-student inference time, on the ASSIST09 preset
//! with the DKT and AKT encoders.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin table6_efficiency [--scale f ...]
//! ```

use rckt_bench::{build_model, BuiltModel, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{make_batches, KFold, SyntheticSpec};
use rckt_metrics::{accuracy, auc};
use rckt_models::model::TrainConfig;

/// Per-run manifest history (one JSON object per line).
const HISTORY: &str = "results/BENCH_table6_efficiency.json";

fn main() {
    let args = ExpArgs::parse();
    let ds = SyntheticSpec::assist09().scaled(args.scale).generate();
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let folds = KFold::paper(args.seed).split(ws.len());
    let fold = &folds[0];
    let cfg = TrainConfig {
        max_epochs: args.epochs,
        patience: args.patience,
        batch_size: args.batch,
        verbose: args.verbose,
        seed: args.seed,
        ..Default::default()
    };

    println!(
        "Table VI — exact (before) vs approximate (after) inference, {} dataset\n",
        ds.name
    );
    println!(
        "{:<10}{:>14}{:>14}{:>16}{:>16}",
        "", "before AUC", "before ACC", "before ms/stu", ""
    );
    println!(
        "{:<10}{:>14}{:>14}{:>16}{:>16}",
        "Model", "after AUC", "after ACC", "after ms/stu", "speedup"
    );

    for spec in [ModelSpec::RcktDkt, ModelSpec::RcktAkt] {
        let phases_before = rckt_obs::phases_snapshot();
        rckt_obs::event(
            rckt_obs::Level::Info,
            "table6.train",
            &[("model", spec.name().into())],
        );
        let mut built = build_model(spec, &ds, &args, None);
        built.fit(&ws, fold, &ds, &cfg);
        let BuiltModel::Rckt(model) = built else {
            unreachable!()
        };
        let test = make_batches(&ws, &fold.test, &ds.q_matrix, args.batch);
        let n_students: usize = test.iter().map(|b| b.batch).sum();

        // exact (before approximation)
        let t0 = std::time::Instant::now();
        let mut s = Vec::new();
        let mut l = Vec::new();
        for b in &test {
            for p in model.predict_exact_last(b) {
                s.push(p.prob);
                l.push(p.label);
            }
        }
        let exact_ms = t0.elapsed().as_secs_f64() * 1000.0 / n_students as f64;
        let (exact_auc, exact_acc) = (auc(&s, &l), accuracy(&s, &l, 0.5));

        // approximate (after)
        let t0 = std::time::Instant::now();
        let mut s = Vec::new();
        let mut l = Vec::new();
        for b in &test {
            for p in model.predict_last(b) {
                s.push(p.prob);
                l.push(p.label);
            }
        }
        let approx_ms = t0.elapsed().as_secs_f64() * 1000.0 / n_students as f64;
        let (approx_auc, approx_acc) = (auc(&s, &l), accuracy(&s, &l, 0.5));

        println!(
            "{:<10}{:>14.4}{:>14.4}{:>16.2}{:>16}",
            spec.name(),
            exact_auc,
            exact_acc,
            exact_ms,
            ""
        );
        println!(
            "{:<10}{:>14.4}{:>14.4}{:>16.2}{:>15.1}x",
            "",
            approx_auc,
            approx_acc,
            approx_ms,
            exact_ms / approx_ms
        );

        let manifest =
            rckt_obs::RunManifest::capture("table6_efficiency", args.seed, Some(&phases_before))
                .config("model", spec.name())
                .config("dataset", &ds.name)
                .config("scale", args.scale)
                .config("epochs", args.epochs)
                .config("batch", args.batch)
                .config("threads", args.threads_in_use())
                .config("kernel", rckt_tensor::kernels::kernel_variant_name())
                .config("grad_shards", rckt::RcktConfig::default().grad_shards)
                .result("exact_auc", exact_auc)
                .result("exact_acc", exact_acc)
                .result("exact_ms_per_student", exact_ms)
                .result("approx_auc", approx_auc)
                .result("approx_acc", approx_acc)
                .result("approx_ms_per_student", approx_ms)
                .result("speedup", exact_ms / approx_ms);
        if let Err(e) = manifest.append_jsonl(HISTORY) {
            eprintln!("warning: cannot append {HISTORY}: {e}");
        }
    }
    println!("\nPaper shape: approximate inference matches or slightly beats exact");
    println!("(the bi-directional encoder helps) while being ~an order of magnitude");
    println!("faster — the theoretical factor is (t+2)/4 passes ≈ 13x at t = 50.");
    println!("\ntimings appended to {HISTORY}");
    args.finish();
}
