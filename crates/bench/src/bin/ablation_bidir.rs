//! Extra ablation (DESIGN.md §4.5): bi- vs uni-directional encoder.
//!
//! The paper states the response influence approximation *requires* a
//! bidirectional knowledge-state encoder (Sec. IV-C4) — backward influences
//! are influences on *past* responses, which a forward-only encoder cannot
//! re-estimate after the target intervention. This binary quantifies that
//! requirement by training RCKT-DKT with and without the backward half.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin ablation_bidir [--scale f ...]
//! ```

use rckt::RcktConfig;
use rckt_bench::{fit_and_eval, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{KFold, SyntheticSpec};

fn main() {
    let args = ExpArgs::parse();
    println!(
        "bi- vs uni-directional encoder (RCKT-DKT, {} fold(s))\n",
        args.folds
    );
    println!("{:<22}{:>12}{:>9}", "", "AUC", "ACC");
    for spec in [SyntheticSpec::assist09(), SyntheticSpec::assist12()] {
        let ds = spec.scaled(args.scale).generate();
        let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
        let folds = KFold::paper(args.seed).split(ws.len());
        for (label, uni) in [("bidirectional", false), ("forward-only", true)] {
            let cfg = RcktConfig {
                dim: args.dim,
                lr: 2e-3,
                unidirectional: uni,
                seed: args.seed,
                ..Default::default()
            };
            let r = fit_and_eval(ModelSpec::RcktDkt, &ds, &ws, &folds, &args, Some(cfg));
            println!(
                "{:<10} {:<11}{:>12.4}{:>9.4}",
                ds.name,
                label,
                r.auc_mean(),
                r.acc_mean()
            );
        }
    }
    println!("\nInterpretation (paper Sec. IV-C4): with a forward-only encoder the");
    println!("target's assumed/flipped response can never reach a past position's");
    println!("prediction, so Δ no longer measures the target's counterfactual at all —");
    println!("what remains is a context-masking contrast (factual vs masked history).");
    println!("AUC may survive, but the influence semantics the paper builds its");
    println!("interpretability claim on are gone; this is *why* the approximation");
    println!("requires bidirectionality, independent of raw accuracy.");
    args.finish();
}
