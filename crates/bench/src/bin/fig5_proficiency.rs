//! Fig. 5: interpretable knowledge-proficiency tracking — a trained
//! RCKT-DKT traces one student's proficiency on three related concepts over
//! ~18 responses, plus the per-response influence groups, rendered as ASCII
//! sparkbars.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin fig5_proficiency [--scale f ...]
//! ```

use rckt_bench::{build_model, BuiltModel, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{KFold, SyntheticSpec, Window};
use rckt_models::model::TrainConfig;

fn bar(v: f32) -> char {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    LEVELS[((v.clamp(0.0, 1.0) * 7.999) as usize).min(7)]
}

fn main() {
    let args = ExpArgs::parse();
    // ASSIST12-like data, as in the paper's case study.
    let ds = SyntheticSpec::assist12().scaled(args.scale).generate();
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let folds = KFold::paper(args.seed).split(ws.len());
    let cfg = TrainConfig {
        max_epochs: args.epochs,
        patience: args.patience,
        batch_size: args.batch,
        verbose: args.verbose,
        seed: args.seed,
        ..Default::default()
    };
    rckt_obs::event(
        rckt_obs::Level::Info,
        "fig5.train",
        &[("model", "RCKT-DKT".into()), ("windows", ws.len().into())],
    );
    let mut built = build_model(ModelSpec::RcktDkt, &ds, &args, None);
    built.fit(&ws, &folds[0], &ds, &cfg);
    let BuiltModel::Rckt(model) = built else {
        unreachable!()
    };

    // Pick a student window that exercises ≥3 concepts with ≥15 responses
    // and mixed outcomes.
    let pick = ws
        .iter()
        .filter(|w| w.len >= 15)
        .max_by_key(|w| {
            let mut concepts: Vec<u16> = (0..w.len)
                .flat_map(|t| ds.q_matrix.concepts_of(w.questions[t]).to_vec())
                .collect();
            concepts.sort_unstable();
            concepts.dedup();
            // prefer mixed outcomes (both successes and failures), then
            // concept variety
            let len = w.len.min(18);
            let wrongs = w.correct[..len].iter().filter(|&&c| c == 0).count();
            let mixedness = wrongs.min(len - wrongs);
            mixedness.min(9) * 10 + concepts.len().min(9)
        })
        .expect("a long window exists");
    let case = Window {
        student: pick.student,
        questions: pick.questions.clone(),
        correct: pick.correct.clone(),
        len: pick.len.min(18),
    };

    // The three most practiced concepts of the window.
    let mut counts = std::collections::HashMap::new();
    for t in 0..case.len {
        for &k in ds.q_matrix.concepts_of(case.questions[t]) {
            *counts.entry(k).or_insert(0usize) += 1;
        }
    }
    let mut concepts: Vec<(u16, usize)> = counts.into_iter().collect();
    concepts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    concepts.truncate(3);

    println!(
        "Fig. 5 — proficiency tracking for student {} ({} responses)",
        case.student, case.len
    );
    print!("responses:    ");
    for t in 0..case.len {
        print!("{} ", if case.correct[t] == 1 { '●' } else { '○' });
    }
    println!("   (●=correct ○=incorrect)");
    print!("concept tags: ");
    for t in 0..case.len {
        let k = ds.q_matrix.concepts_of(case.questions[t])[0];
        let tag = concepts
            .iter()
            .position(|&(kk, _)| kk == k)
            .map(|i| (b'A' + i as u8) as char);
        print!("{} ", tag.unwrap_or('.'));
    }
    println!();

    for (i, &(k, n)) in concepts.iter().enumerate() {
        let trace = model.trace_proficiency(&case, &ds.q_matrix, k);
        print!(
            "concept {} (k{k:>3}, {n:>2} practices): ",
            (b'A' + i as u8) as char
        );
        for &p in &trace.min_max_scaled() {
            print!("{} ", bar(p));
        }
        let vals: Vec<String> = trace.after.iter().map(|p| format!("{p:.3}")).collect();
        println!("\n   raw margin scores: {}", vals.join(" "));
    }

    println!("\nresponse influences on each concept after the final response");
    println!("(negated for incorrect responses, as in the paper's figure):");
    for (i, &(k, _)) in concepts.iter().enumerate() {
        let rec = model.concept_influences(&case, &ds.q_matrix, k);
        print!("concept {}: ", (b'A' + i as u8) as char);
        for &(_, correct, d) in &rec.influences {
            let v = if correct { d } else { -d };
            print!("{v:+.2} ");
        }
        println!();
    }
    println!("\nExpected shapes (paper Sec. V-E): proficiency rises after correct");
    println!("responses and falls after incorrect ones; same-concept responses have");
    println!("larger influence; recent responses outweigh early ones (forgetting).");
    args.finish();
}
