//! Table V: ablation study — remove joint training (`-joint`), the
//! monotonicity-based retention (`-mono`), and the positivity constraint
//! (`-con`) from RCKT with the DKT and AKT encoders.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin table5_ablation [--scale f ...]
//! ```

use rckt::RcktConfig;
use rckt_bench::{fit_and_eval, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{KFold, SyntheticSpec};

fn main() {
    let args = ExpArgs::parse();
    let encoders = [ModelSpec::RcktDkt, ModelSpec::RcktAkt];
    let base_cfg = |args: &ExpArgs| RcktConfig {
        dim: args.dim,
        lr: 2e-3,
        seed: args.seed,
        ..Default::default()
    };
    type CfgFn = Box<dyn Fn(&ExpArgs) -> RcktConfig>;
    let variants: Vec<(&str, CfgFn)> = vec![
        ("RCKT", Box::new(base_cfg)),
        (
            "-joint",
            Box::new(move |a: &ExpArgs| base_cfg(a).without_joint()),
        ),
        (
            "-mono",
            Box::new(move |a: &ExpArgs| base_cfg(a).without_mono()),
        ),
        (
            "-con",
            Box::new(move |a: &ExpArgs| base_cfg(a).without_constraint()),
        ),
    ];

    println!(
        "Table V — ablation study (final-response AUC/ACC, mean over {} fold(s))\n",
        args.folds
    );
    for spec in SyntheticSpec::paper_presets() {
        let ds = spec.scaled(args.scale).generate();
        let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
        let folds = KFold::paper(args.seed).split(ws.len());
        println!("== {} ==", ds.name);
        println!(
            "{:<8}{:>14}{:>9}{:>14}{:>9}",
            "", "DKT AUC", "ACC", "AKT AUC", "ACC"
        );
        for (vname, make_cfg) in &variants {
            print!("{vname:<8}");
            for &enc in &encoders {
                let r = fit_and_eval(enc, &ds, &ws, &folds, &args, Some(make_cfg(&args)));
                print!("{:>14.4}{:>9.4}", r.auc_mean(), r.acc_mean());
            }
            println!();
        }
        println!();
    }
    args.finish();
}
