//! Fig. 6: a case study contrasting RCKT's response influences with SAKT+'s
//! attention values on one student's history and target question.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin fig6_case [--scale f ...]
//! ```

use rckt_bench::{build_model, BuiltModel, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{Batch, KFold, SyntheticSpec};
use rckt_models::attn_kt::AttnKt;
use rckt_models::model::TrainConfig;

fn main() {
    let args = ExpArgs::parse();
    // Eedi-like data, as in the paper's case study.
    let ds = SyntheticSpec::eedi().scaled(args.scale).generate();
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let folds = KFold::paper(args.seed).split(ws.len());
    let cfg = TrainConfig {
        max_epochs: args.epochs,
        patience: args.patience,
        batch_size: args.batch,
        verbose: args.verbose,
        seed: args.seed,
        ..Default::default()
    };

    rckt_obs::event(
        rckt_obs::Level::Info,
        "fig6.train",
        &[
            ("models", "RCKT-AKT,SAKT+".into()),
            ("windows", ws.len().into()),
        ],
    );
    let mut rckt = build_model(ModelSpec::RcktAkt, &ds, &args, None);
    rckt.fit(&ws, &folds[0], &ds, &cfg);
    let BuiltModel::Rckt(rckt) = rckt else {
        unreachable!()
    };
    // SAKT+ is kept as a concrete AttnKt so its attention maps are readable.
    let mut saktp = AttnKt::new(
        rckt_models::attn_kt::AttnVariant::SaktPlus,
        ds.num_questions(),
        ds.num_concepts(),
        rckt_models::attn_kt::AttnKtConfig {
            dim: args.dim,
            lr: 2e-3,
            seed: args.seed,
            ..Default::default()
        },
    );
    use rckt_models::KtModel;
    saktp.fit(&ws, &folds[0].train, &folds[0].val, &ds.q_matrix, &cfg);

    // A test student with ~9+1 responses, more incorrect than correct, and a
    // correct final answer — the paper's interesting case.
    let case_idx = folds[0]
        .test
        .iter()
        .copied()
        .find(|&i| {
            let w = &ws[i];
            let len = w.len.min(10);
            let correct: usize = w.correct[..len - 1].iter().map(|&c| c as usize).sum();
            w.len >= 10 && correct * 2 < (len - 1) && w.correct[len - 1] == 1
        })
        .or_else(|| folds[0].test.iter().copied().find(|&i| ws[i].len >= 10))
        .expect("a long test window");
    let mut case = ws[case_idx].clone();
    case.len = case.len.min(10);
    for t in case.len..case.questions.len() {
        case.questions[t] = 0;
        case.correct[t] = 0;
    }
    let target = case.len - 1;

    let batch = Batch::from_windows(&[&case], &ds.q_matrix);
    let rec = &rckt.influences(&batch, &[target])[0];
    let (_, att) = saktp.predict_with_attention(&batch);
    let t_len = batch.t_len;

    println!("Fig. 6 — response influences (RCKT-AKT) vs attention (SAKT+)");
    println!(
        "student {}, target question q{} (ground truth: {})\n",
        case.student,
        target + 1,
        if rec.label { "correct" } else { "incorrect" }
    );
    println!(
        "{:<5} {:<9} {:<3} {:>10} {:>10}",
        "pos", "question", "r", "Inf.", "Att."
    );
    for &(pos, correct, delta) in &rec.influences {
        // attention from the target row to the shifted key (key t = a_{t-1})
        let a = att[target * t_len + pos + 1];
        println!(
            "{:<5} {:<9} {:<3} {:>10.4} {:>10.4}",
            pos + 1,
            format!("q{}", batch.questions[pos]),
            if correct { "✓" } else { "✗" },
            delta,
            a
        );
    }
    println!(
        "\nRCKT: Δ+ {:.3} vs Δ- {:.3} -> predicts {} (margin score {:.3})",
        rec.total_correct,
        rec.total_incorrect,
        if rec.predicted_correct() {
            "✓"
        } else {
            "✗"
        },
        rec.score
    );
    let sp = saktp.predict(&batch);
    let pos_list = rckt_models::common::eval_positions(&batch);
    let p_target = pos_list
        .iter()
        .position(|&i| i == target)
        .map(|k| sp[k].prob)
        .unwrap_or(f32::NAN);
    println!(
        "SAKT+: probability {:.3} -> predicts {}",
        p_target,
        if p_target >= 0.5 { "✓" } else { "✗" }
    );
    println!("\nThe paper's qualitative claim: influence values single out the decisive");
    println!("same-concept responses explicitly, while attention mass need not reflect");
    println!("true importance and the final score passes through an opaque MLP.");
    args.finish();
}
