//! Diagnostic: decompose RCKT's evaluation gap.
//!
//! Scores the same trained RCKT three ways on strided targets —
//! (a) the influence margin (the paper's Eq. 13 rule),
//! (b) the generator's own factual-pass probability for the target,
//! (c) the margin within each target-position bucket (per-t AUC) —
//! against a DKT baseline, to separate generator quality from cross-length
//! score calibration.

use rckt::counterfactual::Cats;
use rckt_bench::{build_model, BuiltModel, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{make_batches, Batch, KFold, SyntheticSpec};
use rckt_metrics::auc;
use rckt_models::model::TrainConfig;
use rckt_models::ResponseCat;

fn main() {
    let args = ExpArgs::parse();
    let ds = SyntheticSpec::assist09().scaled(args.scale).generate();
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let folds = KFold::paper(args.seed).split(ws.len());
    let fold = &folds[0];
    let cfg = TrainConfig {
        max_epochs: args.epochs,
        patience: args.patience,
        batch_size: args.batch,
        verbose: args.verbose,
        seed: args.seed,
        ..Default::default()
    };

    let mut rckt = build_model(ModelSpec::RcktDkt, &ds, &args, None);
    rckt.fit(&ws, fold, &ds, &cfg);
    let BuiltModel::Rckt(rckt) = rckt else {
        unreachable!()
    };
    let mut dkt = build_model(ModelSpec::Dkt, &ds, &args, None);
    dkt.fit(&ws, fold, &ds, &cfg);

    let test = make_batches(&ws, &fold.test, &ds.q_matrix, args.batch);
    let stride = 8usize;

    // (a) margin and (b) factual probability at the same strided targets
    let mut margin_scores = Vec::new();
    let mut factual_scores = Vec::new();
    let mut labels = Vec::new();
    let mut t_of = Vec::new();
    for b in &test {
        for t in 1..b.t_len {
            let involved: Vec<usize> = (0..b.batch)
                .filter(|&bb| {
                    let len = b.seq_len(bb);
                    t < len && (t % stride == stride - 1 || t == len - 1)
                })
                .collect();
            if involved.is_empty() {
                continue;
            }
            let targets: Vec<usize> = (0..b.batch)
                .map(|bb| if involved.contains(&bb) { t } else { 1 })
                .collect();
            let preds = rckt.predict_targets(b, &targets);
            let probs = factual_probs(&rckt, b, &targets);
            for &bb in &involved {
                margin_scores.push(preds[bb].prob);
                factual_scores.push(probs[bb]);
                labels.push(preds[bb].label);
                t_of.push(t);
            }
        }
    }

    let dkt_preds = dkt.stride_preds(&test, stride);
    let dkt_scores: Vec<f32> = dkt_preds.iter().map(|p| p.prob).collect();
    let dkt_labels: Vec<bool> = dkt_preds.iter().map(|p| p.label).collect();

    println!("n = {} strided targets", labels.len());
    println!(
        "(a) RCKT margin AUC:            {:.4}",
        auc(&margin_scores, &labels)
    );
    println!(
        "(b) RCKT factual-pass AUC:      {:.4}",
        auc(&factual_scores, &labels)
    );
    println!(
        "    DKT AUC:                    {:.4}",
        auc(&dkt_scores, &dkt_labels)
    );

    // (c) per-target-bucket AUCs (cross-length calibration check)
    println!("(c) per-t AUC (margin | factual):");
    let mut ts: Vec<usize> = t_of.clone();
    ts.sort_unstable();
    ts.dedup();
    for &t in &ts {
        let idx: Vec<usize> = (0..labels.len()).filter(|&i| t_of[i] == t).collect();
        if idx.len() < 10 {
            continue;
        }
        let m: Vec<f32> = idx.iter().map(|&i| margin_scores[i]).collect();
        let f: Vec<f32> = idx.iter().map(|&i| factual_scores[i]).collect();
        let l: Vec<bool> = idx.iter().map(|&i| labels[i]).collect();
        println!(
            "    t = {t:>2} (n = {:>3}): {:.4} | {:.4}",
            idx.len(),
            auc(&m, &l),
            auc(&f, &l)
        );
    }
    args.finish();
}

/// Generator probability for each sequence's target under the factual
/// context (target masked) — the "plain bidirectional KT" score.
fn factual_probs(model: &rckt::Rckt, batch: &Batch, targets: &[usize]) -> Vec<f32> {
    let t_len = batch.t_len;
    let cats: Cats = (0..batch.batch * t_len)
        .map(|i| {
            let (b, t) = (i / t_len, i % t_len);
            if batch.valid[i] && t != targets[b] {
                ResponseCat::from_correct(batch.correct[i] >= 0.5)
            } else {
                ResponseCat::Masked
            }
        })
        .collect();
    model.factual_pass_probs(batch, &cats, targets)
}
