//! Fig. 4: effect of the loss balancer λ on RCKT-DKT and RCKT-AKT over the
//! two ASSIST datasets (λ ∈ {0, 0.01, 0.05, 0.1, 0.2, 0.3}).
//!
//! ```text
//! cargo run --release -p rckt-bench --bin fig4_lambda [--scale f ...]
//! ```

use rckt::RcktConfig;
use rckt_bench::{fit_and_eval, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{KFold, SyntheticSpec};

const LAMBDAS: [f32; 6] = [0.0, 0.01, 0.05, 0.1, 0.2, 0.3];

fn main() {
    let args = ExpArgs::parse();
    println!("Fig. 4 — AUC/ACC vs loss balancer λ (final-response prediction)\n");
    for spec in [SyntheticSpec::assist09(), SyntheticSpec::assist12()] {
        let ds = spec.scaled(args.scale).generate();
        let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
        let folds = KFold::paper(args.seed).split(ws.len());
        for enc in [ModelSpec::RcktDkt, ModelSpec::RcktAkt] {
            println!("== {} / {} ==", ds.name, enc.name());
            println!("{:>8}{:>10}{:>10}", "lambda", "AUC", "ACC");
            let mut series = Vec::new();
            for &lambda in &LAMBDAS {
                let cfg = RcktConfig {
                    dim: args.dim,
                    lr: 2e-3,
                    lambda,
                    seed: args.seed,
                    ..Default::default()
                };
                let r = fit_and_eval(enc, &ds, &ws, &folds, &args, Some(cfg));
                println!("{lambda:>8}{:>10.4}{:>10.4}", r.auc_mean(), r.acc_mean());
                series.push((lambda, r.auc_mean()));
            }
            let best = series
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            println!("peak at lambda = {} (AUC {:.4})\n", best.0, best.1);
        }
    }
    args.finish();
}
