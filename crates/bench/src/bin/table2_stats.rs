//! Table II: statistics of the four preprocessed datasets.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin table2_stats [--scale f]
//! ```

use rckt_bench::ExpArgs;
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::stats::{table2, DatasetStats};
use rckt_data::SyntheticSpec;

fn main() {
    let args = ExpArgs::parse();
    let stats: Vec<DatasetStats> = SyntheticSpec::paper_presets()
        .into_iter()
        .map(|spec| {
            let ds = spec.scaled(args.scale).generate();
            let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
            DatasetStats::compute(&ds, &ws)
        })
        .collect();
    println!("Table II — statistics of the four preprocessed (synthetic) datasets");
    println!(
        "(presets mirror the paper's datasets at --scale {}; see DESIGN.md §1)\n",
        args.scale
    );
    print!("{}", table2(&stats));
    args.finish();
}
