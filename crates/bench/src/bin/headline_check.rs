//! Focused headline check: the paper's central performance claim (RCKT vs
//! the strongest baselines) in its own per-student setting — one prediction
//! per test sequence at the final response, full record as context — with
//! more folds and epochs than the broad Table IV sweep affords.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin headline_check [--scale f --folds n ...]
//! ```

use rckt_bench::{build_model, evaluate_last_any, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{make_batches, KFold, SyntheticSpec};
use rckt_metrics::{welch_t_test, FoldSummary};
use rckt_models::model::TrainConfig;

/// Per-run manifest history (one JSON object per line).
const HISTORY: &str = "results/BENCH_headline_check.json";

fn main() {
    let args = ExpArgs::parse();
    let ds = SyntheticSpec::assist12().scaled(args.scale).generate();
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let folds = KFold::paper(args.seed).split(ws.len());
    let cfg = TrainConfig {
        max_epochs: args.epochs,
        patience: args.patience,
        batch_size: args.batch,
        verbose: args.verbose,
        seed: args.seed,
        ..Default::default()
    };

    let lineup = [
        ModelSpec::Dkt,
        ModelSpec::Dimkt,
        ModelSpec::Ikt,
        ModelSpec::RcktDkt,
    ];
    println!(
        "headline check — {} ({} windows), per-student final-response AUC over {} fold(s)\n",
        ds.name,
        ws.len(),
        args.folds
    );
    let mut per_model: Vec<(String, Vec<f64>)> = Vec::new();
    for spec in lineup {
        let phases_before = rckt_obs::phases_snapshot();
        let t0 = std::time::Instant::now();
        rckt_obs::event(
            rckt_obs::Level::Info,
            "headline.train",
            &[("model", spec.name().into())],
        );
        let mut aucs = Vec::new();
        for fold in folds.iter().take(args.folds) {
            let mut model = build_model(spec, &ds, &args, None);
            model.fit(&ws, fold, &ds, &cfg);
            let test = make_batches(&ws, &fold.test, &ds.q_matrix, args.batch);
            let (a, _) = evaluate_last_any(&model, &test);
            aucs.push(a);
        }
        println!("{:<10} {}", spec.name(), FoldSummary::of(&aucs));
        let manifest =
            rckt_obs::RunManifest::capture("headline_check", args.seed, Some(&phases_before))
                .config("model", spec.name())
                .config("dataset", &ds.name)
                .config("scale", args.scale)
                .config("folds", args.folds)
                .config("epochs", args.epochs)
                .config("threads", args.threads_in_use())
                .config("kernel", rckt_tensor::kernels::kernel_variant_name())
                .config("grad_shards", rckt::RcktConfig::default().grad_shards)
                .result(
                    "auc_mean",
                    aucs.iter().sum::<f64>() / aucs.len().max(1) as f64,
                )
                .result("seconds", t0.elapsed().as_secs_f64());
        if let Err(e) = manifest.append_jsonl(HISTORY) {
            eprintln!("warning: cannot append {HISTORY}: {e}");
        }
        per_model.push((spec.name().to_string(), aucs));
    }

    let rckt = per_model.last().expect("lineup non-empty");
    let best_base = per_model[..per_model.len() - 1]
        .iter()
        .max_by(|a, b| {
            let ma = a.1.iter().sum::<f64>() / a.1.len() as f64;
            let mb = b.1.iter().sum::<f64>() / b.1.len() as f64;
            ma.partial_cmp(&mb).unwrap()
        })
        .unwrap();
    let m_rckt = rckt.1.iter().sum::<f64>() / rckt.1.len() as f64;
    let m_base = best_base.1.iter().sum::<f64>() / best_base.1.len() as f64;
    let p = welch_t_test(&rckt.1, &best_base.1).map(|t| t.p_value);
    println!(
        "\nRCKT-DKT vs best baseline {}: {:+.2}% ({})",
        best_base.0,
        (m_rckt / m_base - 1.0) * 100.0,
        p.map(|p| format!("Welch p = {p:.3}"))
            .unwrap_or_else(|| "p n/a".into())
    );
    println!("\ntimings appended to {HISTORY}");
    args.finish();
}
