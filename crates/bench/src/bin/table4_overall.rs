//! Table IV: overall performance of the RCKT variants against six baselines
//! on the four datasets, with significance stars against the best baseline.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin table4_overall [--scale f --folds n ...]
//! ```
//!
//! Quick defaults run in minutes on a laptop; `--full` is the
//! paper-faithful 5-fold setting.

use rckt::{Backbone, RcktConfig};
use rckt_bench::{fit_and_eval, ExpArgs, ModelSpec, RunResult};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{KFold, SyntheticSpec};
use rckt_metrics::welch_t_test;

fn main() {
    let args = ExpArgs::parse();
    let lineup = ModelSpec::table4_lineup();
    let mut all: Vec<Vec<RunResult>> = Vec::new();
    let presets = SyntheticSpec::paper_presets();

    for spec in &presets {
        let ds = spec.clone().scaled(args.scale).generate();
        let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
        let folds = KFold::paper(args.seed).split(ws.len());
        rckt_obs::event(
            rckt_obs::Level::Info,
            "table4.dataset",
            &[
                ("dataset", ds.name.as_str().into()),
                ("windows", ws.len().into()),
            ],
        );
        let mut per_model = Vec::new();
        for &m in &lineup {
            // RCKT variants: the paper's Table III hyper-parameters in the
            // paper-faithful --full setting; CPU-scale tuned defaults
            // otherwise (Table III's deeper/more-regularized settings
            // underfit the small simulator datasets).
            let rckt_cfg = match m {
                ModelSpec::RcktDkt => Some(Backbone::Dkt),
                ModelSpec::RcktSakt => Some(Backbone::Sakt),
                ModelSpec::RcktAkt => Some(Backbone::Akt),
                _ => None,
            }
            .map(|b| {
                let base = if args.scale >= 1.0 {
                    RcktConfig::paper_table3(&ds.name, b)
                } else {
                    RcktConfig::default()
                };
                RcktConfig {
                    dim: args.dim,
                    seed: args.seed,
                    ..base
                }
            });
            let r = fit_and_eval(m, &ds, &ws, &folds, &args, rckt_cfg);
            rckt_obs::event(
                rckt_obs::Level::Info,
                "table4.model",
                &[
                    ("model", r.model.as_str().into()),
                    ("dataset", r.dataset.as_str().into()),
                    ("auc", r.auc_mean().into()),
                    ("acc", r.acc_mean().into()),
                    ("secs", r.seconds.into()),
                ],
            );
            per_model.push(r);
        }
        all.push(per_model);
    }

    println!(
        "\nTable IV — overall performance (final-response prediction, mean over {} fold(s))",
        args.folds
    );
    print!("{:<11}", "Model");
    for spec in &presets {
        print!("{:>11}{:>9}", format!("{}", spec.name), "");
    }
    println!();
    print!("{:<11}", "");
    for _ in &presets {
        print!("{:>11}{:>9}", "AUC", "ACC");
    }
    println!();
    for (mi, &m) in lineup.iter().enumerate() {
        print!("{:<11}", m.name());
        for per_model in &all {
            let r = &per_model[mi];
            print!("{:>11.4}{:>9.4}", r.auc_mean(), r.acc_mean());
        }
        println!();
    }

    // improvement + significance of the best RCKT variant vs best baseline
    println!();
    for (di, per_model) in all.iter().enumerate() {
        let (baselines, rckts) = per_model.split_at(6);
        let best_base = baselines
            .iter()
            .max_by(|a, b| a.auc_mean().partial_cmp(&b.auc_mean()).unwrap())
            .unwrap();
        let best_rckt = rckts
            .iter()
            .max_by(|a, b| a.auc_mean().partial_cmp(&b.auc_mean()).unwrap())
            .unwrap();
        let improv = (best_rckt.auc_mean() / best_base.auc_mean() - 1.0) * 100.0;
        let sig = welch_t_test(&best_rckt.auc_folds, &best_base.auc_folds)
            .map(|t| format!("p = {:.4}", t.p_value))
            .unwrap_or_else(|| "p: n/a (need ≥2 folds)".into());
        println!(
            "{}: best RCKT {} ({:.4}) vs best baseline {} ({:.4}): improv {improv:+.2}% ({sig})",
            presets[di].name,
            best_rckt.model,
            best_rckt.auc_mean(),
            best_base.model,
            best_base.auc_mean(),
        );
    }
    args.finish();
}
