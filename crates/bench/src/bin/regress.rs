//! Bench regression gate over the perf-trajectory histories.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin regress [-- --dir results --threshold 0.5 --window 5 --verbose]
//! ```
//!
//! Scans `--dir` (default `results/`) for `BENCH_*.json` JSON-lines
//! histories, compares the newest entry of every `(bin, config)` group
//! against the per-metric best of its last `--window` preceding entries
//! (default 5; 0 = the whole history) via [`rckt_bench::regress`], prints
//! one report per file, and exits nonzero when any directional metric
//! regressed past `--threshold` (default 0.5 = 50% worse — lenient on
//! purpose; see the module docs for why).

use rckt_bench::regress::{
    compare_history, has_regressions, parse_history, render_report, DEFAULT_WINDOW,
};
use std::path::PathBuf;

fn die(msg: &str) -> ! {
    eprintln!("usage error: {msg}");
    eprintln!("flags: --dir <path> --threshold <f64> --window <n> --verbose");
    std::process::exit(2)
}

fn main() {
    let mut dir = PathBuf::from("results");
    let mut threshold = 0.5f64;
    let mut window = DEFAULT_WINDOW;
    let mut verbose = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dir" => {
                dir = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--dir needs a path"))
            }
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t > 0.0)
                    .unwrap_or_else(|| die("--threshold needs a positive number"))
            }
            "--window" => {
                window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--window needs a non-negative integer (0 = all)"))
            }
            "--verbose" => verbose = true,
            "--help" | "-h" => die("bench regression gate"),
            other => die(&format!("unknown flag {other}")),
        }
    }

    let mut histories: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("regress: cannot read {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    histories.sort();
    if histories.is_empty() {
        println!(
            "regress: no BENCH_*.json histories in {} — nothing to gate",
            dir.display()
        );
        return;
    }

    let mut failed = false;
    for path in &histories {
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("regress: cannot read {}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        let (entries, skipped) = parse_history(&text);
        if skipped > 0 {
            eprintln!("regress: {name}: skipped {skipped} malformed line(s)");
        }
        let comps = compare_history(&entries, threshold, window);
        print!("{}", render_report(&name, &comps, threshold, verbose));
        if has_regressions(&comps) {
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "regress: FAIL — at least one metric regressed past {:.0}%",
            threshold * 100.0
        );
        std::process::exit(1);
    }
    println!("regress: OK");
}
