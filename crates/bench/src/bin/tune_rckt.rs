//! Hyper-parameter exploration helper: sweeps learning rate / λ / epochs
//! for one RCKT encoder on one dataset and reports strided test AUC.
//! Used to pick the CPU-scale defaults the experiment binaries ship with.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin tune_rckt [--scale f --epochs n]
//! ```

use rckt::{RcktConfig, Retention};
use rckt_bench::{fit_and_eval, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{KFold, SyntheticSpec};

fn main() {
    let mut args = ExpArgs::parse();
    args.folds = 1; // one fold: this is an exploration sweep
    let ds = SyntheticSpec::assist09().scaled(args.scale).generate();
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let folds = KFold::paper(args.seed).split(ws.len());

    println!(
        "tuning RCKT-DKT on {} ({} windows), {} epochs",
        ds.name,
        ws.len(),
        args.epochs
    );
    println!(
        "{:>8}{:>8}{:>8}{:>10}{:>10}{:>8}",
        "lr", "lambda", "layers", "AUC", "ACC", "sec"
    );
    for &lr in &[1e-3f32, 2e-3] {
        for &lambda in &[0.05f32, 0.1, 0.3] {
            for &layers in &[1usize, 2] {
                let cfg = RcktConfig {
                    dim: args.dim,
                    lr,
                    lambda,
                    layers,
                    retention: Retention::Monotonic,
                    seed: args.seed,
                    ..Default::default()
                };
                let r = fit_and_eval(ModelSpec::RcktDkt, &ds, &ws, &folds, &args, Some(cfg));
                println!(
                    "{lr:>8}{lambda:>8}{layers:>8}{:>10.4}{:>10.4}{:>8.1}",
                    r.auc_mean(),
                    r.acc_mean(),
                    r.seconds
                );
            }
        }
    }
    args.finish();
}
