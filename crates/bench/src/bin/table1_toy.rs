//! Table I / Fig. 1 / Fig. 3: the paper's worked toy example — six
//! questions, responses ✓✗✓✓✗ and a target q6 — showing the counterfactual
//! sequence construction (mask/retain) and the influence bookkeeping.
//!
//! The construction output is exact (it is pure logic); the influence
//! values come from a quickly trained RCKT-DKT on ASSIST09-like data, so
//! they demonstrate the mechanics rather than matching the paper's
//! illustrative numbers.
//!
//! ```text
//! cargo run --release -p rckt-bench --bin table1_toy [--scale f ...]
//! ```

use rckt::counterfactual::{backward_quadruple, forward_intervention, Retention};
use rckt::explain::{render_influence_table, ExplainContext};
use rckt_bench::{build_model, BuiltModel, ExpArgs, ModelSpec};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::{Batch, KFold, SyntheticSpec};
use rckt_models::model::TrainConfig;
use rckt_models::ResponseCat;

fn show(cats: &[ResponseCat]) -> String {
    cats.iter()
        .map(|c| match c {
            ResponseCat::Correct => "✓",
            ResponseCat::Incorrect => "✗",
            ResponseCat::Masked => "◦",
        })
        .collect::<Vec<_>>()
        .join("  ")
}

fn main() {
    let args = ExpArgs::parse();
    use ResponseCat::{Correct as C, Incorrect as I, Masked as M};
    let toy = vec![C, I, C, C, I, M];

    println!("Fig. 3 — counterfactual construction by the monotonicity assumption");
    println!("factual:               {}", show(&toy[..5]));
    let (_, cf) = forward_intervention(&toy[..5].to_vec(), 2, Retention::Monotonic);
    println!(
        "flip q3 ✓→✗ (forward): {}   (retain ✗, mask ✓ as ◦)",
        show(&cf)
    );

    println!("\nTable I — backward approximation sequences for target q6");
    let [f_pos, cf_neg, f_neg, cf_pos] = backward_quadruple(&toy, 5, Retention::Monotonic);
    println!("assume r6 = 1  F+ : {}", show(&f_pos));
    println!("intervene      CF-: {}", show(&cf_neg));
    println!("assume r6 = 0  F- : {}", show(&f_neg));
    println!("intervene      CF+: {}", show(&cf_pos));

    // Influence bookkeeping with a trained model on a real simulator window.
    let ds = SyntheticSpec::assist09().scaled(args.scale).generate();
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let folds = KFold::paper(args.seed).split(ws.len());
    let cfg = TrainConfig {
        max_epochs: args.epochs.min(8),
        patience: args.patience,
        batch_size: args.batch,
        verbose: args.verbose,
        seed: args.seed,
        ..Default::default()
    };
    rckt_obs::event(
        rckt_obs::Level::Info,
        "table1.train",
        &[("model", "RCKT-DKT".into()), ("windows", ws.len().into())],
    );
    let mut built = build_model(ModelSpec::RcktDkt, &ds, &args, None);
    built.fit(&ws, &folds[0], &ds, &cfg);
    let BuiltModel::Rckt(model) = built else {
        unreachable!()
    };

    let case = folds[0]
        .test
        .iter()
        .map(|&i| &ws[i])
        .find(|w| (6..=12).contains(&w.len))
        .or_else(|| folds[0].test.first().map(|&i| &ws[i]))
        .expect("a test window");
    let batch = Batch::from_windows(&[case], &ds.q_matrix);
    let target = case.len - 1;
    let rec = &model.influences(&batch, &[target])[0];
    println!(
        "\ninfluence table for a real test student (target = response {}):\n",
        target + 1
    );
    print!(
        "{}",
        render_influence_table(rec, &ExplainContext::default())
    );
    args.finish();
}
