//! Bench regression gate: diff the newest entry of each `results/BENCH_*.json`
//! perf-trajectory history against its committed baseline and fail when a
//! metric moved the wrong way by more than a threshold.
//!
//! Every bench binary appends one [`rckt_obs::RunManifest`] JSON line per
//! measured cell (shape × kernel × threads, model × dataset, …). This module
//! groups a history's lines by `(bin, config)`, takes the **last** line of a
//! group as the candidate (the run CI just produced) and, per metric, the
//! **best of the up-to-`window` preceding entries** as the baseline
//! (best = max for higher-is-better metrics, min for lower-is-better;
//! `window = 0` widens the pool to the whole history). A windowed
//! best-of-K baseline keeps the gate honest as histories grow: a slow
//! drift can never become the new normal just because the last committed
//! entry was already slow, while an ancient fast entry from different
//! hardware ages out of the pool. Compared metrics are those whose name
//! implies a direction:
//!
//! * higher is better — `gflops`, `speedup`, `auc`, `acc`, `throughput`
//! * lower is better  — `ms`, `secs`/`seconds`, `bytes`, `latency`
//!
//! Metrics with no implied direction (λ values, counts, …) are ignored.
//! Groups with a single entry are reported as `new` and never fail the gate,
//! so adding a config to a sweep does not require regenerating baselines.
//!
//! The default threshold is deliberately lenient (50%): CI hardware differs
//! from the hardware that produced the committed baseline, and the gate is
//! meant to catch order-of-magnitude slips (accidentally quadratic loop, a
//! kernel silently falling back to the naive path), not 10% jitter.

use std::collections::BTreeMap;

use rckt_obs::json::{parse, JsonValue};

/// Which way a metric is supposed to move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    HigherBetter,
    LowerBetter,
}

/// Direction implied by a result metric's name, or `None` when the name
/// carries no verdict (configuration echoes, counts, λ sweeps).
pub fn metric_direction(name: &str) -> Option<Direction> {
    let n = name.to_ascii_lowercase();
    const HIGHER: [&str; 5] = ["gflops", "speedup", "auc", "acc", "throughput"];
    const LOWER: [&str; 5] = ["ms", "secs", "seconds", "bytes", "latency"];
    // Match on word-ish fragments so `ms_per_call` and `fit_secs` hit, but
    // an unrelated substring (e.g. `rms`) does not: split on `_` and `.`.
    let parts: Vec<&str> = n.split(['_', '.']).collect();
    if HIGHER.iter().any(|h| parts.contains(h)) {
        return Some(Direction::HigherBetter);
    }
    if LOWER.iter().any(|l| parts.contains(l)) {
        return Some(Direction::LowerBetter);
    }
    None
}

/// One manifest line of a history file, reduced to what the gate needs.
#[derive(Clone, Debug)]
pub struct Entry {
    pub bin: String,
    pub git_commit: String,
    pub unix_ts: u64,
    /// Sorted `key=value` pairs — the group identity within a history.
    pub config: Vec<(String, String)>,
    pub results: Vec<(String, f64)>,
}

impl Entry {
    fn group_key(&self) -> String {
        let mut parts = vec![self.bin.clone()];
        parts.extend(self.config.iter().map(|(k, v)| format!("{k}={v}")));
        parts.join(" ")
    }
}

/// Parse a JSON-lines history. Malformed lines are skipped (the count is
/// returned so callers can surface it) — a truncated final line from a
/// killed run must not wedge the gate forever.
pub fn parse_history(text: &str) -> (Vec<Entry>, usize) {
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse(line).ok().and_then(|v| entry_from_json(&v)) {
            Some(e) => entries.push(e),
            None => skipped += 1,
        }
    }
    (entries, skipped)
}

fn entry_from_json(v: &JsonValue) -> Option<Entry> {
    let bin = v.get("bin")?.as_str()?.to_string();
    let mut config: Vec<(String, String)> = v
        .get("config")
        .and_then(|c| c.as_object())
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(k, val)| {
                    let s = match val {
                        JsonValue::Str(s) => s.clone(),
                        JsonValue::Num(n) => rckt_obs::json::number(*n),
                        JsonValue::Bool(b) => b.to_string(),
                        _ => return None,
                    };
                    Some((k.clone(), s))
                })
                .collect()
        })
        .unwrap_or_default();
    config.sort();
    let results = v
        .get("results")
        .and_then(|r| r.as_object())
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(k, val)| Some((k.clone(), val.as_f64()?)))
                .collect()
        })
        .unwrap_or_default();
    Some(Entry {
        bin,
        git_commit: v
            .get("git_commit")
            .and_then(|c| c.as_str())
            .unwrap_or("unknown")
            .to_string(),
        unix_ts: v.get("unix_ts").and_then(|t| t.as_f64()).unwrap_or(0.0) as u64,
        config,
        results,
    })
}

/// Verdict for one `(group, metric)` cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    Ok,
    Improved,
    Regressed,
    /// Group has one entry — nothing to compare against yet.
    New,
}

/// One compared metric of one config group.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub group: String,
    pub metric: String,
    pub direction: Direction,
    pub baseline: f64,
    pub candidate: f64,
    /// Relative change of the candidate vs the baseline, signed so that
    /// positive is always *better* (throughput up, latency down).
    pub gain: f64,
    pub verdict: Verdict,
}

/// Default baseline-pool width for [`compare_history`].
pub const DEFAULT_WINDOW: usize = 5;

/// Compare the last (candidate) entry of every `(bin, config)` group in a
/// history against the per-metric **best of the up-to-`window` preceding
/// entries** (`window = 0` uses the whole preceding history as the pool).
/// `threshold` is the relative loss past which a cell counts as regressed
/// (0.5 = candidate may be up to 50% worse than the pool's best before
/// the gate trips). A metric with no usable pool value (single-entry
/// group, or every pool value zero/non-finite) is reported as
/// [`Verdict::New`] and never fails the gate.
pub fn compare_history(entries: &[Entry], threshold: f64, window: usize) -> Vec<Comparison> {
    let mut groups: BTreeMap<String, Vec<&Entry>> = BTreeMap::new();
    for e in entries {
        groups.entry(e.group_key()).or_default().push(e);
    }
    let mut out = Vec::new();
    for (key, group) in &groups {
        let candidate = group[group.len() - 1];
        let pool = &group[..group.len() - 1];
        let pool = if window == 0 {
            pool
        } else {
            &pool[pool.len().saturating_sub(window)..]
        };
        for (metric, cand_v) in &candidate.results {
            let Some(direction) = metric_direction(metric) else {
                continue;
            };
            if !cand_v.is_finite() {
                continue;
            }
            let mut best: Option<f64> = None;
            for e in pool {
                let Some(&(_, v)) = e.results.iter().find(|(m, _)| m == metric) else {
                    continue;
                };
                if !v.is_finite() || v <= 0.0 {
                    continue;
                }
                best = Some(match (best, direction) {
                    (None, _) => v,
                    (Some(b), Direction::HigherBetter) => b.max(v),
                    (Some(b), Direction::LowerBetter) => b.min(v),
                });
            }
            let Some(base_v) = best else {
                out.push(Comparison {
                    group: key.clone(),
                    metric: metric.clone(),
                    direction,
                    baseline: *cand_v,
                    candidate: *cand_v,
                    gain: 0.0,
                    verdict: Verdict::New,
                });
                continue;
            };
            let gain = match direction {
                Direction::HigherBetter => cand_v / base_v - 1.0,
                Direction::LowerBetter => base_v / cand_v.max(f64::MIN_POSITIVE) - 1.0,
            };
            let verdict = if gain < -threshold {
                Verdict::Regressed
            } else if gain > threshold {
                Verdict::Improved
            } else {
                Verdict::Ok
            };
            out.push(Comparison {
                group: key.clone(),
                metric: metric.clone(),
                direction,
                baseline: base_v,
                candidate: *cand_v,
                gain,
                verdict,
            });
        }
    }
    out
}

/// True when any cell regressed past the threshold.
pub fn has_regressions(comps: &[Comparison]) -> bool {
    comps.iter().any(|c| c.verdict == Verdict::Regressed)
}

/// Aligned text report for one history's comparisons. Regressions first,
/// then improvements; unremarkable cells are summarized in one line unless
/// `verbose`.
pub fn render_report(name: &str, comps: &[Comparison], threshold: f64, verbose: bool) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let regressed: Vec<_> = comps
        .iter()
        .filter(|c| c.verdict == Verdict::Regressed)
        .collect();
    let improved: Vec<_> = comps
        .iter()
        .filter(|c| c.verdict == Verdict::Improved)
        .collect();
    let new = comps.iter().filter(|c| c.verdict == Verdict::New).count();
    let ok = comps.iter().filter(|c| c.verdict == Verdict::Ok).count();
    let _ = writeln!(
        out,
        "{name}: {} cells — {} regressed, {} improved, {ok} within ±{:.0}%, {new} new",
        comps.len(),
        regressed.len(),
        improved.len(),
        threshold * 100.0
    );
    let mut detail = |tag: &str, list: &[&Comparison]| {
        for c in list {
            let _ = writeln!(
                out,
                "  {tag} {:<40} {:<18} {:>12.4} -> {:>12.4}  ({:+.1}%)",
                c.group,
                c.metric,
                c.baseline,
                c.candidate,
                c.gain * 100.0
            );
        }
    };
    detail("REGRESSED", &regressed);
    detail("improved ", &improved);
    if verbose {
        let rest: Vec<_> = comps
            .iter()
            .filter(|c| matches!(c.verdict, Verdict::Ok | Verdict::New))
            .collect();
        detail("         ", &rest);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(bin: &str, kernel: &str, threads: u32, gflops: f64, ms: f64) -> String {
        format!(
            r#"{{"bin":"{bin}","git_commit":"c0ffee","unix_ts":1700000000,"seed":42,"config":{{"kernel":"{kernel}","threads":"{threads}"}},"phases":[],"counters":{{}},"results":{{"gflops":{gflops},"ms_per_call":{ms},"lambda":0.5}}}}"#
        )
    }

    #[test]
    fn directions_from_metric_names() {
        assert_eq!(metric_direction("gflops"), Some(Direction::HigherBetter));
        assert_eq!(
            metric_direction("speedup_vs_naive"),
            Some(Direction::HigherBetter)
        );
        assert_eq!(metric_direction("mean_auc"), Some(Direction::HigherBetter));
        assert_eq!(
            metric_direction("ms_per_call"),
            Some(Direction::LowerBetter)
        );
        assert_eq!(metric_direction("fit_secs"), Some(Direction::LowerBetter));
        assert_eq!(metric_direction("peak_bytes"), Some(Direction::LowerBetter));
        assert_eq!(metric_direction("lambda"), None);
        assert_eq!(
            metric_direction("rms"),
            None,
            "substring of a word is not a match"
        );
    }

    #[test]
    fn parse_history_skips_garbage_lines() {
        let text = format!(
            "{}\nnot json at all\n{{\"truncated\":\n{}\n",
            line("kernel_scaling", "blocked", 4, 20.0, 1.0),
            line("kernel_scaling", "blocked", 4, 21.0, 0.9),
        );
        let (entries, skipped) = parse_history(&text);
        assert_eq!(entries.len(), 2);
        assert_eq!(skipped, 2);
        assert_eq!(entries[0].bin, "kernel_scaling");
        assert_eq!(entries[0].git_commit, "c0ffee");
        assert_eq!(entries[0].unix_ts, 1700000000);
        assert!(entries[0]
            .config
            .contains(&("kernel".to_string(), "blocked".to_string())));
    }

    #[test]
    fn stable_history_passes() {
        let text = [
            line("kernel_scaling", "blocked", 4, 20.0, 1.0),
            line("kernel_scaling", "naive", 1, 2.0, 10.0),
            line("kernel_scaling", "blocked", 4, 21.5, 0.93),
            line("kernel_scaling", "naive", 1, 1.9, 10.5),
        ]
        .join("\n");
        let (entries, _) = parse_history(&text);
        let comps = compare_history(&entries, 0.5, DEFAULT_WINDOW);
        assert!(!has_regressions(&comps));
        // Two groups × two directional metrics (lambda has no direction).
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.verdict == Verdict::Ok));
    }

    #[test]
    fn injected_slowdown_trips_the_gate() {
        let text = [
            line("kernel_scaling", "blocked", 4, 20.0, 1.0),
            // 10x slower / 10x fewer gflops than the baseline.
            line("kernel_scaling", "blocked", 4, 2.0, 10.0),
        ]
        .join("\n");
        let (entries, _) = parse_history(&text);
        let comps = compare_history(&entries, 0.5, DEFAULT_WINDOW);
        assert!(has_regressions(&comps));
        let bad: Vec<_> = comps
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
            .collect();
        assert_eq!(
            bad.len(),
            2,
            "both gflops and ms_per_call regress: {comps:?}"
        );
        let report = render_report("BENCH_kernel_scaling.json", &comps, 0.5, false);
        assert!(report.contains("REGRESSED"), "{report}");
        assert!(report.contains("gflops"), "{report}");
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let text = [
            line("kernel_scaling", "blocked", 4, 2.0, 10.0),
            line("kernel_scaling", "blocked", 4, 20.0, 1.0),
        ]
        .join("\n");
        let (entries, _) = parse_history(&text);
        let comps = compare_history(&entries, 0.5, DEFAULT_WINDOW);
        assert!(!has_regressions(&comps));
        assert!(comps.iter().all(|c| c.verdict == Verdict::Improved));
    }

    #[test]
    fn single_entry_groups_are_new_not_failures() {
        let (entries, _) = parse_history(&line("kernel_scaling", "blocked", 8, 30.0, 0.6));
        let comps = compare_history(&entries, 0.5, DEFAULT_WINDOW);
        assert!(!has_regressions(&comps));
        assert!(comps.iter().all(|c| c.verdict == Verdict::New));
    }

    #[test]
    fn baseline_is_the_best_of_the_last_k_entries() {
        // gflops drifts around 10 with one fast outlier (21) in the middle.
        let text = [
            line("kernel_scaling", "blocked", 4, 10.0, 1.0),
            line("kernel_scaling", "blocked", 4, 10.2, 1.0),
            line("kernel_scaling", "blocked", 4, 21.0, 1.0),
            line("kernel_scaling", "blocked", 4, 10.1, 1.0),
            line("kernel_scaling", "blocked", 4, 9.9, 1.0),
            line("kernel_scaling", "blocked", 4, 9.8, 1.0), // candidate
        ]
        .join("\n");
        let (entries, _) = parse_history(&text);

        // Window 5 sees the 21.0 outlier: 9.8/21 − 1 ≈ −53% → regressed.
        let comps = compare_history(&entries, 0.5, 5);
        let g = comps.iter().find(|c| c.metric == "gflops").unwrap();
        assert_eq!(g.verdict, Verdict::Regressed, "{comps:?}");
        assert_eq!(g.baseline, 21.0, "pool best, not last entry");

        // Window 2 ages it out: best of [10.1, 9.9] is 10.1 → within 50%.
        let comps = compare_history(&entries, 0.5, 2);
        let g = comps.iter().find(|c| c.metric == "gflops").unwrap();
        assert_eq!(g.verdict, Verdict::Ok, "{comps:?}");
        assert_eq!(g.baseline, 10.1);

        // Window 0 means the whole preceding history is the pool.
        let comps = compare_history(&entries, 0.5, 0);
        let g = comps.iter().find(|c| c.metric == "gflops").unwrap();
        assert_eq!(g.baseline, 21.0);
    }

    #[test]
    fn lower_is_better_pool_picks_the_minimum() {
        let text = [
            line("kernel_scaling", "blocked", 4, 10.0, 2.0),
            line("kernel_scaling", "blocked", 4, 10.0, 0.5),
            line("kernel_scaling", "blocked", 4, 10.0, 3.0),
            line("kernel_scaling", "blocked", 4, 10.0, 0.9), // candidate
        ]
        .join("\n");
        let (entries, _) = parse_history(&text);
        let comps = compare_history(&entries, 0.5, DEFAULT_WINDOW);
        let ms = comps.iter().find(|c| c.metric == "ms_per_call").unwrap();
        assert_eq!(ms.baseline, 0.5, "best latency in the pool is the bar");
        // 0.5/0.9 − 1 ≈ −44% → within the 50% threshold.
        assert_eq!(ms.verdict, Verdict::Ok, "{comps:?}");
    }

    #[test]
    fn different_configs_never_cross_compare() {
        // naive@1 is 10x slower than blocked@4 — but they are different
        // groups, so no comparison happens across them.
        let text = [
            line("kernel_scaling", "blocked", 4, 20.0, 1.0),
            line("kernel_scaling", "naive", 1, 2.0, 10.0),
        ]
        .join("\n");
        let (entries, _) = parse_history(&text);
        let comps = compare_history(&entries, 0.5, DEFAULT_WINDOW);
        assert!(!has_regressions(&comps));
        assert!(comps.iter().all(|c| c.verdict == Verdict::New));
    }

    #[test]
    fn zero_and_nonfinite_pool_values_leave_the_metric_new() {
        let mk = |g: f64| {
            format!(
                r#"{{"bin":"b","git_commit":"x","unix_ts":1,"seed":0,"config":{{}},"phases":[],"counters":{{}},"results":{{"gflops":{g}}}}}"#
            )
        };
        let text = format!("{}\n{}", mk(0.0), mk(5.0));
        let (entries, _) = parse_history(&text);
        let comps = compare_history(&entries, 0.5, DEFAULT_WINDOW);
        assert_eq!(comps.len(), 1, "{comps:?}");
        assert_eq!(
            comps[0].verdict,
            Verdict::New,
            "a zero-only pool cannot set a bar; the cell is new, not a failure"
        );
        assert!(!has_regressions(&comps));
    }
}
