//! Model zoo + uniform fit/eval used by every experiment binary.
//!
//! All models — baselines and RCKT variants — are compared on the same
//! prediction task: the final response of each test window given the rest
//! of the window's history (the paper's per-student prediction setting,
//! which RCKT's counterfactual inference targets natively).

use crate::args::ExpArgs;
use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, Batch, Dataset, Fold, Window};
use rckt_metrics::{accuracy, auc};
use rckt_models::attn_kt::{AttnKt, AttnKtConfig, AttnVariant};
use rckt_models::bkt::Bkt;
use rckt_models::common::{eval_positions, Prediction};
use rckt_models::dimkt::{Dimkt, DimktConfig};
use rckt_models::dkt::{Dkt, DktConfig};
use rckt_models::ikt::Ikt;
use rckt_models::model::TrainConfig;
use rckt_models::qikt::{Qikt, QiktConfig};
use rckt_models::KtModel;

/// Every model the experiments can run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelSpec {
    Bkt,
    Pfa,
    Ktm,
    Dkvmn,
    Saint,
    Dkt,
    Sakt,
    SaktPlus,
    Akt,
    Dimkt,
    Ikt,
    Qikt,
    RcktDkt,
    RcktSakt,
    RcktAkt,
}

impl ModelSpec {
    pub fn name(self) -> &'static str {
        match self {
            ModelSpec::Bkt => "BKT",
            ModelSpec::Pfa => "PFA",
            ModelSpec::Ktm => "KTM",
            ModelSpec::Dkvmn => "DKVMN",
            ModelSpec::Saint => "SAINT",
            ModelSpec::Dkt => "DKT",
            ModelSpec::Sakt => "SAKT",
            ModelSpec::SaktPlus => "SAKT+",
            ModelSpec::Akt => "AKT",
            ModelSpec::Dimkt => "DIMKT",
            ModelSpec::Ikt => "IKT",
            ModelSpec::Qikt => "QIKT",
            ModelSpec::RcktDkt => "RCKT-DKT",
            ModelSpec::RcktSakt => "RCKT-SAKT",
            ModelSpec::RcktAkt => "RCKT-AKT",
        }
    }

    /// The paper's Table IV line-up (six baselines + three RCKT variants).
    pub fn table4_lineup() -> Vec<ModelSpec> {
        vec![
            ModelSpec::Dkt,
            ModelSpec::Sakt,
            ModelSpec::Akt,
            ModelSpec::Dimkt,
            ModelSpec::Ikt,
            ModelSpec::Qikt,
            ModelSpec::RcktDkt,
            ModelSpec::RcktSakt,
            ModelSpec::RcktAkt,
        ]
    }
}

/// A constructed model ready for fit/predict; RCKT keeps its concrete type
/// so targeted (last-position) inference stays cheap.
pub enum BuiltModel {
    Base(Box<dyn KtModel>),
    Rckt(Box<Rckt>),
}

/// Construct a model for a dataset. `rckt_cfg` customizes the RCKT variants
/// (ablations, λ sweeps); `None` uses defaults at `args.dim`.
pub fn build_model(
    spec: ModelSpec,
    ds: &Dataset,
    args: &ExpArgs,
    rckt_cfg: Option<RcktConfig>,
) -> BuiltModel {
    let (nq, nk) = (ds.num_questions(), ds.num_concepts());
    let d = args.dim;
    let seed = args.seed;
    match spec {
        ModelSpec::Bkt => BuiltModel::Base(Box::new(Bkt::new())),
        ModelSpec::Pfa => {
            BuiltModel::Base(Box::new(rckt_models::pfa::Pfa::new(Default::default())))
        }
        ModelSpec::Ktm => {
            BuiltModel::Base(Box::new(rckt_models::ktm::Ktm::new(Default::default())))
        }
        ModelSpec::Ikt => BuiltModel::Base(Box::new(Ikt::new())),
        ModelSpec::Dkvmn => BuiltModel::Base(Box::new(rckt_models::dkvmn::Dkvmn::new(
            nq,
            nk,
            rckt_models::dkvmn::DkvmnConfig {
                dim: d,
                value_dim: d,
                seed,
                ..Default::default()
            },
        ))),
        ModelSpec::Saint => BuiltModel::Base(Box::new(rckt_models::saint::Saint::new(
            nq,
            nk,
            rckt_models::saint::SaintConfig {
                dim: d,
                seed,
                ..Default::default()
            },
        ))),
        ModelSpec::Dkt => BuiltModel::Base(Box::new(Dkt::new(
            nq,
            nk,
            DktConfig {
                dim: d,
                lr: 2e-3,
                seed,
                ..Default::default()
            },
        ))),
        ModelSpec::Sakt | ModelSpec::SaktPlus | ModelSpec::Akt => {
            let variant = match spec {
                ModelSpec::Sakt => AttnVariant::Sakt,
                ModelSpec::SaktPlus => AttnVariant::SaktPlus,
                _ => AttnVariant::Akt,
            };
            BuiltModel::Base(Box::new(AttnKt::new(
                variant,
                nq,
                nk,
                AttnKtConfig {
                    dim: d,
                    lr: 2e-3,
                    seed,
                    ..Default::default()
                },
            )))
        }
        ModelSpec::Dimkt => BuiltModel::Base(Box::new(Dimkt::new(
            nq,
            nk,
            DimktConfig {
                dim: d,
                lr: 2e-3,
                seed,
                ..Default::default()
            },
        ))),
        ModelSpec::Qikt => BuiltModel::Base(Box::new(Qikt::new(
            nq,
            nk,
            QiktConfig {
                dim: d,
                lr: 2e-3,
                seed,
                ..Default::default()
            },
        ))),
        ModelSpec::RcktDkt | ModelSpec::RcktSakt | ModelSpec::RcktAkt => {
            let backbone = match spec {
                ModelSpec::RcktDkt => Backbone::Dkt,
                ModelSpec::RcktSakt => Backbone::Sakt,
                _ => Backbone::Akt,
            };
            let cfg = rckt_cfg.unwrap_or_else(|| RcktConfig {
                dim: d,
                lr: 2e-3,
                seed,
                ..Default::default()
            });
            BuiltModel::Rckt(Box::new(Rckt::new(backbone, nq, nk, cfg)))
        }
    }
}

impl BuiltModel {
    pub fn name(&self) -> String {
        match self {
            BuiltModel::Base(m) => m.name(),
            BuiltModel::Rckt(m) => m.name(),
        }
    }

    pub fn fit(&mut self, ws: &[Window], fold: &Fold, ds: &Dataset, cfg: &TrainConfig) {
        match self {
            BuiltModel::Base(m) => {
                m.fit(ws, &fold.train, &fold.val, &ds.q_matrix, cfg);
            }
            BuiltModel::Rckt(m) => {
                m.fit(ws, &fold.train, &fold.val, &ds.q_matrix, cfg);
            }
        }
    }

    /// Final-response predictions over batches.
    pub fn last_preds(&self, batches: &[Batch]) -> Vec<Prediction> {
        match self {
            BuiltModel::Rckt(m) => batches.iter().flat_map(|b| m.predict_last(b)).collect(),
            BuiltModel::Base(m) => batches
                .iter()
                .flat_map(|b| last_target_predictions(m.as_ref(), b))
                .collect(),
        }
    }

    /// Predictions at strided target positions (`t = stride−1, 2·stride−1,
    /// …` plus each sequence's final response) — denser than final-response
    /// only, still tractable for RCKT's per-target inference.
    pub fn stride_preds(&self, batches: &[Batch], stride: usize) -> Vec<Prediction> {
        self.stride_preds_from(batches, stride, 0)
    }

    /// [`BuiltModel::stride_preds`] restricted to targets with at least
    /// `min_t` past responses (short windows keep their final response).
    pub fn stride_preds_from(
        &self,
        batches: &[Batch],
        stride: usize,
        min_t: usize,
    ) -> Vec<Prediction> {
        let mut out = Vec::new();
        for b in batches {
            let wanted = stride_targets(b, stride, min_t);
            match self {
                BuiltModel::Base(m) => {
                    let pos = eval_positions(b);
                    for (p, i) in m.predict(b).into_iter().zip(pos) {
                        if wanted.contains(&i) {
                            out.push(p);
                        }
                    }
                }
                BuiltModel::Rckt(m) => out.extend(m.predict_stride_from(b, stride, min_t)),
            }
        }
        out
    }
}

/// Flat b-major indices of the strided evaluation targets of a batch.
fn stride_targets(b: &Batch, stride: usize, min_t: usize) -> std::collections::BTreeSet<usize> {
    let mut wanted = std::collections::BTreeSet::new();
    for bb in 0..b.batch {
        let len = b.seq_len(bb);
        let mut t = stride.max(2) - 1;
        while t < len {
            if t >= min_t {
                wanted.insert(bb * b.t_len + t);
            }
            t += stride.max(2);
        }
        if len >= 2 {
            wanted.insert(bb * b.t_len + len - 1);
        }
    }
    wanted
}

/// Filter a conventional model's all-position predictions down to each
/// sequence's final response.
pub fn last_target_predictions(model: &dyn KtModel, batch: &Batch) -> Vec<Prediction> {
    let preds = model.predict(batch);
    let pos = eval_positions(batch);
    let lasts: Vec<usize> = (0..batch.batch)
        .map(|b| b * batch.t_len + batch.seq_len(b) - 1)
        .collect();
    preds
        .into_iter()
        .zip(pos)
        .filter(|(_, i)| lasts.contains(i))
        .map(|(p, _)| p)
        .collect()
}

/// (AUC, ACC) of final-response predictions.
pub fn evaluate_last_any(model: &BuiltModel, batches: &[Batch]) -> (f64, f64) {
    let preds = model.last_preds(batches);
    let scores: Vec<f32> = preds.iter().map(|p| p.prob).collect();
    let labels: Vec<bool> = preds.iter().map(|p| p.label).collect();
    (auc(&scores, &labels), accuracy(&scores, &labels, 0.5))
}

/// (AUC, ACC) at strided targets — the experiments' test metric. Targets
/// keep at least half the window as history (plus each sequence's final
/// response), matching the paper's full-record per-student setting.
pub fn evaluate_stride_any(model: &BuiltModel, batches: &[Batch], stride: usize) -> (f64, f64) {
    let min_t = batches.first().map(|b| b.t_len / 2).unwrap_or(0);
    let preds = model.stride_preds_from(batches, stride, min_t);
    let scores: Vec<f32> = preds.iter().map(|p| p.prob).collect();
    let labels: Vec<bool> = preds.iter().map(|p| p.label).collect();
    (auc(&scores, &labels), accuracy(&scores, &labels, 0.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_data::preprocess::Window;
    use rckt_data::QMatrix;

    fn batch_with_lens(lens: &[usize], t_len: usize) -> Batch {
        let qm = QMatrix::new(vec![vec![0]], 1);
        let ws: Vec<Window> = lens
            .iter()
            .map(|&l| Window {
                student: 0,
                questions: vec![0; t_len],
                correct: vec![1; t_len],
                len: l,
            })
            .collect();
        let refs: Vec<&Window> = ws.iter().collect();
        Batch::from_windows(&refs, &qm)
    }

    #[test]
    fn stride_targets_include_stride_points_and_final() {
        let b = batch_with_lens(&[20], 20);
        let w = stride_targets(&b, 8, 0);
        // t = 7, 15 and the final response 19
        assert_eq!(w.into_iter().collect::<Vec<_>>(), vec![7, 15, 19]);
    }

    #[test]
    fn stride_targets_respect_min_t() {
        let b = batch_with_lens(&[20], 20);
        let w = stride_targets(&b, 8, 10);
        assert_eq!(w.into_iter().collect::<Vec<_>>(), vec![15, 19]);
    }

    #[test]
    fn short_windows_keep_their_final_response() {
        let b = batch_with_lens(&[5], 20);
        let w = stride_targets(&b, 8, 10);
        // no stride point reaches min_t, but the final response survives
        assert_eq!(w.into_iter().collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn multi_sequence_offsets_are_b_major() {
        let b = batch_with_lens(&[10, 16], 16);
        let w = stride_targets(&b, 8, 0);
        assert!(w.contains(&7)); // seq 0, t=7
        assert!(w.contains(&9)); // seq 0 final
        assert!(w.contains(&(16 + 7))); // seq 1, t=7
        assert!(w.contains(&(16 + 15))); // seq 1 final
    }

    #[test]
    fn lineup_has_six_baselines_then_three_rckt() {
        let lineup = ModelSpec::table4_lineup();
        assert_eq!(lineup.len(), 9);
        assert!(lineup[..6].iter().all(|m| !m.name().starts_with("RCKT")));
        assert!(lineup[6..].iter().all(|m| m.name().starts_with("RCKT")));
    }
}

/// Outcome of one model × dataset run across folds.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub model: String,
    pub dataset: String,
    pub auc_folds: Vec<f64>,
    pub acc_folds: Vec<f64>,
    pub seconds: f64,
    /// Provenance + per-phase timings + profiling counters for this run.
    pub manifest: rckt_obs::RunManifest,
}

impl RunResult {
    pub fn auc_mean(&self) -> f64 {
        mean(&self.auc_folds)
    }

    pub fn acc_mean(&self) -> f64 {
        mean(&self.acc_folds)
    }

    /// Append this run's manifest to a JSON-lines history file (one object
    /// per run), creating parents as needed.
    pub fn append_history(&self, path: &str) -> std::io::Result<()> {
        self.manifest.append_jsonl(path)
    }
}

fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Run one model spec over the first `args.folds` folds of a dataset.
pub fn fit_and_eval(
    spec: ModelSpec,
    ds: &Dataset,
    ws: &[Window],
    folds: &[Fold],
    args: &ExpArgs,
    rckt_cfg: Option<RcktConfig>,
) -> RunResult {
    let cfg = TrainConfig {
        max_epochs: args.epochs,
        patience: args.patience,
        batch_size: args.batch,
        clip_norm: 5.0,
        verbose: args.verbose,
        seed: args.seed,
    };
    let phases_before = rckt_obs::phases_snapshot();
    let start = std::time::Instant::now();
    let mut auc_folds = Vec::new();
    let mut acc_folds = Vec::new();
    for fold in folds.iter().take(args.folds) {
        let mut model = build_model(spec, ds, args, rckt_cfg.clone());
        {
            let _s = rckt_obs::span("bench.fit");
            model.fit(ws, fold, ds, &cfg);
        }
        let test = make_batches(ws, &fold.test, &ds.q_matrix, args.batch);
        // every 8th position plus the final response: ~7 eval points per
        // window, same task for every model
        let (a, c) = {
            let _s = rckt_obs::span("bench.eval");
            evaluate_stride_any(&model, &test, 8)
        };
        auc_folds.push(a);
        acc_folds.push(c);
    }
    let seconds = start.elapsed().as_secs_f64();
    let grad_shards = rckt_cfg
        .as_ref()
        .map(|c| c.grad_shards)
        .unwrap_or_else(|| RcktConfig::default().grad_shards);
    let manifest =
        rckt_obs::RunManifest::capture(&rckt_obs::bin_name(), args.seed, Some(&phases_before))
            .config("model", spec.name())
            .config("dataset", &ds.name)
            .config("scale", args.scale)
            .config("folds", args.folds)
            .config("epochs", args.epochs)
            .config("dim", args.dim)
            .config("batch", args.batch)
            .config("threads", args.threads_in_use())
            .config("kernel", rckt_tensor::kernels::kernel_variant_name())
            .config("grad_shards", grad_shards)
            .result("auc_mean", mean(&auc_folds))
            .result("acc_mean", mean(&acc_folds))
            .result("seconds", seconds);
    RunResult {
        model: spec.name().to_string(),
        dataset: ds.name.clone(),
        auc_folds,
        acc_folds,
        seconds,
        manifest,
    }
}
