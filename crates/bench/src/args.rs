//! Tiny flag parser shared by the experiment binaries (keeps the workspace
//! off heavyweight CLI dependencies).

/// Common experiment knobs. Every binary accepts:
///
/// ```text
/// --scale <f64>    student-count multiplier on the dataset presets (default 0.5)
/// --folds <n>      cross-validation folds to actually run (default 2, max 5)
/// --epochs <n>     max training epochs (default 15)
/// --patience <n>   early-stopping patience (default 6)
/// --dim <n>        hidden dimension (default 32)
/// --batch <n>      batch size (default 16)
/// --seed <n>       global seed (default 42)
/// --threads <n>    worker threads for the rckt-tensor pool (default: the
///                  RCKT_THREADS env var, else the machine's parallelism);
///                  results are bit-identical for any value
/// --full           paper-faithful effort: scale 1.0, 5 folds, 40 epochs, patience 10
/// --verbose        per-epoch logs to stderr
/// ```
///
/// plus the shared observability flags (extracted by
/// [`rckt_obs::ObsOptions::take_from_args`] before the loop above):
///
/// ```text
/// --log-level <l>       event verbosity: off|info|debug|trace (default info)
/// --log-json <path>     also write events as JSON lines to <path>
/// --profile             collect FLOP/CF counters; print a summary at exit
/// --profile-out <path>  write the --profile report to <path> instead of stdout
/// --trace-out <path>    write a Chrome trace-event timeline (chrome://tracing)
/// --serve-metrics <p>   serve /metrics, /healthz, /runs on 127.0.0.1:<p>
/// ```
#[derive(Clone, Debug)]
pub struct ExpArgs {
    pub scale: f64,
    pub folds: usize,
    pub epochs: usize,
    pub patience: usize,
    pub dim: usize,
    pub batch: usize,
    pub seed: u64,
    /// Requested pool width; `0` means "not set" (RCKT_THREADS env or the
    /// machine's parallelism decides). Applied by [`ExpArgs::parse`].
    pub threads: usize,
    pub verbose: bool,
    /// Observability switches (already applied by [`ExpArgs::parse`]).
    pub obs: rckt_obs::ObsOptions,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 0.5,
            folds: 2,
            epochs: 15,
            patience: 6,
            dim: 32,
            batch: 16,
            seed: 42,
            threads: 0,
            verbose: false,
            obs: rckt_obs::ObsOptions::default(),
        }
    }
}

impl ExpArgs {
    /// Parse from `std::env::args`, exiting with usage on error. Also
    /// extracts and applies the observability flags ([`rckt_obs::init`]),
    /// so binaries get `--log-level`/`--log-json`/`--profile` for free.
    pub fn parse() -> Self {
        let mut raw: Vec<String> = std::env::args().skip(1).collect();
        let obs = rckt_obs::ObsOptions::take_from_args(&mut raw).unwrap_or_else(|e| die(&e));
        let mut out = Self::parse_from(raw);
        if let Err(e) = rckt_obs::init(&obs) {
            die(&format!("cannot initialize logging: {e}"));
        }
        if out.threads > 0 {
            rckt_tensor::pool::set_threads(out.threads);
        }
        out.obs = obs;
        // Stamp run identity onto the Prometheus `rckt_run_info` gauge so
        // scrapes can tell configurations apart.
        rckt_obs::set_run_label("bin", rckt_obs::bin_name());
        rckt_obs::set_run_label("seed", out.seed);
        rckt_obs::set_run_label("threads", out.threads_in_use());
        rckt_obs::set_run_label("kernel", rckt_tensor::kernels::kernel_variant_name());
        rckt_obs::set_run_label("cpu", rckt_tensor::kernels::cpu_features());
        out
    }

    /// The pool width actually in effect (after `--threads`, the
    /// `RCKT_THREADS` env var, and hardware detection) — what run
    /// manifests should record.
    pub fn threads_in_use(&self) -> usize {
        rckt_tensor::pool::threads()
    }

    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut num = |name: &str| -> f64 {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die(&format!("{name} needs a numeric value")))
            };
            match flag.as_str() {
                "--scale" => out.scale = num("--scale"),
                "--folds" => out.folds = num("--folds") as usize,
                "--epochs" => out.epochs = num("--epochs") as usize,
                "--patience" => out.patience = num("--patience") as usize,
                "--dim" => out.dim = num("--dim") as usize,
                "--batch" => out.batch = num("--batch") as usize,
                "--seed" => out.seed = num("--seed") as u64,
                "--threads" => out.threads = num("--threads") as usize,
                "--full" => {
                    out.scale = 1.0;
                    out.folds = 5;
                    out.epochs = 40;
                    out.patience = 10;
                }
                "--verbose" => out.verbose = true,
                "--help" | "-h" => die("see ExpArgs docs for flags"),
                other => die(&format!("unknown flag {other}")),
            }
        }
        if out.folds == 0 || out.folds > 5 {
            die("--folds must be 1..=5");
        }
        out
    }

    /// End-of-run hook for every binary: write the `--profile` report
    /// (stdout or `--profile-out`), flush the trace file, stop the
    /// telemetry server, and close the JSON-lines event sink.
    pub fn finish(&self) {
        self.obs.finish();
    }
}

fn die(msg: &str) -> ! {
    eprintln!("usage error: {msg}");
    eprintln!(
        "flags: --scale f --folds n --epochs n --patience n --dim n --batch n --seed n --threads n --full --verbose"
    );
    eprintln!(
        "       --log-level off|info|debug|trace --log-json path --profile --profile-out path"
    );
    eprintln!("       --trace-out path --serve-metrics port");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ExpArgs {
        ExpArgs::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse("");
        assert_eq!(a.folds, 2);
        let a = parse("--scale 0.25 --folds 3 --dim 64 --verbose");
        assert!((a.scale - 0.25).abs() < 1e-12);
        assert_eq!(a.folds, 3);
        assert_eq!(a.dim, 64);
        assert!(a.verbose);
    }

    #[test]
    fn threads_flag_parses_without_applying() {
        // parse_from records the request; only parse() touches the pool
        assert_eq!(parse("").threads, 0);
        assert_eq!(parse("--threads 3").threads, 3);
    }

    #[test]
    fn obs_flags_strip_before_parse() {
        let mut raw: Vec<String> = "--scale 0.25 --log-level off --profile --folds 3"
            .split_whitespace()
            .map(String::from)
            .collect();
        let obs = rckt_obs::ObsOptions::take_from_args(&mut raw).unwrap();
        let a = ExpArgs::parse_from(raw);
        assert!((a.scale - 0.25).abs() < 1e-12);
        assert_eq!(a.folds, 3);
        assert_eq!(obs.level, rckt_obs::Level::Off);
        assert!(obs.profile);
    }

    #[test]
    fn full_preset() {
        let a = parse("--full");
        assert_eq!(a.folds, 5);
        assert_eq!(a.epochs, 40);
        assert!((a.scale - 1.0).abs() < 1e-12);
    }
}
