//! Forward-pass throughput of the three bidirectional encoders RCKT adapts
//! (BiLSTM / bi-SAKT / bi-AKT) at paper batch shapes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rckt_models::{BiAttnEncoder, BiEncoder, BiLstmEncoder};
use rckt_tensor::{Graph, ParamStore, Shape};

const B: usize = 16;
const T: usize = 50;
const D: usize = 32;

fn data(rng: &mut SmallRng) -> (Vec<f32>, Vec<f32>, Vec<bool>) {
    let e: Vec<f32> = (0..B * T * D)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let a: Vec<f32> = (0..B * T * D)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let valid = vec![true; B * T];
    (e, a, valid)
}

fn run_encoder<E: BiEncoder>(
    enc: &E,
    store: &ParamStore,
    e: &[f32],
    a: &[f32],
    valid: &[bool],
) -> f32 {
    let mut rng = SmallRng::seed_from_u64(0);
    let mut g = Graph::new();
    let et = g.input(e.to_vec(), Shape::matrix(B * T, D));
    let at = g.input(a.to_vec(), Shape::matrix(B * T, D));
    let h = enc.encode(&mut g, store, et, at, B, T, valid, false, &mut rng);
    g.data(h)[0]
}

fn bench_encoders(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let (e, a, valid) = data(&mut rng);
    let mut group = c.benchmark_group("bi_encoders_16x50x32");
    group.sample_size(20);

    let mut store = ParamStore::new();
    let lstm = BiLstmEncoder::new(&mut store, "lstm", D, 1, 0.0, &mut rng);
    group.bench_function("BiLSTM(DKT)", |b| {
        b.iter(|| black_box(run_encoder(&lstm, &store, &e, &a, &valid)))
    });

    let mut store = ParamStore::new();
    let sakt = BiAttnEncoder::new(&mut store, "sakt", D, 4, 1, false, 0.0, 200, &mut rng);
    group.bench_function("BiAttn(SAKT)", |b| {
        b.iter(|| black_box(run_encoder(&sakt, &store, &e, &a, &valid)))
    });

    let mut store = ParamStore::new();
    let akt = BiAttnEncoder::new(&mut store, "akt", D, 4, 1, true, 0.0, 200, &mut rng);
    group.bench_function("BiAttn(AKT,monotonic)", |b| {
        b.iter(|| black_box(run_encoder(&akt, &store, &e, &a, &valid)))
    });
    group.finish();
}

criterion_group!(benches, bench_encoders);
criterion_main!(benches);
