//! Synthetic-data substrate throughput: generation, windowing, batching.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rckt_data::{make_batches, windows, SyntheticSpec};

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    group.bench_function("generate_assist09_x0.25", |b| {
        b.iter(|| black_box(SyntheticSpec::assist09().scaled(0.25).generate()))
    });

    let ds = SyntheticSpec::assist09().scaled(0.5).generate();
    group.bench_function("window_50", |b| b.iter(|| black_box(windows(&ds, 50, 5))));

    let ws = windows(&ds, 50, 5);
    let idx: Vec<usize> = (0..ws.len()).collect();
    group.bench_function("batch_16", |b| {
        b.iter(|| black_box(make_batches(&ws, &idx, &ds.q_matrix, 16)))
    });
    group.finish();
}

criterion_group!(benches, bench_datagen);
criterion_main!(benches);
