//! One optimization step per model at paper batch shapes — where the wall
//! clock of every table actually goes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, windows, SyntheticSpec};
use rckt_models::attn_kt::{AttnKt, AttnKtConfig, AttnVariant};
use rckt_models::dkt::{Dkt, DktConfig};
use rckt_models::SgdModel;

fn bench_training(c: &mut Criterion) {
    let ds = SyntheticSpec::assist09().scaled(0.1).generate();
    let ws = windows(&ds, 50, 5);
    let idx: Vec<usize> = (0..ws.len().min(16)).collect();
    let batches = make_batches(&ws, &idx, &ds.q_matrix, 16);
    let batch = &batches[0];
    let (nq, nk) = (ds.num_questions(), ds.num_concepts());

    let mut group = c.benchmark_group("train_step_16x50_d32");
    group.sample_size(10);

    let mut dkt = Dkt::new(
        nq,
        nk,
        DktConfig {
            dim: 32,
            ..Default::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(1);
    group.bench_function("DKT", |b| {
        b.iter(|| black_box(dkt.train_batch(batch, 5.0, &mut rng)))
    });

    let mut sakt = AttnKt::new(
        AttnVariant::Sakt,
        nq,
        nk,
        AttnKtConfig {
            dim: 32,
            ..Default::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(1);
    group.bench_function("SAKT", |b| {
        b.iter(|| black_box(sakt.train_batch(batch, 5.0, &mut rng)))
    });

    let mut akt = AttnKt::new(
        AttnVariant::Akt,
        nq,
        nk,
        AttnKtConfig {
            dim: 32,
            ..Default::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(1);
    group.bench_function("AKT", |b| {
        b.iter(|| black_box(akt.train_batch(batch, 5.0, &mut rng)))
    });

    let mut rckt = Rckt::new(
        Backbone::Dkt,
        nq,
        nk,
        RcktConfig {
            dim: 32,
            ..Default::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(1);
    group.bench_function("RCKT-DKT (7 passes)", |b| {
        b.iter(|| black_box(rckt.train_batch(batch, 5.0, &mut rng)))
    });

    let mut rckt = Rckt::new(
        Backbone::Akt,
        nq,
        nk,
        RcktConfig {
            dim: 32,
            ..Default::default()
        },
    );
    let mut rng = SmallRng::seed_from_u64(1);
    group.bench_function("RCKT-AKT (7 passes)", |b| {
        b.iter(|| black_box(rckt.train_batch(batch, 5.0, &mut rng)))
    });

    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
