//! Microbenchmarks for the autograd substrate: the primitive kernels and a
//! representative forward+backward composition.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rckt_tensor::{Graph, Shape};

fn rand_vec(rng: &mut SmallRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = rand_vec(&mut rng, n * n);
        let b = rand_vec(&mut rng, n * n);
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| {
                let mut g = Graph::new();
                let at = g.input(a.clone(), Shape::matrix(n, n));
                let bt = g.input(b.clone(), Shape::matrix(n, n));
                black_box(g.matmul(at, bt))
            })
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let x = rand_vec(&mut rng, 16 * 50 * 50);
    c.bench_function("softmax_16x50x50", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let xt = g.input(x.clone(), Shape::cube(16, 50, 50));
            black_box(g.softmax_last(xt))
        })
    });
}

fn bench_forward_backward(c: &mut Criterion) {
    // A two-layer MLP forward+backward at knowledge-tracing batch shapes.
    let (rows, din, dh) = (16 * 50, 64, 32);
    let mut rng = SmallRng::seed_from_u64(3);
    let x = rand_vec(&mut rng, rows * din);
    let w1 = rand_vec(&mut rng, din * dh);
    let w2 = rand_vec(&mut rng, dh);
    c.bench_function("mlp_forward_backward_800x64", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let xt = g.input(x.clone(), Shape::matrix(rows, din));
            let w1t = g.leaf_grad(w1.clone(), Shape::matrix(din, dh));
            let w2t = g.leaf_grad(w2.clone(), Shape::matrix(dh, 1));
            let h = g.matmul(xt, w1t);
            let h = g.relu(h);
            let z = g.matmul(h, w2t);
            let targets = vec![1.0; rows];
            let weights = vec![1.0; rows];
            let loss = g.bce_with_logits(z, &targets, &weights, rows as f32);
            g.backward(loss);
            black_box(g.value(loss))
        })
    });
}

criterion_group!(benches, bench_matmul, bench_softmax, bench_forward_backward);
criterion_main!(benches);
