//! Table VI as a microbenchmark: RCKT inference before (exact, t+2 passes)
//! vs after (approximate, 4 passes) the response influence approximation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, windows, SyntheticSpec};

fn bench_inference(c: &mut Criterion) {
    let ds = SyntheticSpec::assist09().scaled(0.1).generate();
    let ws = windows(&ds, 50, 5);
    let idx: Vec<usize> = (0..ws.len().min(16)).collect();
    let batches = make_batches(&ws, &idx, &ds.q_matrix, 16);
    let batch = &batches[0];

    for backbone in [Backbone::Dkt, Backbone::Akt] {
        let model = Rckt::new(
            backbone,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 32,
                ..Default::default()
            },
        );
        let name = match backbone {
            Backbone::Dkt => "DKT",
            Backbone::Sakt => "SAKT",
            Backbone::Akt => "AKT",
        };
        let mut group = c.benchmark_group(format!("rckt_{name}_inference_16seq"));
        group.sample_size(10);
        group.bench_function("approximate (after, 4 passes)", |b| {
            b.iter(|| black_box(model.predict_last(batch)))
        });
        group.bench_function("exact (before, t+2 passes)", |b| {
            b.iter(|| black_box(model.predict_exact_last(batch)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
