//! `rckt loadtest` — open-loop load generator for `rckt-serve`.
//!
//! Boots an in-process server over the given model (or an untrained one
//! built from a [`SyntheticSpec`] preset when `--model` is omitted) and
//! drives it with thousands of concurrent synthetic students. Each
//! student replays a session script drawn from the preset's generator —
//! so session lengths and correctness follow the preset's distribution —
//! as append-one `/predict` steps, preserving per-student request order.
//!
//! The generator is **open-loop**: every request has a scheduled fire
//! time (`k / rate` seconds into the run) that does not move when the
//! server slows down. A lane that falls behind schedule fires
//! immediately, so an overloaded server sees the backlog it would see in
//! production instead of the implicit back-off a closed-loop client
//! applies. Results — p50/p99 latency, throughput, shed rate, hung
//! connections, and the peak per-shard queue depth sampled while the run
//! was live — are appended to `results/BENCH_serve.json`.
//!
//! `--sample-out` additionally records one student's full session: the
//! request file is `rckt predict`-compatible and the served response
//! bodies land next to it (one per line), so CI can byte-compare the
//! sampled session against `rckt predict --solo true` at any worker
//! count.

use crate::commands::{err, get_num, CliError};
use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::SyntheticSpec;
use rckt_serve::{Engine, HistoryItem, PredictBody, PredictRequest, ServeConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One scheduled request: fire time offset, owning student, prebuilt
/// body, and its position within the student's session (for sampling).
struct Shot {
    fire_at: Duration,
    student: u32,
    step: usize,
    body: Arc<String>,
}

/// Per-lane tally, merged after the lanes join.
#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    completed: usize,
    shed: usize,
    hung: usize,
    errors: usize,
    /// `(step, response body)` for the sampled student's requests.
    sample: Vec<(usize, String)>,
}

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn preset_spec(name: &str) -> Result<SyntheticSpec, CliError> {
    match name {
        "assist09" => Ok(SyntheticSpec::assist09()),
        "assist12" => Ok(SyntheticSpec::assist12()),
        "slepemapy" => Ok(SyntheticSpec::slepemapy()),
        "eedi" => Ok(SyntheticSpec::eedi()),
        other => Err(err(format!("unknown preset {other:?}"))),
    }
}

pub fn run(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let preset = flags
        .get("preset")
        .map(|s| s.as_str())
        .unwrap_or("assist09");
    let spec = preset_spec(preset)?;
    let scale: f64 = get_num(flags, "scale", 0.2)?;
    let students: usize = get_num(flags, "students", 1000)?;
    let rate: f64 = get_num(flags, "rate", 500.0)?;
    let duration: f64 = get_num(flags, "duration", 5.0)?;
    let clients: usize = get_num(flags, "clients", 16usize)?.max(1);
    let seed: u64 = get_num(flags, "seed", 0)?;
    let out = flags
        .get("out")
        .map(|s| s.as_str())
        .unwrap_or("results/BENCH_serve.json");
    if students == 0 || rate <= 0.0 || duration <= 0.0 {
        return Err(err("--students, --rate, and --duration must be positive"));
    }

    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        max_batch: get_num(flags, "max-batch", 16usize)?,
        max_queue: get_num(flags, "max-queue", 256usize)?,
        workers: get_num(flags, "workers", 2usize)?,
        conn_threads: get_num(flags, "conn-threads", defaults.conn_threads)?,
        window: get_num(flags, "window", defaults.window)?,
        ..ServeConfig::default()
    };

    // The serving engine: a trained model file, or an untrained model
    // over the preset's own question/concept space (latency and queueing
    // behavior don't depend on the weights being fit).
    let script_ds = spec.scaled(scale).generate();
    let engine = match flags.get("model") {
        Some(path) => Engine::from_file(path, &cfg).map_err(err)?,
        None => {
            let model = Rckt::new(
                Backbone::Dkt,
                script_ds.num_questions(),
                script_ds.num_concepts(),
                RcktConfig {
                    dim: get_num(flags, "dim", 16)?,
                    seed,
                    ..Default::default()
                },
            );
            Engine::from_json(&model.export_with_qmatrix(&script_ds.q_matrix), &cfg).map_err(err)?
        }
    };
    let known = engine.model.num_questions().min(engine.qm.num_questions()) as u32;
    if known < 2 {
        return Err(err("model knows fewer than 2 questions"));
    }
    // Preset question ids are folded into the model's id space so a
    // loadtest script always validates against whatever model is loaded.
    let remap = |q: u32| -> u32 { 1 + (q.saturating_sub(1) % (known - 1)) };

    // Session scripts: synthetic student `i` replays preset sequence
    // `i % len` under its own id, so any `--students` count gets the
    // preset's session-length distribution.
    let seqs = &script_ds.sequences;
    if seqs.is_empty() {
        return Err(err("preset generated no sequences; raise --scale"));
    }
    let hist_cap = cfg.window.saturating_sub(1).max(1);
    let mut scripts: Vec<Vec<(Arc<String>, PredictRequest)>> = Vec::with_capacity(students);
    for i in 0..students {
        let seq = &seqs[i % seqs.len()];
        let mut steps = Vec::with_capacity(seq.interactions.len());
        for (t, it) in seq.interactions.iter().enumerate() {
            let history: Vec<HistoryItem> = seq.interactions[t.saturating_sub(hist_cap)..t]
                .iter()
                .map(|h| HistoryItem {
                    question: remap(h.question),
                    correct: h.correct,
                })
                .collect();
            let req = PredictRequest {
                student: i as u32,
                history,
                target_question: remap(it.question),
            };
            let body = serde_json::to_string(&PredictBody {
                requests: vec![req.clone()],
                deadline_ms: None,
            })
            .expect("body serialization");
            steps.push((Arc::new(body), req));
        }
        scripts.push(steps);
    }

    // Open-loop schedule: interleave students step by step (every active
    // session advances once per round) and pin shot `k` to `k / rate`.
    let total = ((rate * duration) as usize).max(1);
    let mut shots: Vec<Shot> = Vec::with_capacity(total);
    let mut cursors = vec![0usize; students];
    let mut exhausted = 0usize;
    while shots.len() < total && exhausted < students {
        exhausted = 0;
        for (s, script) in scripts.iter().enumerate() {
            if shots.len() >= total {
                break;
            }
            let t = cursors[s];
            if t >= script.len() {
                exhausted += 1;
                continue;
            }
            cursors[s] = t + 1;
            shots.push(Shot {
                fire_at: Duration::from_secs_f64(shots.len() as f64 / rate),
                student: s as u32,
                step: t,
                body: Arc::clone(&script[t].0),
            });
        }
    }
    let total = shots.len();

    // The sampled student: the longest session actually scheduled, so
    // the byte-compare covers a real multi-step warm-path session.
    let sample_student = (0..students)
        .max_by_key(|&s| cursors[s])
        .map(|s| s as u32)
        .unwrap_or(0);

    let server = rckt_serve::start(Arc::new(engine), &cfg)
        .map_err(|e| err(format!("cannot bind loadtest server: {e}")))?;
    let port = server.port();
    println!(
        "loadtest — {total} requests over {students} students ({preset} sessions), \
         {rate:.0} req/s open-loop for {duration:.1}s, {clients} client lanes, \
         {} shards × queue {} on 127.0.0.1:{port}",
        cfg.workers.max(1),
        cfg.max_queue
    );

    // Partition shots across lanes by student so per-student order is
    // preserved no matter how far any lane falls behind.
    let mut lanes: Vec<Vec<Shot>> = (0..clients).map(|_| Vec::new()).collect();
    for shot in shots {
        lanes[shot.student as usize % clients].push(shot);
    }

    let running = AtomicBool::new(true);
    let max_depths: Mutex<Vec<usize>> = Mutex::new(vec![0; cfg.workers.max(1)]);
    let start_at = Instant::now() + Duration::from_millis(50);
    let mut tallies: Vec<Tally> = Vec::new();
    std::thread::scope(|scope| {
        // Depth sampler: peak per-shard queue depth while lanes fire.
        let sampler = scope.spawn(|| {
            while running.load(Ordering::Relaxed) {
                let depths = server.shard_queue_depths();
                let mut max = max_depths.lock().unwrap_or_else(|e| e.into_inner());
                for (m, d) in max.iter_mut().zip(&depths) {
                    *m = (*m).max(*d);
                }
                drop(max);
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    for shot in &lane {
                        let due = start_at + shot.fire_at;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let t0 = Instant::now();
                        match rckt_serve::http_request(port, "POST", "/predict", &shot.body) {
                            Ok((status, body)) if status.contains("200") => {
                                tally.completed += 1;
                                tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                                if shot.student == sample_student {
                                    tally.sample.push((shot.step, body));
                                }
                            }
                            Ok((status, _)) if status.contains("503") => tally.shed += 1,
                            Ok((status, _)) if status.is_empty() => tally.hung += 1,
                            Ok(_) => tally.errors += 1,
                            Err(_) => tally.hung += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        for h in handles {
            tallies.push(h.join().expect("client lane"));
        }
        running.store(false, Ordering::Relaxed);
        let _ = sampler.join();
    });
    let wall = Instant::now()
        .saturating_duration_since(start_at)
        .as_secs_f64()
        .max(1e-9);
    server.stop();

    let mut merged = Tally::default();
    for mut t in tallies {
        merged.latencies_ms.append(&mut t.latencies_ms);
        merged.completed += t.completed;
        merged.shed += t.shed;
        merged.hung += t.hung;
        merged.errors += t.errors;
        merged.sample.append(&mut t.sample);
    }
    merged
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = quantile(&merged.latencies_ms, 0.50);
    let p99 = quantile(&merged.latencies_ms, 0.99);
    let throughput = merged.completed as f64 / wall;
    let shed_rate = merged.shed as f64 / total.max(1) as f64;
    let depths = max_depths.into_inner().unwrap_or_else(|e| e.into_inner());
    let max_depth = depths.iter().copied().max().unwrap_or(0);

    println!(
        "done in {wall:.2}s — {} ok, {} shed ({:.1}%), {} hung, {} errors",
        merged.completed,
        merged.shed,
        shed_rate * 100.0,
        merged.hung,
        merged.errors,
    );
    println!("latency p50 {p50:.3} ms  p99 {p99:.3} ms  throughput {throughput:.1} req/s");
    println!(
        "peak shard queue depths: [{}]",
        depths
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The sampled session, written in `rckt predict` shape for the CI
    // byte-compare (responses land next to it, one body per line). Only
    // steps that actually completed are written, so the request file and
    // the response file stay aligned 1:1 even if some steps were shed —
    // each request is independently solo-scorable, so dropping a shed
    // step never changes another step's oracle score.
    if let Some(path) = flags.get("sample-out") {
        merged.sample.sort_by_key(|(step, _)| *step);
        let script = &scripts[sample_student as usize];
        let scheduled = cursors[sample_student as usize];
        let reqs: Vec<PredictRequest> = merged
            .sample
            .iter()
            .map(|(step, _)| script[*step].1.clone())
            .collect();
        let body = serde_json::to_string(&PredictBody {
            requests: reqs,
            deadline_ms: None,
        })
        .expect("sample serialization");
        std::fs::write(path, body).map_err(|e| err(format!("writing {path}: {e}")))?;
        let responses: Vec<String> = merged.sample.into_iter().map(|(_, b)| b).collect();
        let resp_path = format!("{path}.responses");
        std::fs::write(&resp_path, responses.join("\n") + "\n")
            .map_err(|e| err(format!("writing {resp_path}: {e}")))?;
        println!(
            "sampled student {sample_student}: {} / {scheduled} completed steps → {path}(.responses)",
            responses.len()
        );
    }

    let manifest = rckt_obs::RunManifest::capture("loadtest", seed, None)
        .config("preset", preset)
        .config("students", students)
        .config("rate", rate)
        .config("duration", duration)
        .config("clients", clients)
        .config("workers", cfg.workers.max(1))
        .config("conn_threads", cfg.conn_threads.max(1))
        .config("max_batch", cfg.max_batch)
        .config("max_queue", cfg.max_queue)
        .result("p50_ms", p50)
        .result("p99_ms", p99)
        .result("throughput_rps", throughput)
        .result("shed_rate", shed_rate)
        .result("completed", merged.completed as f64)
        .result("shed", merged.shed as f64)
        .result("hung", merged.hung as f64)
        .result("errors", merged.errors as f64)
        .result("max_shard_depth", max_depth as f64);
    manifest
        .append_jsonl(out)
        .map_err(|e| err(format!("cannot append {out}: {e}")))?;
    println!("appended loadtest row to {out}");
    Ok(())
}
