//! `rckt` — command-line interface for the RCKT knowledge-tracing stack.
//!
//! ```text
//! rckt generate --preset assist09 --scale 0.5 --out data.csv
//! rckt stats    --data data.csv
//! rckt train    --data data.csv --backbone akt --epochs 15 --out model.json
//! rckt evaluate --data data.csv --model model.json
//! rckt explain  --data data.csv --model model.json --window 3
//! ```
//!
//! The data format is the CSV documented in `rckt_data::csv`
//! (`student,question,concepts,correct,timestamp`).

use rckt_cli::commands;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            ExitCode::from(2)
        }
    }
}
