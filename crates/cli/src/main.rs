//! `rckt` — command-line interface for the RCKT knowledge-tracing stack.
//!
//! ```text
//! rckt generate --preset assist09 --scale 0.5 --out data.csv
//! rckt stats    --data data.csv
//! rckt train    --data data.csv --backbone akt --epochs 15 --out model.json
//! rckt evaluate --data data.csv --model model.json
//! rckt explain  --data data.csv --model model.json --window 3
//! rckt serve    --model model.json --port 7700 --max-batch 8 --max-queue 64
//! rckt predict  --model model.json --requests requests.json
//! rckt monitor  --replay quality.csv
//! ```
//!
//! The data format is the CSV documented in `rckt_data::csv`
//! (`student,question,concepts,correct,timestamp`).
//!
//! Every command additionally accepts the global observability flags
//! `--log-level off|info|debug|trace`, `--log-json <path>`, `--profile`,
//! `--profile-out <path>`, `--trace-out <path>`, and `--serve-metrics
//! <port>` (see `docs/observability.md`), plus `--threads <n>` to set
//! the rckt-tensor worker-pool width (`RCKT_THREADS` is the env fallback;
//! results are identical for any value — see `docs/performance.md`).

use rckt_cli::commands;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = match rckt_obs::ObsOptions::take_from_args(&mut args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::from(2);
        }
    };
    if let Err(e) = rckt_obs::init(&obs) {
        eprintln!("error: cannot initialize logging: {e}");
        return ExitCode::from(2);
    }
    let code = match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            ExitCode::from(2)
        }
    };
    // Profile report (stdout or --profile-out), trace flush, telemetry
    // shutdown, JSON-lines close.
    obs.finish();
    code
}
