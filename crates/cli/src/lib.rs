//! Library backing the `rckt` CLI binary (kept as a lib so the command
//! parsing and plumbing are unit-testable).

pub mod commands;
pub mod loadtest;
